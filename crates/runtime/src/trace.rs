//! Request-level tracing: wire-propagated trace context and the span
//! hooks generated stubs are stamped with.
//!
//! A request owns one [`TraceContext`] — a `trace_id` shared by every
//! span it causes and a `span_id` naming the current span.  The
//! context rides the wire so the server's spans land in the same trace
//! as the client's:
//!
//! * **ONC RPC** — the call header's credential slot carries an
//!   AUTH-opaque blob (private flavor [`ONC_TRACE_AUTH_FLAVOR`], 16
//!   bytes: trace id + span id, big-endian).  Untouched servers skip
//!   it like any unknown flavor; ours extract it in
//!   [`crate::oncrpc::accept_call`] and echo the context in the reply
//!   verifier.  Client-side correlation stays xid-based —
//!   [`crate::client::call`] matches replies by xid; the blob only
//!   names the trace the exchange belongs to.
//! * **GIOP** — a service-context entry ([`GIOP_TRACE_CONTEXT_ID`])
//!   with the same 16-byte body, written at the head of request and
//!   reply headers and extracted by `get_request_header` /
//!   `get_reply_header`.
//!
//! The span hooks ([`client_begin`], [`server_begin`], [`ClientSpan`],
//! [`ServerSpan`]) follow the [`crate::metrics`] contract: empty
//! `#[inline]` functions unless the `telemetry` cargo feature is on,
//! and no-ops until `flick_telemetry::enabled()` — generated stubs
//! compile to the same hot path as before when tracing is off.  When
//! live, spans feed the `rpc.<op>.{rtt,server}` histograms and the
//! event journal (`flick_telemetry::events`).

/// Trace/span identifiers carried by one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Shared by every span of one logical request.
    pub trace_id: u64,
    /// The current span within the trace.
    pub span_id: u64,
}

/// Private ONC auth flavor carrying a trace blob (`"FLKT"`).
pub const ONC_TRACE_AUTH_FLAVOR: u32 = 0x464C_4B54;

/// Registered GIOP service-context id carrying a trace blob (`"FLKT"`).
pub const GIOP_TRACE_CONTEXT_ID: u32 = 0x464C_4B54;

/// Encoded size of a trace blob: two big-endian u64s.
pub const TRACE_BLOB_BYTES: usize = 16;

/// Encoded size of a trace blob extended with a time budget: the
/// 16-byte trace blob plus big-endian budget nanoseconds.  The blob
/// *length* discriminates the two request forms — old peers skip the
/// unknown flavor either way, and readers accept both.
pub const TRACE_BUDGET_BLOB_BYTES: usize = 24;

impl TraceContext {
    /// A fresh root context (new trace id, new span id).
    #[must_use]
    pub fn root() -> Self {
        TraceContext {
            trace_id: next_id(),
            span_id: next_id(),
        }
    }

    /// A child context: same trace, fresh span.
    #[must_use]
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(),
        }
    }

    /// The 16-byte wire form (big-endian, byte-order independent of
    /// the surrounding CDR/XDR stream).
    #[must_use]
    pub fn encode(&self) -> [u8; TRACE_BLOB_BYTES] {
        let mut out = [0u8; TRACE_BLOB_BYTES];
        out[..8].copy_from_slice(&self.trace_id.to_be_bytes());
        out[8..].copy_from_slice(&self.span_id.to_be_bytes());
        out
    }

    /// Parses a wire blob; `None` unless exactly 16 bytes with a
    /// nonzero trace id (hostile zero blobs decode as "untraced").
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != TRACE_BLOB_BYTES {
            return None;
        }
        let trace_id = u64::from_be_bytes(bytes[..8].try_into().expect("len 8"));
        let span_id = u64::from_be_bytes(bytes[8..].try_into().expect("len 8"));
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id })
    }
}

/// Encodes the extended request blob: the trace context (all zeros
/// when untraced) followed by big-endian budget nanoseconds.  Used by
/// the header writers when [`crate::deadline::outbound_budget_ns`] has
/// a budget to carry; without one they fall back to the 16-byte form.
#[must_use]
pub fn encode_budget_blob(
    ctx: Option<TraceContext>,
    budget_ns: u64,
) -> [u8; TRACE_BUDGET_BLOB_BYTES] {
    let mut out = [0u8; TRACE_BUDGET_BLOB_BYTES];
    if let Some(ctx) = ctx {
        out[..TRACE_BLOB_BYTES].copy_from_slice(&ctx.encode());
    }
    out[TRACE_BLOB_BYTES..].copy_from_slice(&budget_ns.to_be_bytes());
    out
}

/// Parses an `FLKT` wire blob of either form: 16 bytes = trace only
/// (legacy peers), 24 bytes = trace + budget nanoseconds.  In the
/// 24-byte form an all-zero trace id decodes as "untraced but
/// budgeted" — clients built without the `telemetry` feature still
/// stamp deadlines.  Any other length is hostile and yields neither.
#[must_use]
pub fn decode_wire_blob(bytes: &[u8]) -> (Option<TraceContext>, Option<u64>) {
    match bytes.len() {
        TRACE_BLOB_BYTES => (TraceContext::decode(bytes), None),
        TRACE_BUDGET_BLOB_BYTES => {
            let ctx = TraceContext::decode(&bytes[..TRACE_BLOB_BYTES]);
            let ns = u64::from_be_bytes(bytes[TRACE_BLOB_BYTES..].try_into().expect("len 8"));
            (ctx, Some(ns))
        }
        _ => (None, None),
    }
}

/// A fresh nonzero id from a process-wide SplitMix64 stream: each call
/// advances an atomic counter by the SplitMix64 increment and runs the
/// mix function over it, so ids are unique per process and well mixed
/// without locking.
#[must_use]
pub fn next_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static STATE: AtomicU64 = AtomicU64::new(0x005E_ED0F_F11C_4A11);
    let x = STATE
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// Server-span phases the generated dispatch code marks off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Argument unmarshal finished.
    Decode,
    /// The server work function returned.
    Work,
    /// Reply marshal finished.
    Encode,
}

impl Phase {
    /// The journal kind for this phase's child-span event.
    #[must_use]
    pub fn kind(self) -> &'static str {
        match self {
            Phase::Decode => "server.phase.decode",
            Phase::Work => "server.phase.work",
            Phase::Encode => "server.phase.encode",
        }
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Phase, TraceContext};
    use flick_telemetry::events::{self, Event, Outcome};
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        // The client span currently building/sending a request on this
        // thread — what CallHeader::write / put_request_header stamp
        // onto the wire, and what retry/timeout events attach to.
        static CLIENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
        // The trace context extracted from the most recent inbound
        // request on this thread (None when it carried no blob) —
        // what server spans parent to and replies echo.
        static WIRE_IN: Cell<Option<TraceContext>> = const { Cell::new(None) };
        // The most recent server span on this thread; outlives its
        // ServerSpan so the transport's send event can attach to it.
        static LAST_SERVER: Cell<Option<TraceContext>> = const { Cell::new(None) };
    }

    pub struct ClientSpanImp {
        pub ctx: TraceContext,
        pub op: &'static str,
        pub start: Instant,
    }

    pub fn client_begin(op: &'static str) -> Option<ClientSpanImp> {
        if !flick_telemetry::enabled() {
            return None;
        }
        let ctx = TraceContext::root();
        CLIENT.with(|c| c.set(Some(ctx)));
        events::record(Event {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            ..Event::new("client.begin", op)
        });
        Some(ClientSpanImp {
            ctx,
            op,
            start: Instant::now(),
        })
    }

    pub fn client_end(span: &ClientSpanImp, bytes: u64, ok: bool) {
        CLIENT.with(|c| c.set(None));
        let rtt = u64::try_from(span.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        flick_telemetry::global()
            .histogram(&format!("rpc.{}.rtt", span.op))
            .record(rtt);
        events::record(Event {
            trace_id: span.ctx.trace_id,
            span_id: span.ctx.span_id,
            bytes,
            outcome: if ok { Outcome::Ok } else { Outcome::Err },
            ..Event::new("client.end", span.op)
        });
    }

    pub struct ServerSpanImp {
        pub ctx: TraceContext,
        pub parent: u64,
        pub op: &'static str,
        pub start: Instant,
        pub phase_start: Instant,
    }

    pub fn server_begin(op: &'static str) -> Option<ServerSpanImp> {
        if !flick_telemetry::enabled() {
            return None;
        }
        let (ctx, parent) = match WIRE_IN.with(Cell::get) {
            Some(wire) => (wire.child(), wire.span_id),
            None => (TraceContext::root(), 0),
        };
        LAST_SERVER.with(|c| c.set(Some(ctx)));
        events::record(Event {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: parent,
            ..Event::new("server.begin", op)
        });
        let now = Instant::now();
        Some(ServerSpanImp {
            ctx,
            parent,
            op,
            start: now,
            phase_start: now,
        })
    }

    pub fn server_phase(span: &mut ServerSpanImp, phase: Phase, bytes: u64) {
        let now = Instant::now();
        let ns = u64::try_from((now - span.phase_start).as_nanos()).unwrap_or(u64::MAX);
        span.phase_start = now;
        events::record(Event {
            trace_id: span.ctx.trace_id,
            span_id: super::next_id(),
            parent_id: span.ctx.span_id,
            bytes: if bytes > 0 { bytes } else { ns },
            ..Event::new(phase.kind(), span.op)
        });
    }

    pub fn server_end(span: &ServerSpanImp, bytes: u64) {
        let ns = u64::try_from(span.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        flick_telemetry::global()
            .histogram(&format!("rpc.{}.server", span.op))
            .record(ns);
        events::record(Event {
            trace_id: span.ctx.trace_id,
            span_id: span.ctx.span_id,
            parent_id: span.parent,
            bytes,
            outcome: Outcome::Ok,
            ..Event::new("server.end", span.op)
        });
    }

    pub fn wire_context() -> Option<TraceContext> {
        if !flick_telemetry::enabled() {
            return None;
        }
        CLIENT.with(Cell::get)
    }

    pub fn note_wire_context(ctx: Option<TraceContext>) {
        WIRE_IN.with(|c| c.set(ctx));
    }

    pub fn reply_context() -> Option<TraceContext> {
        if !flick_telemetry::enabled() {
            return None;
        }
        WIRE_IN.with(Cell::get)
    }

    pub fn client_event(kind: &'static str, outcome: Outcome) {
        if !flick_telemetry::enabled() {
            return;
        }
        let ctx = CLIENT.with(Cell::get).unwrap_or(TraceContext {
            trace_id: 0,
            span_id: 0,
        });
        events::record(Event {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            outcome,
            ..Event::new(kind, "")
        });
    }

    pub fn wire_send(bytes: u64) {
        if !flick_telemetry::enabled() {
            return;
        }
        // A send belongs to the client span building the request, or
        // failing that to the last server span on this thread (the
        // reply being written back).
        let ctx = CLIENT
            .with(Cell::get)
            .or_else(|| LAST_SERVER.with(Cell::get))
            .unwrap_or(TraceContext {
                trace_id: 0,
                span_id: 0,
            });
        events::record(Event {
            trace_id: ctx.trace_id,
            parent_id: ctx.span_id,
            bytes,
            ..Event::new("send", "")
        });
    }

    pub fn reject_event(codec: &'static str) {
        if !flick_telemetry::enabled() {
            return;
        }
        let ctx = WIRE_IN.with(Cell::get).unwrap_or(TraceContext {
            trace_id: 0,
            span_id: 0,
        });
        events::record(Event {
            trace_id: ctx.trace_id,
            parent_id: ctx.span_id,
            outcome: Outcome::Err,
            ..Event::new("reject", codec)
        });
        events::dump_on_error("decode.reject");
    }
}

/// A client span covering one full RPC round trip, retransmissions
/// included.  Created by [`client_begin`] in generated `call_<op>`
/// stubs; while open, [`wire_context`] exposes its context so the call
/// header writers stamp it onto the wire.
pub struct ClientSpan {
    #[cfg(feature = "telemetry")]
    inner: Option<imp::ClientSpanImp>,
}

/// Opens a client span for `op`.  Free when the `telemetry` feature is
/// off or collection is disabled.
#[inline]
#[must_use]
pub fn client_begin(op: &'static str) -> ClientSpan {
    #[cfg(feature = "telemetry")]
    {
        ClientSpan {
            inner: imp::client_begin(op),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = op;
        ClientSpan {}
    }
}

impl ClientSpan {
    /// Closes the span around a finished [`crate::client::call`],
    /// recording the round-trip latency into `rpc.<op>.rtt`, the
    /// outcome event into the journal, and — on a decode-class failure
    /// — the postmortem latch.  Returns `result` unchanged so stubs
    /// can wrap the call expression directly.
    ///
    /// # Errors
    /// Propagates whatever `result` carried.
    #[inline]
    pub fn finish_call(
        self,
        result: Result<Vec<u8>, crate::client::RpcError>,
    ) -> Result<Vec<u8>, crate::client::RpcError> {
        #[cfg(feature = "telemetry")]
        if let Some(span) = &self.inner {
            let (bytes, ok) = match &result {
                Ok(body) => (body.len() as u64, true),
                Err(_) => (0, false),
            };
            imp::client_end(span, bytes, ok);
            if matches!(
                result,
                Err(crate::client::RpcError::Decode(_) | crate::client::RpcError::GarbageArgs)
            ) {
                flick_telemetry::events::dump_on_error("client.decode");
            }
        }
        result
    }

    /// The span's context, if one is live (always `None` with the
    /// `telemetry` feature off).
    #[inline]
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        #[cfg(feature = "telemetry")]
        {
            self.inner.as_ref().map(|s| s.ctx)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            None
        }
    }
}

/// A server span covering one dispatched request, opened by generated
/// dispatch arms.  Parents itself to the wire context the transport
/// header carried (noted by `accept_call` / `get_request_header`).
pub struct ServerSpan {
    #[cfg(feature = "telemetry")]
    inner: Option<imp::ServerSpanImp>,
}

/// Opens a server span for `op`.  Free when the `telemetry` feature is
/// off or collection is disabled.
#[inline]
#[must_use]
pub fn server_begin(op: &'static str) -> ServerSpan {
    #[cfg(feature = "telemetry")]
    {
        ServerSpan {
            inner: imp::server_begin(op),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = op;
        ServerSpan {}
    }
}

impl ServerSpan {
    /// Marks the end of `phase`, emitting a child-span event whose
    /// `bytes` is the given size (or the phase's elapsed nanoseconds
    /// when `bytes` is 0).
    #[inline]
    pub fn phase(&mut self, phase: Phase, bytes: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(span) = &mut self.inner {
            imp::server_phase(span, phase, bytes);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (phase, bytes);
    }

    /// Closes the span: records total service time into
    /// `rpc.<op>.server` and the closing event into the journal.
    #[inline]
    pub fn finish(self, bytes: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(span) = &self.inner {
            imp::server_end(span, bytes);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = bytes;
    }
}

/// The context an outbound call header should stamp onto the wire: the
/// client span currently open on this thread, if any.
#[inline]
#[must_use]
pub fn wire_context() -> Option<TraceContext> {
    #[cfg(feature = "telemetry")]
    {
        imp::wire_context()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        None
    }
}

/// Notes the trace context (or its absence) extracted from an inbound
/// request, for [`server_begin`] to parent to and [`reply_context`] to
/// echo.  Called by the transport-header readers on every request.
#[inline]
pub fn note_wire_context(ctx: Option<TraceContext>) {
    #[cfg(feature = "telemetry")]
    imp::note_wire_context(ctx);
    #[cfg(not(feature = "telemetry"))]
    let _ = ctx;
}

/// The context a reply header should echo: whatever the request
/// carried (noted by [`note_wire_context`]), else `None`.
#[inline]
#[must_use]
pub fn reply_context() -> Option<TraceContext> {
    #[cfg(feature = "telemetry")]
    {
        imp::reply_context()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        None
    }
}

/// Journals one client-side retransmission against the open client
/// span.  Called by [`crate::client::call`].
#[inline]
pub fn client_retry() {
    #[cfg(feature = "telemetry")]
    imp::client_event("client.retry", flick_telemetry::Outcome::Info);
}

/// Journals one client call abandoned at its deadline.
#[inline]
pub fn client_timeout() {
    #[cfg(feature = "telemetry")]
    imp::client_event("client.timeout", flick_telemetry::Outcome::Err);
}

/// Journals one message handed to a transport send path, attached to
/// the open client span or the last server span on this thread.
#[inline]
pub fn wire_send(bytes: u64) {
    #[cfg(feature = "telemetry")]
    imp::wire_send(bytes);
    #[cfg(not(feature = "telemetry"))]
    let _ = bytes;
}

/// Journals one protocol-level reject for `codec` and triggers the
/// postmortem latch.  Called by [`crate::metrics::reject`].
#[inline]
pub(crate) fn reject_event(codec: &'static str) {
    #[cfg(feature = "telemetry")]
    imp::reject_event(codec);
    #[cfg(not(feature = "telemetry"))]
    let _ = codec;
}

/// Serializes unit tests that toggle the process-global telemetry
/// flag (here, `metrics`, `oncrpc`) so one test's disabled window
/// cannot swallow another's recordings.
#[cfg(all(test, feature = "telemetry"))]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn blob_roundtrip_and_hostile_rejection() {
        let ctx = TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            span_id: 0x99AA_BBCC_DDEE_FF00,
        };
        let blob = ctx.encode();
        assert_eq!(TraceContext::decode(&blob), Some(ctx));
        assert_eq!(TraceContext::decode(&blob[..15]), None, "short blob");
        assert_eq!(TraceContext::decode(&[0u8; 16]), None, "zero trace id");
        assert_eq!(TraceContext::decode(&[]), None);
    }

    #[test]
    fn budget_blob_roundtrip_in_both_forms() {
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 9,
        };
        // Traced + budgeted.
        let blob = encode_budget_blob(Some(ctx), 1_500_000);
        assert_eq!(decode_wire_blob(&blob), (Some(ctx), Some(1_500_000)));
        // Untraced but budgeted: zero trace id is legitimate here.
        let blob = encode_budget_blob(None, 42);
        assert_eq!(decode_wire_blob(&blob), (None, Some(42)));
        // Legacy 16-byte form: trace only.
        assert_eq!(decode_wire_blob(&ctx.encode()), (Some(ctx), None));
        // Hostile lengths yield neither.
        assert_eq!(decode_wire_blob(&blob[..23]), (None, None));
        assert_eq!(decode_wire_blob(&[]), (None, None));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn spans_record_events_and_histograms_when_enabled() {
        let _guard = test_lock();
        flick_telemetry::set_enabled(true);

        // Client span: context exposed for the wire, rtt recorded.
        let span = client_begin("trace_unit_op");
        let ctx = span.context().expect("live span has a context");
        assert_eq!(wire_context(), Some(ctx));
        let out = span.finish_call(Ok(b"body".to_vec()));
        assert!(out.is_ok());
        assert_eq!(wire_context(), None, "span closed, context cleared");

        // Server span parented to a noted wire context.
        note_wire_context(Some(ctx));
        assert_eq!(reply_context(), Some(ctx));
        let mut sspan = server_begin("trace_unit_op");
        sspan.phase(Phase::Decode, 10);
        sspan.phase(Phase::Work, 0);
        sspan.phase(Phase::Encode, 20);
        sspan.finish(30);
        note_wire_context(None);

        let snap = flick_telemetry::global().snapshot();
        for name in ["rpc.trace_unit_op.rtt", "rpc.trace_unit_op.server"] {
            assert!(
                matches!(
                    snap.get(name),
                    Some(flick_telemetry::MetricValue::Histogram(h)) if h.count >= 1
                ),
                "{name} populated"
            );
        }
        let events = flick_telemetry::events::snapshot();
        let sbegin = events
            .iter()
            .rev()
            .find(|e| e.kind == "server.begin" && e.op == "trace_unit_op")
            .expect("server.begin journaled");
        assert_eq!(sbegin.trace_id, ctx.trace_id, "trace id propagated");
        assert_eq!(sbegin.parent_id, ctx.span_id, "parented to wire span");
        assert!(
            events
                .iter()
                .any(|e| e.kind == "server.phase.decode" && e.parent_id == sbegin.span_id),
            "phase child span nests under the server span"
        );
        flick_telemetry::set_enabled(false);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn disabled_spans_leave_no_wire_context() {
        let _guard = test_lock();
        flick_telemetry::set_enabled(false);
        let span = client_begin("trace_unit_off");
        assert_eq!(span.context(), None);
        assert_eq!(wire_context(), None);
        assert!(span.finish_call(Ok(Vec::new())).is_ok());
    }
}
