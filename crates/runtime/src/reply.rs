//! Copy-on-write reply presentation for aliased reply slots.
//!
//! The `reply-alias` MIR pass pairs a reply slot with a structurally
//! identical request slot so the server stub can answer with the
//! request's own wire bytes.  Early versions guarded that reuse with a
//! runtime `==` against a snapshot of the decoded value — a compare
//! (and a clone) on every call that ate most of the win.
//!
//! [`Echoed`] replaces the guard with a contract: the server work
//! function *declares* whether it changed the echoed value.
//! [`Echoed::Unchanged`] lets the stub copy the already-encoded
//! request bytes straight into the reply; [`Echoed::Changed`] carries
//! a new value through the normal encode path.  No snapshot, no
//! compare — the verifier instead proves at compile time that the
//! aliased slot's wire image equals the request slot's.

/// A server's answer for an operation whose reply aliases a request
/// slot: either "I did not mutate the echoed value" or a replacement
/// value to encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Echoed<T> {
    /// The reply value is byte-for-byte the decoded request value;
    /// the stub replies with the request's wire bytes.
    Unchanged,
    /// The server produced a different value; the stub encodes it.
    Changed(T),
}

impl<T> Echoed<T> {
    /// True for [`Echoed::Unchanged`].
    #[inline]
    #[must_use]
    pub fn is_unchanged(&self) -> bool {
        matches!(self, Echoed::Unchanged)
    }

    /// The changed value, if the server produced one.
    #[inline]
    pub fn changed(self) -> Option<T> {
        match self {
            Echoed::Unchanged => None,
            Echoed::Changed(v) => Some(v),
        }
    }

    /// Resolves the contract against the request value the server was
    /// handed — useful for test oracles and loopback servers.
    #[inline]
    pub fn resolve(self, request: T) -> T {
        match self {
            Echoed::Unchanged => request,
            Echoed::Changed(v) => v,
        }
    }
}

impl<T> From<T> for Echoed<T> {
    /// A plain value is a changed reply; `Unchanged` must be declared
    /// explicitly.
    #[inline]
    fn from(v: T) -> Self {
        Echoed::Changed(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honours_the_contract() {
        assert_eq!(Echoed::Unchanged.resolve(7), 7);
        assert_eq!(Echoed::Changed(9).resolve(7), 9);
    }

    #[test]
    fn changed_extracts_only_mutations() {
        assert_eq!(Echoed::<u32>::Unchanged.changed(), None);
        assert_eq!(Echoed::Changed(3u32).changed(), Some(3));
        assert!(Echoed::<u32>::Unchanged.is_unchanged());
        assert_eq!(Echoed::from(5u32), Echoed::Changed(5));
    }
}
