//! XDR — ONC RPC's External Data Representation (RFC 1832).
//!
//! Every item occupies a multiple of 4 bytes, big-endian.  Sub-word
//! scalars widen to 4 bytes; opaques and strings carry a 4-byte count
//! and are zero-padded to a 4-byte boundary.

use crate::buf::{MarshalBuf, MsgReader};
use crate::error::DecodeError;

/// Encoded size of one XDR unit.
pub const UNIT: usize = 4;

/// Bytes of padding needed after `n` content bytes.
#[inline]
#[must_use]
pub fn pad_len(n: usize) -> usize {
    crate::align_up(n, UNIT) - n
}

// ---- encode ----

/// Appends an XDR `int`.
#[inline]
pub fn put_i32(buf: &mut MarshalBuf, v: i32) {
    buf.put_u32_be(v as u32);
}

/// Appends an XDR `unsigned int`.
#[inline]
pub fn put_u32(buf: &mut MarshalBuf, v: u32) {
    buf.put_u32_be(v);
}

/// Appends an XDR `hyper`.
#[inline]
pub fn put_i64(buf: &mut MarshalBuf, v: i64) {
    buf.put_u64_be(v as u64);
}

/// Appends an XDR `unsigned hyper`.
#[inline]
pub fn put_u64(buf: &mut MarshalBuf, v: u64) {
    buf.put_u64_be(v);
}

/// Appends an XDR `bool` (a full word).
#[inline]
pub fn put_bool(buf: &mut MarshalBuf, v: bool) {
    buf.put_u32_be(u32::from(v));
}

/// Appends an XDR `float`.
#[inline]
pub fn put_f32(buf: &mut MarshalBuf, v: f32) {
    buf.put_u32_be(v.to_bits());
}

/// Appends an XDR `double`.
#[inline]
pub fn put_f64(buf: &mut MarshalBuf, v: f64) {
    buf.put_u64_be(v.to_bits());
}

/// Appends fixed-length opaque data (content + padding, no count).
#[inline]
pub fn put_opaque_fixed(buf: &mut MarshalBuf, bytes: &[u8]) {
    buf.put_bytes(bytes);
    buf.put_zeros(pad_len(bytes.len()));
}

/// Appends variable-length opaque data (count + content + padding).
#[inline]
pub fn put_opaque(buf: &mut MarshalBuf, bytes: &[u8]) {
    buf.put_u32_be(bytes.len() as u32);
    put_opaque_fixed(buf, bytes);
}

/// Appends an XDR `string` (count + bytes + padding; no terminator).
#[inline]
pub fn put_string(buf: &mut MarshalBuf, s: &str) {
    put_opaque(buf, s.as_bytes());
}

// ---- decode ----

/// Reads an XDR `int`.
#[inline]
pub fn get_i32(r: &mut MsgReader<'_>) -> Result<i32, DecodeError> {
    Ok(r.get_u32_be()? as i32)
}

/// Reads an XDR `unsigned int`.
#[inline]
pub fn get_u32(r: &mut MsgReader<'_>) -> Result<u32, DecodeError> {
    r.get_u32_be()
}

/// Reads an XDR `hyper`.
#[inline]
pub fn get_i64(r: &mut MsgReader<'_>) -> Result<i64, DecodeError> {
    Ok(r.get_u64_be()? as i64)
}

/// Reads an XDR `unsigned hyper`.
#[inline]
pub fn get_u64(r: &mut MsgReader<'_>) -> Result<u64, DecodeError> {
    r.get_u64_be()
}

/// Reads an XDR `bool`, rejecting values other than 0/1.
#[inline]
pub fn get_bool(r: &mut MsgReader<'_>) -> Result<bool, DecodeError> {
    match r.get_u32_be()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::BadValue("XDR bool must be 0 or 1")),
    }
}

/// Reads an XDR `float`.
#[inline]
pub fn get_f32(r: &mut MsgReader<'_>) -> Result<f32, DecodeError> {
    Ok(f32::from_bits(r.get_u32_be()?))
}

/// Reads an XDR `double`.
#[inline]
pub fn get_f64(r: &mut MsgReader<'_>) -> Result<f64, DecodeError> {
    Ok(f64::from_bits(r.get_u64_be()?))
}

/// Reads fixed-length opaque content of `n` bytes (plus padding),
/// borrowing from the message.
#[inline]
pub fn get_opaque_fixed<'a>(r: &mut MsgReader<'a>, n: usize) -> Result<&'a [u8], DecodeError> {
    let s = r.bytes(n)?;
    r.skip(pad_len(n))?;
    Ok(s)
}

/// Reads variable-length opaque data, enforcing `bound` if given.
#[inline]
pub fn get_opaque<'a>(r: &mut MsgReader<'a>, bound: Option<u64>) -> Result<&'a [u8], DecodeError> {
    let n = r.get_u32_be()? as u64;
    if let Some(b) = bound {
        if n > b {
            return Err(DecodeError::BoundExceeded { got: n, bound: b });
        }
    }
    get_opaque_fixed(r, n as usize)
}

/// Reads an XDR `string` as borrowed bytes (caller may copy or keep
/// the borrow — the zero-copy presentation).
#[inline]
pub fn get_string<'a>(r: &mut MsgReader<'a>, bound: Option<u64>) -> Result<&'a [u8], DecodeError> {
    get_opaque(r, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: impl FnOnce(&mut MarshalBuf)) -> Vec<u8> {
        let mut b = MarshalBuf::new();
        f(&mut b);
        b.into_vec()
    }

    #[test]
    fn ints_are_big_endian_words() {
        let v = roundtrip(|b| put_i32(b, -2));
        assert_eq!(v, [0xff, 0xff, 0xff, 0xfe]);
        let v = roundtrip(|b| put_u32(b, 0x0102_0304));
        assert_eq!(v, [1, 2, 3, 4]);
    }

    #[test]
    fn bool_is_full_word() {
        assert_eq!(roundtrip(|b| put_bool(b, true)), [0, 0, 0, 1]);
        let bytes = [0, 0, 0, 2];
        let mut r = MsgReader::new(&bytes);
        assert!(get_bool(&mut r).is_err());
    }

    #[test]
    fn hyper_roundtrip() {
        let v = roundtrip(|b| put_i64(b, -1));
        assert_eq!(v.len(), 8);
        let mut r = MsgReader::new(&v);
        assert_eq!(get_i64(&mut r).unwrap(), -1);
    }

    #[test]
    fn floats_roundtrip() {
        let v = roundtrip(|b| {
            put_f32(b, 3.25);
            put_f64(b, -0.5);
        });
        let mut r = MsgReader::new(&v);
        assert_eq!(get_f32(&mut r).unwrap(), 3.25);
        assert_eq!(get_f64(&mut r).unwrap(), -0.5);
    }

    #[test]
    fn string_pads_to_word() {
        // "hello" = count 5 + 5 bytes + 3 pad = 12 bytes total.
        let v = roundtrip(|b| put_string(b, "hello"));
        assert_eq!(v.len(), 12);
        assert_eq!(&v[..4], &[0, 0, 0, 5]);
        assert_eq!(&v[4..9], b"hello");
        assert_eq!(&v[9..], &[0, 0, 0]);
        let mut r = MsgReader::new(&v);
        assert_eq!(get_string(&mut r, None).unwrap(), b"hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn string_exact_word_has_no_pad() {
        let v = roundtrip(|b| put_string(b, "abcd"));
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn opaque_bound_enforced() {
        let v = roundtrip(|b| put_opaque(b, &[9; 10]));
        let mut r = MsgReader::new(&v);
        let e = get_opaque(&mut r, Some(4)).unwrap_err();
        assert_eq!(e, DecodeError::BoundExceeded { got: 10, bound: 4 });
    }

    #[test]
    fn opaque_fixed_roundtrip() {
        let v = roundtrip(|b| put_opaque_fixed(b, &[1, 2, 3]));
        assert_eq!(v, [1, 2, 3, 0]);
        let mut r = MsgReader::new(&v);
        assert_eq!(get_opaque_fixed(&mut r, 3).unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn pad_len_table() {
        assert_eq!(pad_len(0), 0);
        assert_eq!(pad_len(1), 3);
        assert_eq!(pad_len(4), 0);
        assert_eq!(pad_len(5), 3);
        assert_eq!(pad_len(7), 1);
    }
}
