//! The transcoding gateway: ONC RPC on one side, GIOP on the other,
//! bytes rewritten encoding-to-encoding without ever materializing the
//! presentation.
//!
//! A [`Bridge`] accepts one ONC call record, validates its header with
//! the same [`crate::oncrpc::accept_call`] path a generated server
//! uses, rewrites the XDR argument bytes into a CDR GIOP request via a
//! generated transcode function (see `flick-backend`'s
//! `--transcode=SRC:DST` emission), forwards the request over a
//! caller-supplied link, and rewrites the GIOP reply body back into an
//! ONC reply.  Buffers come from the [`crate::pool`], so the warm
//! gateway path allocates nothing per call; a live trace context rides
//! both legs (ONC credential in, GIOP service context out) through the
//! existing [`crate::trace`] plumbing.
//!
//! Error policy mirrors a generated endpoint server: arguments that do
//! not transcode answer `GARBAGE_ARGS`; an upstream that fails, replies
//! in an unexpected byte order, or raises an exception answers
//! `SYSTEM_ERR`; records too mangled to carry an xid stay silent.

use crate::buf::{MarshalBuf, MsgReader};
use crate::cdr::{ByteOrder, CdrIn, CdrOut};
use crate::error::DecodeError;
use crate::giop;
use crate::oncrpc::{self, ReplyOutcome};

/// A generated body rewrite: source-encoding bytes in, target-encoding
/// bytes appended to `dst`.
pub type TranscodeFn = fn(&[u8], &mut MarshalBuf) -> Result<(), DecodeError>;

/// One operation's entry in a generated gateway table (`BRIDGE_OPS` in
/// a `--transcode` module).
#[derive(Clone, Copy)]
pub struct BridgeOp {
    /// ONC procedure number (the source-side discriminator).
    pub proc_num: u32,
    /// Wire operation name (the target-side discriminator).
    pub name: &'static str,
    /// True when the operation expects no reply.
    pub oneway: bool,
    /// Fused request rewrite (source → target).
    pub request: TranscodeFn,
    /// Fused reply rewrite (target → source).
    pub reply: TranscodeFn,
    /// Slot-wise request rewrite — the `fuse-transcode` ablation path.
    pub request_naive: TranscodeFn,
    /// Slot-wise reply rewrite.
    pub reply_naive: TranscodeFn,
}

/// What [`Bridge::handle_record`] did with one inbound record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BridgeOutcome {
    /// `reply` holds a complete ONC reply to send back.
    Replied,
    /// Nothing to send: the record was not answerable (no xid, not a
    /// call) or the operation is oneway.
    Silent,
}

/// Monotonic counters for one bridge instance.  The same events also
/// feed the process-wide `bridge.{forwarded,rejected,fallback}`
/// telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BridgeCounters {
    /// Requests rewritten and forwarded end-to-end.
    pub forwarded: u64,
    /// Requests refused: hostile or malformed bytes on either leg, an
    /// unknown procedure, or a failed upstream.
    pub rejected: u64,
    /// Requests served through the naive decode-and-re-encode path.
    pub fallback: u64,
}

/// A configured one-direction gateway: ONC clients in, a GIOP server
/// out.
pub struct Bridge {
    ops: &'static [BridgeOp],
    /// Pre-registered `bridge.<op>.*` counter handles, parallel to
    /// `ops`, so the per-record path does no metric-name formatting.
    op_stats: Vec<crate::metrics::BridgeOpCounters>,
    prog: u32,
    vers: u32,
    object_key: Vec<u8>,
    order: ByteOrder,
    naive: bool,
    counters: BridgeCounters,
}

impl Bridge {
    /// A bridge serving `ops` for ONC program `prog` version `vers`,
    /// addressing the upstream object `object_key` in byte order
    /// `order` (a generated module's `DST_LITTLE_ENDIAN`).  `naive`
    /// routes every body through the slot-wise rewrites — the
    /// `--disable-pass=fuse-transcode` fallback.
    #[must_use]
    pub fn new(
        ops: &'static [BridgeOp],
        prog: u32,
        vers: u32,
        object_key: &[u8],
        order: ByteOrder,
        naive: bool,
    ) -> Self {
        Bridge {
            ops,
            op_stats: ops
                .iter()
                .map(|o| crate::metrics::BridgeOpCounters::register(o.name))
                .collect(),
            prog,
            vers,
            object_key: object_key.to_vec(),
            order,
            naive,
            counters: BridgeCounters::default(),
        }
    }

    /// This bridge's counters so far.
    #[must_use]
    pub fn counters(&self) -> BridgeCounters {
        self.counters
    }

    fn reject(&mut self, op: Option<usize>) {
        self.counters.rejected += 1;
        crate::metrics::bridge_rejected();
        if let Some(i) = op {
            self.op_stats[i].rejected();
        }
    }

    /// Handles one unframed ONC call record.  `forward` carries a
    /// complete GIOP request message to the upstream and returns its
    /// complete GIOP reply message (`None` on a dead link).  On
    /// [`BridgeOutcome::Replied`], `reply` holds the unframed ONC reply.
    pub fn handle_record<F>(
        &mut self,
        record: &[u8],
        reply: &mut MarshalBuf,
        mut forward: F,
    ) -> BridgeOutcome
    where
        F: FnMut(&[u8]) -> Option<Vec<u8>>,
    {
        let (header, args) = match oncrpc::accept_call(record, self.prog, self.vers, reply) {
            Ok(ok) => ok,
            Err(answered) => {
                self.reject(None);
                return if answered {
                    BridgeOutcome::Replied
                } else {
                    BridgeOutcome::Silent
                };
            }
        };
        let Some(op_idx) = self.ops.iter().position(|o| o.proc_num == header.proc) else {
            self.reject(None);
            oncrpc::write_reply(reply, header.xid, ReplyOutcome::ProcUnavail);
            return BridgeOutcome::Replied;
        };
        let op = self.ops[op_idx];

        // Rewrite the request leg into a pooled GIOP message.
        let mut out = crate::pool::checkout();
        let size_at = giop::begin_message(&mut out, self.order, giop::MsgType::Request);
        let cdr = CdrOut::begin(&out, self.order);
        giop::put_request_header(
            &mut out,
            &cdr,
            header.xid,
            !op.oneway,
            &self.object_key,
            op.name,
        );
        let rewrite = if self.naive {
            op.request_naive
        } else {
            op.request
        };
        if rewrite(args, &mut out).is_err() {
            self.reject(Some(op_idx));
            crate::metrics::reject(crate::metrics::Codec::Xdr);
            oncrpc::write_reply(reply, header.xid, ReplyOutcome::GarbageArgs);
            return BridgeOutcome::Replied;
        }
        giop::finish_message(&mut out, size_at, self.order);

        let response = forward(out.as_slice());
        if op.oneway {
            if response.is_some() {
                self.forwarded(op_idx);
            } else {
                self.reject(Some(op_idx));
            }
            return BridgeOutcome::Silent;
        }
        let Some(response) = response else {
            self.reject(Some(op_idx));
            oncrpc::write_reply(reply, header.xid, ReplyOutcome::SystemErr);
            return BridgeOutcome::Replied;
        };

        // Rewrite the reply leg back.  Anything unexpected — parse
        // failure, a byte order this pair was not compiled for, an
        // exception — is a SYSTEM_ERR toward the ONC client.
        match self.transcode_reply(&op, &response, header.xid, reply) {
            Ok(()) => {
                self.forwarded(op_idx);
            }
            Err(()) => {
                self.reject(Some(op_idx));
                reply.clear();
                oncrpc::write_reply(reply, header.xid, ReplyOutcome::SystemErr);
            }
        }
        BridgeOutcome::Replied
    }

    fn forwarded(&mut self, op: usize) {
        self.counters.forwarded += 1;
        crate::metrics::bridge_forwarded();
        self.op_stats[op].forwarded();
        if self.naive {
            self.counters.fallback += 1;
            crate::metrics::bridge_fallback();
            self.op_stats[op].fallback();
        }
    }

    /// Parses one GIOP reply message and writes the full ONC success
    /// reply (header + rewritten body) into `reply`.
    fn transcode_reply(
        &self,
        op: &BridgeOp,
        response: &[u8],
        xid: u32,
        reply: &mut MarshalBuf,
    ) -> Result<(), ()> {
        let mut r = MsgReader::new(response);
        let h = giop::read_header(&mut r).map_err(|_| ())?;
        if h.msg_type != giop::MsgType::Reply || h.order != self.order {
            return Err(());
        }
        let cdr = CdrIn::begin(&r, h.order);
        let rh = giop::get_reply_header(&mut r, &cdr).map_err(|_| ())?;
        if rh.request_id != xid || rh.status != giop::ReplyStatus::NoException {
            return Err(());
        }
        reply.clear();
        oncrpc::write_reply(reply, xid, ReplyOutcome::Success);
        let rewrite = if self.naive { op.reply_naive } else { op.reply };
        rewrite(&response[r.pos()..], reply).map_err(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oncrpc::{CallHeader, ReplyVerdict};

    // A toy pair: one u32 argument and one u32 result, byte-swapped
    // between the legs (XDR big-endian ↔ CDR little-endian).
    fn req_fused(src: &[u8], dst: &mut MarshalBuf) -> Result<(), DecodeError> {
        let mut r = MsgReader::new(src);
        let _db = dst.len();
        let v = r.get_u32_be()?;
        dst.align_from(_db, 4);
        dst.put_u32_le(v);
        Ok(())
    }

    fn rep_fused(src: &[u8], dst: &mut MarshalBuf) -> Result<(), DecodeError> {
        let mut r = MsgReader::new(src);
        let _sb = r.pos();
        r.align_from(_sb, 4)?;
        let v = r.get_u32_le()?;
        dst.put_u32_be(v);
        Ok(())
    }

    static OPS: &[BridgeOp] = &[BridgeOp {
        proc_num: 1,
        name: "bump",
        oneway: false,
        request: req_fused,
        reply: rep_fused,
        request_naive: req_fused,
        reply_naive: rep_fused,
    }];

    fn call_record(proc_num: u32, arg: u32) -> Vec<u8> {
        let mut b = MarshalBuf::new();
        CallHeader {
            xid: 7,
            prog: 0x2000_0001,
            vers: 1,
            proc: proc_num,
        }
        .write(&mut b);
        b.put_u32_be(arg);
        b.into_vec()
    }

    /// A GIOP echo-ish upstream: decodes the request, replies with the
    /// argument + 1.
    fn upstream(msg: &[u8]) -> Option<Vec<u8>> {
        let mut r = MsgReader::new(msg);
        let h = giop::read_header(&mut r).ok()?;
        let cdr = CdrIn::begin(&r, h.order);
        let rh = giop::get_request_header_ref(&mut r, &cdr).ok()?;
        assert_eq!(rh.operation, "bump");
        let base = r.pos();
        r.align_from(base, 4).ok()?;
        let v = cdr.get_u32(&mut r).ok()?;
        let mut out = MarshalBuf::new();
        let at = giop::begin_message(&mut out, h.order, giop::MsgType::Reply);
        let co = CdrOut::begin(&out, h.order);
        giop::put_reply_header(&mut out, &co, rh.request_id, giop::ReplyStatus::NoException);
        co.put_u32(&mut out, v + 1);
        giop::finish_message(&mut out, at, h.order);
        Some(out.into_vec())
    }

    fn bridge(naive: bool) -> Bridge {
        Bridge::new(OPS, 0x2000_0001, 1, b"obj", ByteOrder::Little, naive)
    }

    #[test]
    fn forwards_and_rewrites_both_legs() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        let out = b.handle_record(&call_record(1, 41), &mut reply, upstream);
        assert_eq!(out, BridgeOutcome::Replied);
        let data = reply.as_slice();
        let mut r = MsgReader::new(data);
        let (xid, verdict) = oncrpc::read_reply_verdict(&mut r).expect("reply parses");
        assert_eq!((xid, verdict), (7, ReplyVerdict::Success));
        assert_eq!(r.get_u32_be().unwrap(), 42, "result re-encoded as XDR");
        assert!(r.is_exhausted());
        assert_eq!(
            b.counters(),
            BridgeCounters {
                forwarded: 1,
                rejected: 0,
                fallback: 0
            }
        );
    }

    #[test]
    fn naive_mode_counts_fallbacks() {
        let mut b = bridge(true);
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 1), &mut reply, upstream);
        assert_eq!(
            b.counters(),
            BridgeCounters {
                forwarded: 1,
                rejected: 0,
                fallback: 1
            }
        );
    }

    #[test]
    fn hostile_args_answer_garbage_args_without_forwarding() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        let mut rec = call_record(1, 1);
        rec.truncate(rec.len() - 2); // argument word cut short
        let out = b.handle_record(&rec, &mut reply, |_| panic!("must not forward"));
        assert_eq!(out, BridgeOutcome::Replied);
        let mut r = MsgReader::new(reply.as_slice());
        let (_, verdict) = oncrpc::read_reply_verdict(&mut r).unwrap();
        assert_eq!(verdict, ReplyVerdict::GarbageArgs);
        assert_eq!(b.counters().rejected, 1);
    }

    #[test]
    fn dead_or_lying_upstream_answers_system_err() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 1), &mut reply, |_| None);
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::SystemErr
        );

        // Garbage reply bytes: also SYSTEM_ERR, not a crash.
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 1), &mut reply, |_| Some(vec![0xff; 6]));
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::SystemErr
        );
        assert_eq!(b.counters().rejected, 2);
    }

    #[test]
    fn unknown_procedure_and_wrong_program_refuse() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(9, 1), &mut reply, |_| {
            panic!("must not forward")
        });
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::ProcUnavail
        );

        let mut wrong = Bridge::new(OPS, 77, 1, b"obj", ByteOrder::Little, false);
        let mut reply = MarshalBuf::new();
        wrong.handle_record(&call_record(1, 1), &mut reply, |_| {
            panic!("must not forward")
        });
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::ProgUnavail
        );
    }
}
