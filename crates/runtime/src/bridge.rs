//! The transcoding gateway: ONC RPC on one side, GIOP on the other,
//! bytes rewritten encoding-to-encoding without ever materializing the
//! presentation.
//!
//! A [`Bridge`] accepts one ONC call record, validates its header with
//! the same [`crate::oncrpc::accept_call`] path a generated server
//! uses, rewrites the XDR argument bytes into a CDR GIOP request via a
//! generated transcode function (see `flick-backend`'s
//! `--transcode=SRC:DST` emission), forwards the request over a
//! caller-supplied link, and rewrites the GIOP reply body back into an
//! ONC reply.  Buffers come from the [`crate::pool`], so the warm
//! gateway path allocates nothing per call; a live trace context rides
//! both legs (ONC credential in, GIOP service context out) through the
//! existing [`crate::trace`] plumbing.
//!
//! Error policy mirrors a generated endpoint server: arguments that do
//! not transcode answer `GARBAGE_ARGS`; an upstream that fails, replies
//! in an unexpected byte order, or raises an exception answers
//! `SYSTEM_ERR`; records too mangled to carry an xid stay silent.
//!
//! The upstream leg is abstracted behind [`UpstreamLink`] (any
//! `FnMut(&[u8]) -> Option<Vec<u8>>` qualifies), and [`Supervisor`]
//! wraps a link in a circuit breaker: consecutive failures open the
//! circuit, opens fail fast without touching the upstream, a
//! jittered-exponential backoff schedules a single half-open probe,
//! and idempotent operations get a bounded retry budget.  A gateway in
//! front of a flapping upstream degrades to cheap `SYSTEM_ERR`s and
//! heals itself when the upstream returns — no restart, no thundering
//! herd of simultaneous probes.

use crate::buf::{MarshalBuf, MsgReader};
use crate::cdr::{ByteOrder, CdrIn, CdrOut};
use crate::error::DecodeError;
use crate::giop;
use crate::oncrpc::{self, ReplyOutcome};
use crate::rng::SplitMix64;
use std::time::{Duration, Instant};

/// A generated body rewrite: source-encoding bytes in, target-encoding
/// bytes appended to `dst`.
pub type TranscodeFn = fn(&[u8], &mut MarshalBuf) -> Result<(), DecodeError>;

/// One operation's entry in a generated gateway table (`BRIDGE_OPS` in
/// a `--transcode` module).
#[derive(Clone, Copy)]
pub struct BridgeOp {
    /// ONC procedure number (the source-side discriminator).
    pub proc_num: u32,
    /// Wire operation name (the target-side discriminator).
    pub name: &'static str,
    /// True when the operation expects no reply.
    pub oneway: bool,
    /// True when repeating the operation is safe — a retrying link
    /// (see [`Supervisor`]) may resend it after an upstream failure.
    /// Generated tables mark oneways idempotent (ONC datagram
    /// semantics already permit duplicate delivery) and everything
    /// else not, unless the IDL says otherwise.
    pub idempotent: bool,
    /// Fused request rewrite (source → target).
    pub request: TranscodeFn,
    /// Fused reply rewrite (target → source).
    pub reply: TranscodeFn,
    /// Slot-wise request rewrite — the `fuse-transcode` ablation path.
    pub request_naive: TranscodeFn,
    /// Slot-wise reply rewrite.
    pub reply_naive: TranscodeFn,
}

/// The upstream side of a gateway: carries one complete GIOP request
/// message and returns the complete GIOP reply message, or `None` when
/// the upstream failed.  `idempotent` tells the link whether resending
/// the request is safe (it must not retry otherwise).
///
/// Any `FnMut(&[u8]) -> Option<Vec<u8>>` is a link (ignoring the
/// idempotence hint); [`Supervisor`] wraps one with failure handling.
pub trait UpstreamLink {
    /// Forwards `request` upstream, returning the reply bytes.
    fn forward(&mut self, request: &[u8], idempotent: bool) -> Option<Vec<u8>>;
}

impl<F> UpstreamLink for F
where
    F: FnMut(&[u8]) -> Option<Vec<u8>>,
{
    fn forward(&mut self, request: &[u8], _idempotent: bool) -> Option<Vec<u8>> {
        self(request)
    }
}

/// What [`Bridge::handle_record`] did with one inbound record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BridgeOutcome {
    /// `reply` holds a complete ONC reply to send back.
    Replied,
    /// Nothing to send: the record was not answerable (no xid, not a
    /// call) or the operation is oneway.
    Silent,
}

/// Monotonic counters for one bridge instance.  The same events also
/// feed the process-wide `bridge.{forwarded,rejected,fallback}`
/// telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BridgeCounters {
    /// Requests rewritten and forwarded end-to-end.
    pub forwarded: u64,
    /// Requests refused: hostile or malformed bytes on either leg, an
    /// unknown procedure, or a failed upstream.
    pub rejected: u64,
    /// Requests served through the naive decode-and-re-encode path.
    pub fallback: u64,
}

/// A configured one-direction gateway: ONC clients in, a GIOP server
/// out.
pub struct Bridge {
    ops: &'static [BridgeOp],
    /// Pre-registered `bridge.<op>.*` counter handles, parallel to
    /// `ops`, so the per-record path does no metric-name formatting.
    op_stats: Vec<crate::metrics::BridgeOpCounters>,
    prog: u32,
    vers: u32,
    object_key: Vec<u8>,
    order: ByteOrder,
    naive: bool,
    counters: BridgeCounters,
}

impl Bridge {
    /// A bridge serving `ops` for ONC program `prog` version `vers`,
    /// addressing the upstream object `object_key` in byte order
    /// `order` (a generated module's `DST_LITTLE_ENDIAN`).  `naive`
    /// routes every body through the slot-wise rewrites — the
    /// `--disable-pass=fuse-transcode` fallback.
    #[must_use]
    pub fn new(
        ops: &'static [BridgeOp],
        prog: u32,
        vers: u32,
        object_key: &[u8],
        order: ByteOrder,
        naive: bool,
    ) -> Self {
        Bridge {
            ops,
            op_stats: ops
                .iter()
                .map(|o| crate::metrics::BridgeOpCounters::register(o.name))
                .collect(),
            prog,
            vers,
            object_key: object_key.to_vec(),
            order,
            naive,
            counters: BridgeCounters::default(),
        }
    }

    /// This bridge's counters so far.
    #[must_use]
    pub fn counters(&self) -> BridgeCounters {
        self.counters
    }

    fn reject(&mut self, op: Option<usize>) {
        self.counters.rejected += 1;
        crate::metrics::bridge_rejected();
        if let Some(i) = op {
            self.op_stats[i].rejected();
        }
    }

    /// Handles one unframed ONC call record.  `forward` carries a
    /// complete GIOP request message to the upstream and returns its
    /// complete GIOP reply message (`None` on a dead link).  On
    /// [`BridgeOutcome::Replied`], `reply` holds the unframed ONC reply.
    pub fn handle_record(
        &mut self,
        record: &[u8],
        reply: &mut MarshalBuf,
        forward: &mut dyn UpstreamLink,
    ) -> BridgeOutcome {
        let (header, args) = match oncrpc::accept_call(record, self.prog, self.vers, reply) {
            Ok(ok) => ok,
            Err(answered) => {
                self.reject(None);
                return if answered {
                    BridgeOutcome::Replied
                } else {
                    BridgeOutcome::Silent
                };
            }
        };
        let Some(op_idx) = self.ops.iter().position(|o| o.proc_num == header.proc) else {
            self.reject(None);
            oncrpc::write_reply(reply, header.xid, ReplyOutcome::ProcUnavail);
            return BridgeOutcome::Replied;
        };
        let op = self.ops[op_idx];

        // Rewrite the request leg into a pooled GIOP message.
        let mut out = crate::pool::checkout();
        let size_at = giop::begin_message(&mut out, self.order, giop::MsgType::Request);
        let cdr = CdrOut::begin(&out, self.order);
        giop::put_request_header(
            &mut out,
            &cdr,
            header.xid,
            !op.oneway,
            &self.object_key,
            op.name,
        );
        let rewrite = if self.naive {
            op.request_naive
        } else {
            op.request
        };
        if rewrite(args, &mut out).is_err() {
            self.reject(Some(op_idx));
            crate::metrics::reject(crate::metrics::Codec::Xdr);
            oncrpc::write_reply(reply, header.xid, ReplyOutcome::GarbageArgs);
            return BridgeOutcome::Replied;
        }
        giop::finish_message(&mut out, size_at, self.order);

        let response = forward.forward(out.as_slice(), op.idempotent);
        if op.oneway {
            if response.is_some() {
                self.forwarded(op_idx);
            } else {
                self.reject(Some(op_idx));
            }
            return BridgeOutcome::Silent;
        }
        let Some(response) = response else {
            self.reject(Some(op_idx));
            oncrpc::write_reply(reply, header.xid, ReplyOutcome::SystemErr);
            return BridgeOutcome::Replied;
        };

        // Rewrite the reply leg back.  Anything unexpected — parse
        // failure, a byte order this pair was not compiled for, an
        // exception — is a SYSTEM_ERR toward the ONC client.
        match self.transcode_reply(&op, &response, header.xid, reply) {
            Ok(()) => {
                self.forwarded(op_idx);
            }
            Err(()) => {
                self.reject(Some(op_idx));
                reply.clear();
                oncrpc::write_reply(reply, header.xid, ReplyOutcome::SystemErr);
            }
        }
        BridgeOutcome::Replied
    }

    fn forwarded(&mut self, op: usize) {
        self.counters.forwarded += 1;
        crate::metrics::bridge_forwarded();
        self.op_stats[op].forwarded();
        if self.naive {
            self.counters.fallback += 1;
            crate::metrics::bridge_fallback();
            self.op_stats[op].fallback();
        }
    }

    /// Parses one GIOP reply message and writes the full ONC success
    /// reply (header + rewritten body) into `reply`.
    fn transcode_reply(
        &self,
        op: &BridgeOp,
        response: &[u8],
        xid: u32,
        reply: &mut MarshalBuf,
    ) -> Result<(), ()> {
        let mut r = MsgReader::new(response);
        let h = giop::read_header(&mut r).map_err(|_| ())?;
        if h.msg_type != giop::MsgType::Reply || h.order != self.order {
            return Err(());
        }
        let cdr = CdrIn::begin(&r, h.order);
        let rh = giop::get_reply_header(&mut r, &cdr).map_err(|_| ())?;
        if rh.request_id != xid || rh.status != giop::ReplyStatus::NoException {
            return Err(());
        }
        reply.clear();
        oncrpc::write_reply(reply, xid, ReplyOutcome::Success);
        let rewrite = if self.naive { op.reply_naive } else { op.reply };
        rewrite(&response[r.pos()..], reply).map_err(|_| ())
    }
}

/// Tuning for a [`Supervisor`]'s circuit breaker.
#[derive(Clone, Copy, Debug)]
pub struct BreakerPolicy {
    /// Consecutive upstream failures that open the circuit.
    pub failure_threshold: u32,
    /// How long the circuit stays open after the first trip; doubles
    /// on every failed half-open probe.
    pub backoff: Duration,
    /// Ceiling on the doubled backoff.
    pub backoff_cap: Duration,
    /// Extra send attempts (beyond the first) granted to *idempotent*
    /// operations while the circuit is closed.
    pub retry_budget: u32,
    /// Seed for the jitter stream.  Deterministic on purpose: chaos
    /// runs replay the same schedule from the same seed.
    pub seed: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 5,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(10),
            retry_budget: 1,
            seed: 0x5eed_cafe,
        }
    }
}

/// Where a [`Supervisor`]'s circuit currently stands.
#[derive(Clone, Copy, Debug)]
enum BreakerState {
    /// Healthy; counting consecutive failures toward the threshold.
    Closed { consecutive_failures: u32 },
    /// Tripped: fail fast until `until`, then probe.  `wait` is the
    /// unjittered base delay the next reopen doubles from.
    Open { until: Instant, wait: Duration },
    /// One probe in flight decides: success closes, failure reopens
    /// with a doubled wait.
    HalfOpen { wait: Duration },
}

/// Local event counts for one [`Supervisor`] (the same events feed the
/// process-wide `bridge.breaker.*` telemetry counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Times the circuit tripped open (including reopens).
    pub opened: u64,
    /// Times a half-open probe succeeded and closed the circuit.
    pub closed: u64,
    /// Requests answered failed without touching the upstream because
    /// the circuit was open.
    pub fast_failed: u64,
    /// Idempotent resends after an upstream failure.
    pub retried: u64,
}

/// A self-healing wrapper around an [`UpstreamLink`]: circuit breaker
/// with jittered exponential backoff, plus a bounded retry budget for
/// idempotent operations.
///
/// While open, every forward fails immediately (`None` — the bridge
/// turns that into `SYSTEM_ERR` toward the caller) so a dead upstream
/// costs callers a cheap error instead of a timeout each.  After the
/// backoff elapses exactly one request probes the upstream; success
/// closes the circuit, failure reopens it with the wait doubled (capped
/// and jittered, so a fleet of gateways does not re-probe in lockstep).
pub struct Supervisor<L> {
    inner: L,
    policy: BreakerPolicy,
    state: BreakerState,
    rng: SplitMix64,
    stats: SupervisorStats,
}

impl<L: UpstreamLink> Supervisor<L> {
    /// Wraps `inner` under `policy`.
    #[must_use]
    pub fn new(inner: L, policy: BreakerPolicy) -> Self {
        Supervisor {
            inner,
            policy,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            rng: SplitMix64::new(policy.seed),
            stats: SupervisorStats::default(),
        }
    }

    /// This supervisor's event counts so far.
    #[must_use]
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// True while the circuit is open (fast-failing).
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Equal-jitter delay: half the base wait guaranteed, the other
    /// half uniformly random, so simultaneous trips spread their
    /// probes instead of re-converging on the upstream together.
    fn jittered(&mut self, wait: Duration) -> Duration {
        let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        let half = ns / 2;
        Duration::from_nanos(half + self.rng.below(half + 1))
    }

    fn trip(&mut self, wait: Duration) {
        let delay = self.jittered(wait);
        self.state = BreakerState::Open {
            until: Instant::now() + delay,
            wait,
        };
        self.stats.opened += 1;
        crate::metrics::breaker_open();
    }

    fn on_success(&mut self) {
        if matches!(self.state, BreakerState::HalfOpen { .. }) {
            self.stats.closed += 1;
            crate::metrics::breaker_close();
        }
        self.state = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }

    fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.policy.failure_threshold {
                    self.trip(self.policy.backoff);
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: n,
                    };
                }
            }
            BreakerState::HalfOpen { wait } => {
                // The probe failed: reopen, doubled and capped.
                let doubled = wait
                    .checked_mul(2)
                    .unwrap_or(self.policy.backoff_cap)
                    .min(self.policy.backoff_cap);
                self.trip(doubled.max(self.policy.backoff));
            }
            BreakerState::Open { .. } => {}
        }
    }
}

impl<L: UpstreamLink> UpstreamLink for Supervisor<L> {
    fn forward(&mut self, request: &[u8], idempotent: bool) -> Option<Vec<u8>> {
        if let BreakerState::Open { until, wait } = self.state {
            if Instant::now() < until {
                self.stats.fast_failed += 1;
                crate::metrics::breaker_fastfail();
                return None;
            }
            self.state = BreakerState::HalfOpen { wait };
        }
        // Half-open grants exactly one probe; retries are for healthy
        // circuits and idempotent operations only.
        let attempts = if idempotent && matches!(self.state, BreakerState::Closed { .. }) {
            1 + self.policy.retry_budget
        } else {
            1
        };
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retried += 1;
                crate::metrics::breaker_retry();
            }
            if let Some(response) = self.inner.forward(request, idempotent) {
                self.on_success();
                return Some(response);
            }
            self.on_failure();
            if self.is_open() {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oncrpc::{CallHeader, ReplyVerdict};

    // A toy pair: one u32 argument and one u32 result, byte-swapped
    // between the legs (XDR big-endian ↔ CDR little-endian).
    fn req_fused(src: &[u8], dst: &mut MarshalBuf) -> Result<(), DecodeError> {
        let mut r = MsgReader::new(src);
        let _db = dst.len();
        let v = r.get_u32_be()?;
        dst.align_from(_db, 4);
        dst.put_u32_le(v);
        Ok(())
    }

    fn rep_fused(src: &[u8], dst: &mut MarshalBuf) -> Result<(), DecodeError> {
        let mut r = MsgReader::new(src);
        let _sb = r.pos();
        r.align_from(_sb, 4)?;
        let v = r.get_u32_le()?;
        dst.put_u32_be(v);
        Ok(())
    }

    static OPS: &[BridgeOp] = &[BridgeOp {
        proc_num: 1,
        name: "bump",
        oneway: false,
        idempotent: false,
        request: req_fused,
        reply: rep_fused,
        request_naive: req_fused,
        reply_naive: rep_fused,
    }];

    fn call_record(proc_num: u32, arg: u32) -> Vec<u8> {
        let mut b = MarshalBuf::new();
        CallHeader {
            xid: 7,
            prog: 0x2000_0001,
            vers: 1,
            proc: proc_num,
        }
        .write(&mut b);
        b.put_u32_be(arg);
        b.into_vec()
    }

    /// A GIOP echo-ish upstream: decodes the request, replies with the
    /// argument + 1.
    fn upstream(msg: &[u8]) -> Option<Vec<u8>> {
        let mut r = MsgReader::new(msg);
        let h = giop::read_header(&mut r).ok()?;
        let cdr = CdrIn::begin(&r, h.order);
        let rh = giop::get_request_header_ref(&mut r, &cdr).ok()?;
        assert_eq!(rh.operation, "bump");
        let base = r.pos();
        r.align_from(base, 4).ok()?;
        let v = cdr.get_u32(&mut r).ok()?;
        let mut out = MarshalBuf::new();
        let at = giop::begin_message(&mut out, h.order, giop::MsgType::Reply);
        let co = CdrOut::begin(&out, h.order);
        giop::put_reply_header(&mut out, &co, rh.request_id, giop::ReplyStatus::NoException);
        co.put_u32(&mut out, v + 1);
        giop::finish_message(&mut out, at, h.order);
        Some(out.into_vec())
    }

    fn bridge(naive: bool) -> Bridge {
        Bridge::new(OPS, 0x2000_0001, 1, b"obj", ByteOrder::Little, naive)
    }

    #[test]
    fn forwards_and_rewrites_both_legs() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        let out = b.handle_record(&call_record(1, 41), &mut reply, &mut upstream);
        assert_eq!(out, BridgeOutcome::Replied);
        let data = reply.as_slice();
        let mut r = MsgReader::new(data);
        let (xid, verdict) = oncrpc::read_reply_verdict(&mut r).expect("reply parses");
        assert_eq!((xid, verdict), (7, ReplyVerdict::Success));
        assert_eq!(r.get_u32_be().unwrap(), 42, "result re-encoded as XDR");
        assert!(r.is_exhausted());
        assert_eq!(
            b.counters(),
            BridgeCounters {
                forwarded: 1,
                rejected: 0,
                fallback: 0
            }
        );
    }

    #[test]
    fn naive_mode_counts_fallbacks() {
        let mut b = bridge(true);
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 1), &mut reply, &mut upstream);
        assert_eq!(
            b.counters(),
            BridgeCounters {
                forwarded: 1,
                rejected: 0,
                fallback: 1
            }
        );
    }

    #[test]
    fn hostile_args_answer_garbage_args_without_forwarding() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        let mut rec = call_record(1, 1);
        rec.truncate(rec.len() - 2); // argument word cut short
        let out = b.handle_record(&rec, &mut reply, &mut |_: &[u8]| panic!("must not forward"));
        assert_eq!(out, BridgeOutcome::Replied);
        let mut r = MsgReader::new(reply.as_slice());
        let (_, verdict) = oncrpc::read_reply_verdict(&mut r).unwrap();
        assert_eq!(verdict, ReplyVerdict::GarbageArgs);
        assert_eq!(b.counters().rejected, 1);
    }

    #[test]
    fn dead_or_lying_upstream_answers_system_err() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 1), &mut reply, &mut |_: &[u8]| None);
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::SystemErr
        );

        // Garbage reply bytes: also SYSTEM_ERR, not a crash.
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 1), &mut reply, &mut |_: &[u8]| {
            Some(vec![0xff; 6])
        });
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::SystemErr
        );
        assert_eq!(b.counters().rejected, 2);
    }

    #[test]
    fn unknown_procedure_and_wrong_program_refuse() {
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(9, 1), &mut reply, &mut |_: &[u8]| {
            panic!("must not forward")
        });
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::ProcUnavail
        );

        let mut wrong = Bridge::new(OPS, 77, 1, b"obj", ByteOrder::Little, false);
        let mut reply = MarshalBuf::new();
        wrong.handle_record(&call_record(1, 1), &mut reply, &mut |_: &[u8]| {
            panic!("must not forward")
        });
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::ProgUnavail
        );
    }

    /// A scriptable upstream: pops one result per call and counts how
    /// often it was actually reached.
    struct ScriptedUpstream {
        script: std::collections::VecDeque<bool>,
        calls: u64,
    }
    impl ScriptedUpstream {
        fn new(script: &[bool]) -> Self {
            ScriptedUpstream {
                script: script.iter().copied().collect(),
                calls: 0,
            }
        }
    }
    impl UpstreamLink for ScriptedUpstream {
        fn forward(&mut self, _request: &[u8], _idempotent: bool) -> Option<Vec<u8>> {
            self.calls += 1;
            if self.script.pop_front().unwrap_or(false) {
                Some(vec![1])
            } else {
                None
            }
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_fast_fails() {
        let policy = BreakerPolicy {
            failure_threshold: 2,
            backoff: Duration::from_secs(3600), // never elapses in-test
            retry_budget: 0,
            ..BreakerPolicy::default()
        };
        let mut s = Supervisor::new(ScriptedUpstream::new(&[false; 8]), policy);
        assert!(s.forward(b"req", false).is_none());
        assert!(!s.is_open(), "one failure is below the threshold");
        assert!(s.forward(b"req", false).is_none());
        assert!(s.is_open(), "second consecutive failure trips the circuit");
        for _ in 0..5 {
            assert!(s.forward(b"req", false).is_none());
        }
        assert_eq!(
            s.inner.calls, 2,
            "an open circuit must not touch the upstream"
        );
        assert_eq!(s.stats().opened, 1);
        assert_eq!(s.stats().fast_failed, 5);
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe() {
        let policy = BreakerPolicy {
            failure_threshold: 1,
            backoff: Duration::ZERO, // elapses immediately: probe next call
            retry_budget: 0,
            ..BreakerPolicy::default()
        };
        // Fail once (trips), then the upstream comes back for good.
        let mut s = Supervisor::new(ScriptedUpstream::new(&[false, true, true]), policy);
        assert!(s.forward(b"req", false).is_none());
        assert!(s.is_open());
        // Backoff already elapsed: this call is the half-open probe,
        // it succeeds, and the circuit closes without a restart.
        assert!(s.forward(b"req", false).is_some());
        assert!(!s.is_open());
        assert!(s.forward(b"req", false).is_some());
        assert_eq!(s.stats().opened, 1);
        assert_eq!(s.stats().closed, 1);
    }

    #[test]
    fn failed_probe_reopens_with_a_doubled_wait() {
        let policy = BreakerPolicy {
            failure_threshold: 1,
            backoff: Duration::ZERO,
            backoff_cap: Duration::from_secs(3600),
            retry_budget: 0,
            ..BreakerPolicy::default()
        };
        let mut s = Supervisor::new(ScriptedUpstream::new(&[false, false, true]), policy);
        assert!(s.forward(b"req", false).is_none()); // trips (wait 0)
        assert!(s.forward(b"req", false).is_none()); // probe fails: reopen
        assert_eq!(s.stats().opened, 2);
        // The reopen escalated from zero to at least the base backoff
        // floor; with a zero base that is still zero, so the next call
        // probes again and heals.
        assert!(s.forward(b"req", false).is_some());
        assert_eq!(s.stats().closed, 1);
    }

    #[test]
    fn retry_budget_applies_only_to_idempotent_ops() {
        let policy = BreakerPolicy {
            failure_threshold: 10,
            retry_budget: 1,
            ..BreakerPolicy::default()
        };
        // Fails once, then succeeds: an idempotent op absorbs the
        // failure inside its retry budget.
        let mut s = Supervisor::new(ScriptedUpstream::new(&[false, true]), policy);
        assert!(s.forward(b"req", true).is_some());
        assert_eq!(s.inner.calls, 2);
        assert_eq!(s.stats().retried, 1);

        // The same shape, not idempotent: one attempt, one failure.
        let mut s = Supervisor::new(ScriptedUpstream::new(&[false, true]), policy);
        assert!(s.forward(b"req", false).is_none());
        assert_eq!(s.inner.calls, 1);
        assert_eq!(s.stats().retried, 0);
    }

    #[test]
    fn a_supervised_bridge_degrades_and_heals_end_to_end() {
        // Dead upstream behind a supervisor: callers get SYSTEM_ERR
        // (fast), and once the upstream returns the same bridge serves
        // again — the self-healing contract, observed from the ONC side.
        let policy = BreakerPolicy {
            failure_threshold: 1,
            backoff: Duration::ZERO,
            retry_budget: 0,
            ..BreakerPolicy::default()
        };
        struct Flapping {
            healthy: bool,
        }
        impl UpstreamLink for Flapping {
            fn forward(&mut self, request: &[u8], _idempotent: bool) -> Option<Vec<u8>> {
                if self.healthy {
                    upstream(request)
                } else {
                    None
                }
            }
        }
        let mut link = Supervisor::new(Flapping { healthy: false }, policy);
        let mut b = bridge(false);
        let mut reply = MarshalBuf::new();

        b.handle_record(&call_record(1, 1), &mut reply, &mut link);
        let mut r = MsgReader::new(reply.as_slice());
        assert_eq!(
            oncrpc::read_reply_verdict(&mut r).unwrap().1,
            ReplyVerdict::SystemErr
        );
        assert!(link.is_open());

        link.inner.healthy = true;
        let mut reply = MarshalBuf::new();
        b.handle_record(&call_record(1, 41), &mut reply, &mut link);
        let mut r = MsgReader::new(reply.as_slice());
        let (_, verdict) = oncrpc::read_reply_verdict(&mut r).unwrap();
        assert_eq!(verdict, ReplyVerdict::Success);
        assert_eq!(r.get_u32_be().unwrap(), 42);
        assert!(!link.is_open(), "the probe healed the circuit");
    }
}
