//! Buffer checkout/recycle — the §3.1 reuse footnote taken to its
//! steady-state limit.
//!
//! The paper's buffer-management analysis exists to avoid per-call
//! allocation on the marshal hot path; [`MarshalBuf::clear`] already
//! keeps one buffer's capacity across invocations of the *same* stub.
//! This module closes the remaining gap: a thread-local free list of
//! marshal buffers shared by *every* stub on the thread, so a warm
//! call path — client encode, server decode arena, reply encode —
//! performs zero heap allocations per call.
//!
//! [`checkout`] pops a recycled buffer (or lazily creates an empty
//! one); the returned [`PooledBuf`] derefs to [`MarshalBuf`] and
//! recycles its allocation back into the pool on drop.  The free list
//! is bounded by `FLICK_POOL_CAP` (default [`DEFAULT_POOL_CAP`]), and
//! a high-water trimmer shrinks buffers whose capacity grew far past
//! the largest message the thread has recently produced, so one
//! pathological message cannot pin its allocation forever.
//!
//! The `pool.{hit,miss,recycle}` counters follow the [`crate::metrics`]
//! contract: empty `#[inline]` functions without the `telemetry`
//! feature, recording only while `flick_telemetry::enabled()`.

use crate::buf::MarshalBuf;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Default cap on how many recycled buffers a thread retains
/// (override with the `FLICK_POOL_CAP` environment variable).
pub const DEFAULT_POOL_CAP: usize = 8;

/// The trimmer never shrinks a buffer below this capacity.
const TRIM_FLOOR: usize = 4096;

/// A recycled buffer whose capacity exceeds `TRIM_SLACK` times the
/// pool's high-water mark is shrunk back before re-entering the free
/// list.
const TRIM_SLACK: usize = 4;

fn pool_cap() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("FLICK_POOL_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_POOL_CAP)
    })
}

/// The capacity bound the trimmer enforces for a given high-water
/// mark.
#[must_use]
fn trim_bound(high_water: usize) -> usize {
    high_water.saturating_mul(TRIM_SLACK).max(TRIM_FLOOR)
}

/// Recycles per high-water observation epoch: every this many
/// recycles the windows rotate, so the trim target *decays* once a
/// pathological burst is more than two epochs in the past.
const EPOCH_RECYCLES: u32 = 64;

struct Pool {
    free: Vec<MarshalBuf>,
    /// Largest message length recycled in the current epoch.
    recent_hw: usize,
    /// Largest message length recycled in the previous epoch.
    prev_hw: usize,
    /// Recycles counted toward the current epoch so far.
    epoch_used: u32,
}

impl Pool {
    /// The trim target: the largest message seen across the current
    /// and previous epochs.  Two windows, not one, so the target never
    /// drops to zero mid-burst just because an epoch boundary fell in
    /// the middle of it.
    fn high_water(&self) -> usize {
        self.recent_hw.max(self.prev_hw)
    }

    fn observe(&mut self, len: usize) {
        self.recent_hw = self.recent_hw.max(len);
        self.epoch_used += 1;
        if self.epoch_used >= EPOCH_RECYCLES {
            self.prev_hw = self.recent_hw;
            self.recent_hw = 0;
            self.epoch_used = 0;
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = const {
        RefCell::new(Pool {
            free: Vec::new(),
            recent_hw: 0,
            prev_hw: 0,
            epoch_used: 0,
        })
    };
}

/// A marshal buffer checked out of the thread's pool.  Dereferences to
/// [`MarshalBuf`]; dropping it recycles the allocation for the next
/// [`checkout`] on this thread.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Option<MarshalBuf>,
}

impl PooledBuf {
    /// Detaches the buffer from the pool: the allocation follows the
    /// returned [`MarshalBuf`] and is never recycled.
    #[must_use]
    pub fn detach(mut self) -> MarshalBuf {
        self.buf.take().expect("buffer present until drop")
    }
}

impl Deref for PooledBuf {
    type Target = MarshalBuf;

    #[inline]
    fn deref(&self) -> &MarshalBuf {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut MarshalBuf {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            // `try_with`: a buffer dropped during thread teardown
            // (after the pool's own destructor) just frees normally.
            let _ = POOL.try_with(|p| recycle_into(&mut p.borrow_mut(), buf));
        }
    }
}

fn recycle_into(pool: &mut Pool, mut buf: MarshalBuf) {
    pool.observe(buf.len());
    if pool.free.len() >= pool_cap() {
        return; // full free list: let the allocation go
    }
    buf.clear();
    let bound = trim_bound(pool.high_water());
    if buf.capacity() > bound {
        buf.shrink_to(bound);
    }
    pool.free.push(buf);
    recycled();
}

/// Checks a cleared buffer out of the thread's pool.  A warm pool
/// returns a recycled allocation (a `pool.hit`); a cold one hands out
/// an empty buffer that allocates on first use (a `pool.miss`).
#[must_use]
pub fn checkout() -> PooledBuf {
    match POOL.with(|p| p.borrow_mut().free.pop()) {
        Some(buf) => {
            hit();
            PooledBuf { buf: Some(buf) }
        }
        None => {
            miss();
            PooledBuf {
                buf: Some(MarshalBuf::new()),
            }
        }
    }
}

/// Like [`checkout`], but with at least `cap` bytes pre-reserved —
/// for callers that know the message size up front.
#[must_use]
pub fn checkout_with(cap: usize) -> PooledBuf {
    let mut buf = checkout();
    buf.ensure(cap);
    buf
}

/// Buffers currently resting in this thread's free list (test and
/// diagnostic hook).
#[must_use]
pub fn free_buffers() -> usize {
    POOL.with(|p| p.borrow().free.len())
}

/// Drops every buffer in this thread's free list and resets the
/// high-water windows.
pub fn drain() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.recent_hw = 0;
        p.prev_hw = 0;
        p.epoch_used = 0;
    });
}

#[cfg(feature = "telemetry")]
mod imp {
    use flick_telemetry::{global, Counter};
    use std::sync::OnceLock;

    fn handles() -> &'static [&'static Counter; 3] {
        static HANDLES: OnceLock<[&'static Counter; 3]> = OnceLock::new();
        HANDLES.get_or_init(|| {
            [
                global().counter("pool.hit"),
                global().counter("pool.miss"),
                global().counter("pool.recycle"),
            ]
        })
    }

    pub fn hit() {
        if flick_telemetry::enabled() {
            handles()[0].inc();
        }
    }

    pub fn miss() {
        if flick_telemetry::enabled() {
            handles()[1].inc();
        }
    }

    pub fn recycled() {
        if flick_telemetry::enabled() {
            handles()[2].inc();
        }
    }
}

/// Records one checkout served from the free list (`pool.hit`).
#[inline]
fn hit() {
    #[cfg(feature = "telemetry")]
    imp::hit();
}

/// Records one checkout that had to create a buffer (`pool.miss`).
#[inline]
fn miss() {
    #[cfg(feature = "telemetry")]
    imp::miss();
}

/// Records one buffer returned to the free list (`pool.recycle`).
#[inline]
fn recycled() {
    #[cfg(feature = "telemetry")]
    imp::recycled();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_the_allocation() {
        drain();
        let mut b = checkout();
        b.put_bytes(&[7; 1000]);
        let cap = b.capacity();
        assert!(cap >= 1000);
        drop(b);
        assert_eq!(free_buffers(), 1);

        let b = checkout();
        assert_eq!(b.len(), 0, "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "the allocation survived recycling");
        assert_eq!(free_buffers(), 0);
    }

    #[test]
    fn detach_keeps_the_buffer_out_of_the_pool() {
        drain();
        let mut b = checkout();
        b.put_u32_be(1);
        let owned = b.detach();
        assert_eq!(owned.len(), 4);
        assert_eq!(free_buffers(), 0);
    }

    #[test]
    fn free_list_is_bounded() {
        drain();
        let held: Vec<PooledBuf> = (0..2 * DEFAULT_POOL_CAP).map(|_| checkout()).collect();
        drop(held);
        assert!(free_buffers() <= pool_cap());
    }

    #[test]
    fn trim_bound_has_a_floor_and_slack() {
        assert_eq!(trim_bound(0), TRIM_FLOOR);
        assert_eq!(trim_bound(10), TRIM_FLOOR);
        assert_eq!(trim_bound(1 << 20), (1 << 20) * TRIM_SLACK);
        // Saturates rather than overflowing on absurd marks.
        assert_eq!(trim_bound(usize::MAX), usize::MAX);
    }

    #[test]
    fn oversized_buffers_are_trimmed_on_recycle() {
        drain();
        // Establish a small high-water mark.
        {
            let mut b = checkout();
            b.put_bytes(&[0; 64]);
        }
        drain();
        let mut pool = Pool {
            free: Vec::new(),
            recent_hw: 64,
            prev_hw: 0,
            epoch_used: 0,
        };
        let mut big = MarshalBuf::with_capacity(1 << 20);
        big.put_bytes(&[1; 32]);
        recycle_into(&mut pool, big);
        assert_eq!(pool.free.len(), 1);
        assert!(
            pool.free[0].capacity() <= trim_bound(64),
            "capacity {} not trimmed to {}",
            pool.free[0].capacity(),
            trim_bound(64)
        );
    }

    #[test]
    fn high_water_decays_after_a_pathological_burst() {
        let mut pool = Pool {
            free: Vec::new(),
            recent_hw: 0,
            prev_hw: 0,
            epoch_used: 0,
        };
        // One 8 MiB message spikes the mark...
        let mut huge = MarshalBuf::with_capacity(8 << 20);
        huge.put_bytes(&[0; 8 << 20]);
        recycle_into(&mut pool, huge);
        assert!(trim_bound(pool.high_water()) >= 8 << 20);

        // ...but two epochs of small traffic let it decay, so the next
        // oversized recycle is trimmed back toward small-message size.
        for _ in 0..2 * EPOCH_RECYCLES {
            pool.free.clear(); // keep the free list from capping recycles
            let mut small = MarshalBuf::new();
            small.put_bytes(&[0; 256]);
            recycle_into(&mut pool, small);
        }
        assert!(
            pool.high_water() <= 256,
            "high water {} still pinned by the old burst",
            pool.high_water()
        );
        pool.free.clear();
        let lingering = MarshalBuf::with_capacity(8 << 20);
        recycle_into(&mut pool, lingering);
        assert!(
            pool.free[0].capacity() <= trim_bound(256),
            "capacity {} not trimmed after decay",
            pool.free[0].capacity()
        );
    }

    #[test]
    fn checkout_with_reserves() {
        drain();
        let b = checkout_with(512);
        assert!(b.capacity() >= 512);
    }

    #[test]
    fn warm_checkout_does_not_grow() {
        drain();
        {
            let mut b = checkout_with(256);
            b.put_bytes(&[3; 200]);
        }
        let mut b = checkout();
        let cap = b.capacity();
        b.ensure(200);
        b.put_bytes(&[4; 200]);
        assert_eq!(b.capacity(), cap, "warm path must not reallocate");
    }
}
