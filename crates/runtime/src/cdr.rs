//! CDR — CORBA's Common Data Representation, as carried by IIOP.
//!
//! Primitives are *naturally aligned* relative to the start of the
//! encapsulation, in the sender's byte order (a GIOP header flag says
//! which).  Strings carry a length that *includes* a NUL terminator.

use crate::buf::{MarshalBuf, MsgReader};
use crate::error::DecodeError;

/// Byte order of a CDR stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteOrder {
    /// Big-endian ("network order"; the paper's SPARC machines).
    Big,
    /// Little-endian (the GIOP flag bit set).
    Little,
}

impl ByteOrder {
    /// The GIOP flags-byte encoding of this order.
    #[must_use]
    pub fn giop_flag(self) -> u8 {
        match self {
            ByteOrder::Big => 0,
            ByteOrder::Little => 1,
        }
    }

    /// Parses the GIOP flags byte.
    pub fn from_giop_flag(flags: u8) -> Self {
        if flags & 1 == 0 {
            ByteOrder::Big
        } else {
            ByteOrder::Little
        }
    }

    /// The machine's native order.
    #[must_use]
    pub fn native() -> Self {
        if cfg!(target_endian = "little") {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        }
    }
}

/// CDR encoder state: a byte order plus the stream-start offset that
/// alignment is computed against.
#[derive(Clone, Copy, Debug)]
pub struct CdrOut {
    /// Byte order of the stream.
    pub order: ByteOrder,
    /// Buffer offset where the CDR stream begins (alignment origin).
    pub base: usize,
}

impl CdrOut {
    /// A stream beginning at the buffer's current end.
    #[must_use]
    pub fn begin(buf: &MarshalBuf, order: ByteOrder) -> Self {
        CdrOut {
            order,
            base: buf.len(),
        }
    }

    /// Pads so the next datum is `align`-aligned within the stream.
    #[inline]
    pub fn align(&self, buf: &mut MarshalBuf, align: usize) {
        let pos = buf.len() - self.base;
        let target = crate::align_up(pos, align);
        buf.put_zeros(target - pos);
    }

    /// Appends an aligned `u32`.
    #[inline]
    pub fn put_u32(&self, buf: &mut MarshalBuf, v: u32) {
        self.align(buf, 4);
        match self.order {
            ByteOrder::Big => buf.put_u32_be(v),
            ByteOrder::Little => buf.put_u32_le(v),
        }
    }

    /// Appends an aligned `i32`.
    #[inline]
    pub fn put_i32(&self, buf: &mut MarshalBuf, v: i32) {
        self.put_u32(buf, v as u32);
    }

    /// Appends an aligned `u16`.
    #[inline]
    pub fn put_u16(&self, buf: &mut MarshalBuf, v: u16) {
        self.align(buf, 2);
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        buf.put_bytes(&b);
    }

    /// Appends an aligned `u64`.
    #[inline]
    pub fn put_u64(&self, buf: &mut MarshalBuf, v: u64) {
        self.align(buf, 8);
        let b = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        buf.put_bytes(&b);
    }

    /// Appends one byte (octet/char/boolean).
    #[inline]
    pub fn put_u8(&self, buf: &mut MarshalBuf, v: u8) {
        buf.put_u8(v);
    }

    /// Appends an aligned IEEE-754 single.
    #[inline]
    pub fn put_f32(&self, buf: &mut MarshalBuf, v: f32) {
        self.put_u32(buf, v.to_bits());
    }

    /// Appends an aligned IEEE-754 double.
    #[inline]
    pub fn put_f64(&self, buf: &mut MarshalBuf, v: f64) {
        self.put_u64(buf, v.to_bits());
    }

    /// Appends a CDR string: u32 length *including* NUL, bytes, NUL.
    #[inline]
    pub fn put_string(&self, buf: &mut MarshalBuf, s: &str) {
        self.put_u32(buf, s.len() as u32 + 1);
        buf.put_bytes(s.as_bytes());
        buf.put_u8(0);
    }

    /// Appends a CDR sequence header (element count).
    #[inline]
    pub fn put_seq_len(&self, buf: &mut MarshalBuf, n: usize) {
        self.put_u32(buf, n as u32);
    }
}

/// CDR decoder state over a [`MsgReader`].
#[derive(Clone, Copy, Debug)]
pub struct CdrIn {
    /// Byte order of the stream.
    pub order: ByteOrder,
    /// Reader position where the CDR stream begins (alignment origin).
    pub base: usize,
}

impl CdrIn {
    /// A stream beginning at the reader's current position.
    #[must_use]
    pub fn begin(r: &MsgReader<'_>, order: ByteOrder) -> Self {
        CdrIn {
            order,
            base: r.pos(),
        }
    }

    /// Skips padding so the next datum is `align`-aligned.
    #[inline]
    pub fn align(&self, r: &mut MsgReader<'_>, align: usize) -> Result<(), DecodeError> {
        let pos = r.pos() - self.base;
        let target = crate::align_up(pos, align);
        r.skip(target - pos)
    }

    /// Reads an aligned `u32`.
    #[inline]
    pub fn get_u32(&self, r: &mut MsgReader<'_>) -> Result<u32, DecodeError> {
        self.align(r, 4)?;
        match self.order {
            ByteOrder::Big => r.get_u32_be(),
            ByteOrder::Little => r.get_u32_le(),
        }
    }

    /// Reads an aligned `i32`.
    #[inline]
    pub fn get_i32(&self, r: &mut MsgReader<'_>) -> Result<i32, DecodeError> {
        Ok(self.get_u32(r)? as i32)
    }

    /// Reads an aligned `u16`.
    #[inline]
    pub fn get_u16(&self, r: &mut MsgReader<'_>) -> Result<u16, DecodeError> {
        self.align(r, 2)?;
        let b = r.bytes(2)?;
        Ok(match self.order {
            ByteOrder::Big => u16::from_be_bytes([b[0], b[1]]),
            ByteOrder::Little => u16::from_le_bytes([b[0], b[1]]),
        })
    }

    /// Reads an aligned `u64`.
    #[inline]
    pub fn get_u64(&self, r: &mut MsgReader<'_>) -> Result<u64, DecodeError> {
        self.align(r, 8)?;
        let b = r.bytes(8)?;
        let arr: [u8; 8] = b.try_into().expect("len 8");
        Ok(match self.order {
            ByteOrder::Big => u64::from_be_bytes(arr),
            ByteOrder::Little => u64::from_le_bytes(arr),
        })
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&self, r: &mut MsgReader<'_>) -> Result<u8, DecodeError> {
        r.get_u8()
    }

    /// Reads an aligned IEEE-754 single.
    #[inline]
    pub fn get_f32(&self, r: &mut MsgReader<'_>) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.get_u32(r)?))
    }

    /// Reads an aligned IEEE-754 double.
    #[inline]
    pub fn get_f64(&self, r: &mut MsgReader<'_>) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64(r)?))
    }

    /// Reads a CDR string, returning the bytes *without* the NUL.
    #[inline]
    pub fn get_string<'a>(&self, r: &mut MsgReader<'a>) -> Result<&'a [u8], DecodeError> {
        let n = self.get_u32(r)? as usize;
        if n == 0 {
            return Err(DecodeError::BadValue("CDR string length must include NUL"));
        }
        let s = r.bytes(n)?;
        if s[n - 1] != 0 {
            return Err(DecodeError::BadValue("CDR string missing NUL terminator"));
        }
        Ok(&s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_alignment_inserts_padding() {
        let mut buf = MarshalBuf::new();
        let out = CdrOut::begin(&buf, ByteOrder::Big);
        out.put_u8(&mut buf, 7);
        out.put_u32(&mut buf, 0x01020304); // 3 bytes padding first
        assert_eq!(buf.as_slice(), &[7, 0, 0, 0, 1, 2, 3, 4]);
        out.put_u8(&mut buf, 9);
        out.put_f64(&mut buf, 1.0); // 7 bytes padding to offset 16
        assert_eq!(buf.len(), 24);
    }

    #[test]
    fn alignment_is_relative_to_stream_base() {
        let mut buf = MarshalBuf::new();
        buf.put_u8(0xAA); // pre-existing header byte
        let out = CdrOut::begin(&buf, ByteOrder::Big);
        out.put_u32(&mut buf, 5); // aligned at stream offset 0, no pad
        assert_eq!(buf.as_slice(), &[0xAA, 0, 0, 0, 5]);

        let data = buf.as_slice().to_vec();
        let mut r = MsgReader::new(&data);
        r.get_u8().unwrap();
        let cin = CdrIn::begin(&r, ByteOrder::Big);
        assert_eq!(cin.get_u32(&mut r).unwrap(), 5);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut buf = MarshalBuf::new();
        let out = CdrOut::begin(&buf, ByteOrder::Little);
        out.put_u32(&mut buf, 0x01020304);
        out.put_u16(&mut buf, 0x0506);
        out.put_u64(&mut buf, 0x0708090a0b0c0d0e);
        let data = buf.into_vec();
        assert_eq!(&data[..4], &[4, 3, 2, 1]);
        let mut r = MsgReader::new(&data);
        let cin = CdrIn::begin(&r, ByteOrder::Little);
        assert_eq!(cin.get_u32(&mut r).unwrap(), 0x01020304);
        assert_eq!(cin.get_u16(&mut r).unwrap(), 0x0506);
        assert_eq!(cin.get_u64(&mut r).unwrap(), 0x0708090a0b0c0d0e);
    }

    #[test]
    fn string_includes_nul() {
        let mut buf = MarshalBuf::new();
        let out = CdrOut::begin(&buf, ByteOrder::Big);
        out.put_string(&mut buf, "hi");
        // length 3 (incl NUL) + 'h' 'i' '\0'
        assert_eq!(buf.as_slice(), &[0, 0, 0, 3, b'h', b'i', 0]);
        let data = buf.into_vec();
        let mut r = MsgReader::new(&data);
        let cin = CdrIn::begin(&r, ByteOrder::Big);
        assert_eq!(cin.get_string(&mut r).unwrap(), b"hi");
    }

    #[test]
    fn bad_strings_rejected() {
        // Zero length.
        let data = [0, 0, 0, 0];
        let mut r = MsgReader::new(&data);
        let cin = CdrIn::begin(&r, ByteOrder::Big);
        assert!(cin.get_string(&mut r).is_err());
        // Missing NUL.
        let data = [0, 0, 0, 2, b'h', b'i'];
        let mut r = MsgReader::new(&data);
        let cin = CdrIn::begin(&r, ByteOrder::Big);
        assert!(cin.get_string(&mut r).is_err());
    }

    #[test]
    fn floats_roundtrip() {
        let mut buf = MarshalBuf::new();
        let out = CdrOut::begin(&buf, ByteOrder::Little);
        out.put_f32(&mut buf, 2.5);
        out.put_f64(&mut buf, -8.125);
        let data = buf.into_vec();
        let mut r = MsgReader::new(&data);
        let cin = CdrIn::begin(&r, ByteOrder::Little);
        assert_eq!(cin.get_f32(&mut r).unwrap(), 2.5);
        assert_eq!(cin.get_f64(&mut r).unwrap(), -8.125);
    }

    #[test]
    fn giop_flag_roundtrip() {
        assert_eq!(
            ByteOrder::from_giop_flag(ByteOrder::Big.giop_flag()),
            ByteOrder::Big
        );
        assert_eq!(
            ByteOrder::from_giop_flag(ByteOrder::Little.giop_flag()),
            ByteOrder::Little
        );
    }
}
