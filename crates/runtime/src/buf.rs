//! The marshal buffer and chunk access.
//!
//! The paper's §3.1 buffer-management optimization hinges on the stub
//! checking free space *once per fixed-layout region* rather than once
//! per atomic datum.  [`MarshalBuf::ensure`] is that single check;
//! [`MarshalBuf::chunk`] then hands out a [`ChunkWriter`] over exactly
//! the reserved region, inside which every store is a constant-offset
//! write through the "chunk pointer" (§3.2's chunking).
//!
//! Buffers are reused between stub invocations ([`MarshalBuf::clear`]
//! keeps capacity), matching the paper's footnote 4.

use crate::error::DecodeError;

/// A growable, reusable encode buffer.
#[derive(Clone, Debug, Default)]
pub struct MarshalBuf {
    data: Vec<u8>,
}

impl MarshalBuf {
    /// A fresh, empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer with `cap` bytes pre-reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        MarshalBuf {
            data: Vec::with_capacity(cap),
        }
    }

    /// Resets length to zero, *keeping* the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The marshal-space check: guarantees `additional` more bytes can
    /// be appended without reallocation.
    #[inline]
    pub fn ensure(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Current encoded length.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Bytes the buffer can hold without reallocating — what a pooled
    /// buffer's recycle decision is made on.
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Releases capacity beyond `min_capacity` (never below the
    /// current length).  The pool's high-water trimmer calls this so
    /// one oversized message does not pin its allocation forever.
    #[inline]
    pub fn shrink_to(&mut self, min_capacity: usize) {
        self.data.shrink_to(min_capacity);
    }

    /// True when nothing has been encoded.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes the first `n` bytes, shifting the remainder down in
    /// place (no reallocation).  The connection fabric consumes parsed
    /// frames and flushed reply bytes from the front of its pooled
    /// per-connection buffers this way.
    ///
    /// # Panics
    /// Panics if `n` exceeds the current length.
    #[inline]
    pub fn drain_front(&mut self, n: usize) {
        self.data.drain(..n);
    }

    /// The encoded bytes.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the buffer, yielding the encoded bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Opens a fixed-size chunk of `n` bytes at the current end.
    ///
    /// The buffer grows by `n` (zero-filled); the returned writer
    /// addresses the region by constant offsets.  Callers should
    /// [`MarshalBuf::ensure`] the space beforehand — `chunk` itself
    /// never fails, but hoisting the check is the whole point.
    #[inline]
    pub fn chunk(&mut self, n: usize) -> ChunkWriter<'_> {
        let start = self.data.len();
        self.data.resize(start + n, 0);
        ChunkWriter {
            s: &mut self.data[start..],
        }
    }

    /// Appends raw bytes (the `memcpy` fast path for atomic arrays).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Appends `n` zero bytes (encoding padding).
    #[inline]
    pub fn put_zeros(&mut self, n: usize) {
        self.data.resize(self.data.len() + n, 0);
    }

    /// Pads with zeros so `len` becomes a multiple of `align`.
    #[inline]
    pub fn align_to(&mut self, align: usize) {
        let target = crate::align_up(self.data.len(), align);
        self.data.resize(target, 0);
    }

    /// Appends a big-endian `u32` (checked, per-datum path — the shape
    /// of *unoptimized* stub code; Flick stubs prefer chunked writes).
    #[inline]
    pub fn put_u32_be(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    #[inline]
    pub fn put_u64_be(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u16`.
    #[inline]
    pub fn put_u16_be(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Pads with zeros so `len - base` becomes a multiple of `align`
    /// (stream-relative alignment, for CDR bodies that do not start at
    /// offset zero of the buffer).
    #[inline]
    pub fn align_from(&mut self, base: usize, align: usize) {
        let pos = self.data.len() - base;
        let target = crate::align_up(pos, align);
        self.data.resize(base + target, 0);
    }

    /// Appends a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Overwrites 4 bytes at `offset` with a big-endian `u32` —
    /// used to back-patch lengths in message headers.
    ///
    /// # Panics
    /// Panics if `offset + 4` exceeds the current length.
    #[inline]
    pub fn patch_u32_be(&mut self, offset: usize, v: u32) {
        self.data[offset..offset + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrites 4 bytes at `offset` with a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if `offset + 4` exceeds the current length.
    #[inline]
    pub fn patch_u32_le(&mut self, offset: usize, v: u32) {
        self.data[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Writes into a fixed-layout region by constant offsets — the
/// runtime realization of a *chunk pointer* (§3.2).
///
/// All stores are plain slice writes; with constant offsets the
/// compiler lowers them to pointer-plus-offset instructions, exactly
/// the code shape the paper attributes to chunking.
#[derive(Debug)]
pub struct ChunkWriter<'a> {
    s: &'a mut [u8],
}

impl ChunkWriter<'_> {
    /// Chunk size in bytes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True for a zero-length chunk.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Stores a big-endian `u32` at `off`.
    #[inline]
    pub fn put_u32_be_at(&mut self, off: usize, v: u32) {
        self.s[off..off + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// Stores a little-endian `u32` at `off`.
    #[inline]
    pub fn put_u32_le_at(&mut self, off: usize, v: u32) {
        self.s[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Stores a big-endian `u64` at `off`.
    #[inline]
    pub fn put_u64_be_at(&mut self, off: usize, v: u64) {
        self.s[off..off + 8].copy_from_slice(&v.to_be_bytes());
    }

    /// Stores a little-endian `u64` at `off`.
    #[inline]
    pub fn put_u64_le_at(&mut self, off: usize, v: u64) {
        self.s[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Stores a big-endian `u16` at `off`.
    #[inline]
    pub fn put_u16_be_at(&mut self, off: usize, v: u16) {
        self.s[off..off + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Stores a little-endian `u16` at `off`.
    #[inline]
    pub fn put_u16_le_at(&mut self, off: usize, v: u16) {
        self.s[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Stores one byte at `off`.
    #[inline]
    pub fn put_u8_at(&mut self, off: usize, v: u8) {
        self.s[off] = v;
    }

    /// Stores raw bytes starting at `off`.
    #[inline]
    pub fn put_bytes_at(&mut self, off: usize, bytes: &[u8]) {
        self.s[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Stores a big-endian IEEE-754 single at `off`.
    #[inline]
    pub fn put_f32_be_at(&mut self, off: usize, v: f32) {
        self.put_u32_be_at(off, v.to_bits());
    }

    /// Stores a big-endian IEEE-754 double at `off`.
    #[inline]
    pub fn put_f64_be_at(&mut self, off: usize, v: f64) {
        self.put_u64_be_at(off, v.to_bits());
    }
}

/// A decode cursor over a received message.
#[derive(Clone, Debug)]
pub struct MsgReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> MsgReader<'a> {
    /// Wraps a received message.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        MsgReader { data, pos: 0 }
    }

    /// Current read offset from the start of the message.
    #[inline]
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[inline]
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the whole message has been consumed.
    #[inline]
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Opens a fixed-layout chunk of `n` bytes: one truncation check,
    /// then infallible constant-offset reads.
    #[inline]
    pub fn chunk(&mut self, n: usize) -> Result<ChunkReader<'a>, DecodeError> {
        Ok(ChunkReader { s: self.take(n)? })
    }

    /// Borrows `n` raw bytes from the message (the zero-copy,
    /// "present data in the marshal buffer" path of §3.1).
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Skips `n` bytes (padding).
    #[inline]
    pub fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        self.take(n).map(|_| ())
    }

    /// Advances to the next multiple of `align` from message start.
    #[inline]
    pub fn align_to(&mut self, align: usize) -> Result<(), DecodeError> {
        let target = crate::align_up(self.pos, align);
        self.skip(target - self.pos)
    }

    /// Reads a big-endian `u32` (per-datum path).
    #[inline]
    pub fn get_u32_be(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    #[inline]
    pub fn get_u64_be(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("len 8")))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len 8")))
    }

    /// Reads a big-endian `u16`.
    #[inline]
    pub fn get_u16_be(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16_le(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Skips padding so `pos - base` becomes a multiple of `align`.
    #[inline]
    pub fn align_from(&mut self, base: usize, align: usize) -> Result<(), DecodeError> {
        let pos = self.pos - base;
        let target = crate::align_up(pos, align);
        self.skip(target - pos)
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
}

/// Reads a fixed-layout region by constant offsets (decode-side chunk
/// pointer).  All methods are infallible: the single truncation check
/// happened in [`MsgReader::chunk`].
#[derive(Clone, Copy, Debug)]
pub struct ChunkReader<'a> {
    s: &'a [u8],
}

impl<'a> ChunkReader<'a> {
    /// Chunk size in bytes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True for a zero-length chunk.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Loads a big-endian `u32` from `off`.
    #[inline]
    #[must_use]
    pub fn get_u32_be_at(&self, off: usize) -> u32 {
        u32::from_be_bytes(self.s[off..off + 4].try_into().expect("len 4"))
    }

    /// Loads a little-endian `u32` from `off`.
    #[inline]
    #[must_use]
    pub fn get_u32_le_at(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.s[off..off + 4].try_into().expect("len 4"))
    }

    /// Loads a big-endian `u64` from `off`.
    #[inline]
    #[must_use]
    pub fn get_u64_be_at(&self, off: usize) -> u64 {
        u64::from_be_bytes(self.s[off..off + 8].try_into().expect("len 8"))
    }

    /// Loads a big-endian `u16` from `off`.
    #[inline]
    #[must_use]
    pub fn get_u16_be_at(&self, off: usize) -> u16 {
        u16::from_be_bytes(self.s[off..off + 2].try_into().expect("len 2"))
    }

    /// Loads a little-endian `u16` from `off`.
    #[inline]
    #[must_use]
    pub fn get_u16_le_at(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.s[off..off + 2].try_into().expect("len 2"))
    }

    /// Loads a little-endian `u64` from `off`.
    #[inline]
    #[must_use]
    pub fn get_u64_le_at(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.s[off..off + 8].try_into().expect("len 8"))
    }

    /// Loads one byte from `off`.
    #[inline]
    #[must_use]
    pub fn get_u8_at(&self, off: usize) -> u8 {
        self.s[off]
    }

    /// Borrows `n` bytes starting at `off`.
    #[inline]
    #[must_use]
    pub fn bytes_at(&self, off: usize, n: usize) -> &'a [u8] {
        &self.s[off..off + n]
    }

    /// Loads a big-endian IEEE-754 single from `off`.
    #[inline]
    #[must_use]
    pub fn get_f32_be_at(&self, off: usize) -> f32 {
        f32::from_bits(self.get_u32_be_at(off))
    }

    /// Loads a big-endian IEEE-754 double from `off`.
    #[inline]
    #[must_use]
    pub fn get_f64_be_at(&self, off: usize) -> f64 {
        f64::from_bits(self.get_u64_be_at(off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut b = MarshalBuf::with_capacity(128);
        b.put_bytes(&[1; 100]);
        let cap_before = b.data.capacity();
        b.clear();
        assert_eq!(b.len(), 0);
        assert!(b.data.capacity() >= cap_before, "reuse keeps allocation");
    }

    #[test]
    fn chunk_roundtrip() {
        let mut b = MarshalBuf::new();
        b.ensure(16);
        {
            let mut c = b.chunk(16);
            c.put_u32_be_at(0, 0xdead_beef);
            c.put_u16_be_at(4, 0x1234);
            c.put_u8_at(6, 0x56);
            c.put_u64_be_at(8, 0x0102_0304_0506_0708);
        }
        let mut r = MsgReader::new(b.as_slice());
        let c = r.chunk(16).unwrap();
        assert_eq!(c.get_u32_be_at(0), 0xdead_beef);
        assert_eq!(c.get_u16_be_at(4), 0x1234);
        assert_eq!(c.get_u8_at(6), 0x56);
        assert_eq!(c.get_u64_be_at(8), 0x0102_0304_0506_0708);
        assert!(r.is_exhausted());
    }

    #[test]
    fn floats_roundtrip() {
        let mut b = MarshalBuf::new();
        let mut c = b.chunk(12);
        c.put_f32_be_at(0, 1.5);
        c.put_f64_be_at(4, -2.25);
        let mut r = MsgReader::new(b.as_slice());
        let c = r.chunk(12).unwrap();
        assert_eq!(c.get_f32_be_at(0), 1.5);
        assert_eq!(c.get_f64_be_at(4), -2.25);
    }

    #[test]
    fn truncated_chunk_errors() {
        let data = [0u8; 3];
        let mut r = MsgReader::new(&data);
        let e = r.chunk(4).unwrap_err();
        assert_eq!(
            e,
            DecodeError::Truncated {
                needed: 4,
                available: 3
            }
        );
    }

    #[test]
    fn align_and_padding() {
        let mut b = MarshalBuf::new();
        b.put_u8(1);
        b.align_to(4);
        assert_eq!(b.len(), 4);
        b.put_u8(2);
        b.put_zeros(3);
        assert_eq!(b.as_slice(), &[1, 0, 0, 0, 2, 0, 0, 0]);

        let mut r = MsgReader::new(b.as_slice());
        r.get_u8().unwrap();
        r.align_to(4).unwrap();
        assert_eq!(r.pos(), 4);
        assert_eq!(r.get_u8().unwrap(), 2);
    }

    #[test]
    fn patch_length_header() {
        let mut b = MarshalBuf::new();
        b.put_u32_be(0); // placeholder
        b.put_bytes(b"payload");
        let len = (b.len() - 4) as u32;
        b.patch_u32_be(0, len);
        let mut r = MsgReader::new(b.as_slice());
        assert_eq!(r.get_u32_be().unwrap(), 7);
    }

    #[test]
    fn endianness_both() {
        let mut b = MarshalBuf::new();
        b.put_u32_be(0x0102_0304);
        b.put_u32_le(0x0102_0304);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 4, 3, 2, 1]);
        let mut r = MsgReader::new(b.as_slice());
        assert_eq!(r.get_u32_be().unwrap(), 0x0102_0304);
        assert_eq!(r.get_u32_le().unwrap(), 0x0102_0304);
    }

    #[test]
    fn zero_copy_bytes_borrow() {
        let data = b"hello world".to_vec();
        let mut r = MsgReader::new(&data);
        let s = r.bytes(5).unwrap();
        assert_eq!(s, b"hello");
        // The borrow points into the original message (in-buffer
        // presentation): same address range.
        assert_eq!(s.as_ptr(), data.as_ptr());
    }

    #[test]
    fn reader_skip_and_remaining() {
        let data = [0u8; 10];
        let mut r = MsgReader::new(&data);
        r.skip(4).unwrap();
        assert_eq!(r.remaining(), 6);
        assert!(r.skip(7).is_err());
        assert_eq!(r.remaining(), 6, "failed skip consumes nothing");
    }
}
