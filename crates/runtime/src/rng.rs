//! A tiny deterministic PRNG shared across the workspace.
//!
//! The workspace is offline and carries no `rand` dependency; the few
//! places that need randomness — fault schedules, fuzz mutation
//! choices, retransmit jitter, reconnect backoff jitter — all want the
//! same property: seeded and replayable, so every test run with the
//! same seed behaves byte-for-byte identically.  SplitMix64 delivers
//! that in a dozen lines.

/// SplitMix64 (Steele et al.): tiny, fast, and plenty random for fault
/// schedules, fuzz mutation choices, and backoff jitter.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for the small `n` here.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
