//! Wire deadline propagation.
//!
//! A client that gives up after [`crate::client::CallOptions::deadline`]
//! gains nothing from a server that keeps decoding, dispatching, and
//! encoding a reply nobody will read.  This module carries the
//! client's remaining time *budget* across the wire next to the trace
//! context — as extra bytes in the same `FLKT` ONC credential blob and
//! GIOP service-context entry (see [`crate::trace`]) — so every hop
//! can refuse already-expired work before doing it.
//!
//! The mechanism is two thread-local registers, mirroring the trace
//! module's ambient-context design so intermediaries (the transcoding
//! bridge) propagate budgets without being changed:
//!
//! * the **outbound stamp** is set by a generated client stub from its
//!   `CallOptions` for the duration of one call ([`stamp_outbound`]
//!   returns a guard);
//! * the **inbound budget** is noted by `oncrpc::accept_call` /
//!   `giop::get_request_header_ref` when a request carries one
//!   ([`note_inbound`]), together with the arrival instant.
//!
//! When a request header is written, [`outbound_budget_ns`] prefers
//! the explicit stamp (a fresh client call) and otherwise falls back
//! to the inbound budget *minus the time spent here so far* — which is
//! exactly the per-hop decrement: a gateway forwarding a request
//! automatically hands its upstream whatever budget is left.
//!
//! Unlike tracing, deadline handling is **not** feature-gated: refusing
//! expired work is a correctness/robustness property, not telemetry.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    /// Explicit budget for the call being encoded, if a client stub
    /// opened a stamp guard.  Nanoseconds.
    static OUTBOUND: Cell<Option<u64>> = const { Cell::new(None) };
    /// Budget carried by the request currently being served on this
    /// thread, with its arrival instant.
    static INBOUND: Cell<Option<(Instant, u64)>> = const { Cell::new(None) };
}

/// Clears the outbound stamp when a client call finishes encoding.
pub struct StampGuard {
    prev: Option<u64>,
}

impl Drop for StampGuard {
    fn drop(&mut self) {
        OUTBOUND.with(|c| c.set(self.prev));
    }
}

/// Declares the time budget for the call about to be encoded on this
/// thread.  Generated client stubs call this with
/// `CallOptions::deadline` just before writing the request header;
/// the header write picks it up via [`outbound_budget_ns`].  Nested
/// stamps restore the outer one on drop.
#[must_use]
pub fn stamp_outbound(budget: Duration) -> StampGuard {
    let ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
    let prev = OUTBOUND.with(|c| c.replace(Some(ns)));
    StampGuard { prev }
}

/// Like [`stamp_outbound`], but never promising more than what remains
/// of the inbound budget: a handler calling downstream under its own
/// `CallOptions` still cannot hand the next hop more time than the
/// request it is serving has left.  Generated client stubs use this
/// form; a fresh top-level client (no inbound budget) stamps its
/// deadline unchanged.
#[must_use]
pub fn stamp_capped(budget: Duration) -> StampGuard {
    let ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
    let eff = match inbound_remaining_ns() {
        Some(left) => ns.min(left),
        None => ns,
    };
    let prev = OUTBOUND.with(|c| c.replace(Some(eff)));
    StampGuard { prev }
}

/// Records the budget carried by an inbound request, anchored at `now`
/// (its arrival/decode instant).  Called by the header readers.
pub fn note_inbound(now: Instant, budget_ns: u64) {
    INBOUND.with(|c| c.set(Some((now, budget_ns))));
}

/// Forgets any inbound budget.  Called by the header readers when a
/// request arrives *without* a budget, so a stale note from a previous
/// request on this thread can never leak into the next one.
pub fn clear_inbound() {
    INBOUND.with(|c| c.set(None));
}

/// The budget to stamp on an outgoing request header, if any: the
/// explicit outbound stamp when a client stub opened one, otherwise
/// what remains of the inbound budget (the per-hop decrement).  A
/// fully spent inbound budget still propagates as `Some(0)` so the
/// next hop refuses the work rather than doing it.
#[must_use]
pub fn outbound_budget_ns() -> Option<u64> {
    if let Some(ns) = OUTBOUND.with(Cell::get) {
        return Some(ns);
    }
    INBOUND.with(Cell::get).map(|(at, ns)| remaining_ns(at, ns))
}

/// Remaining budget of the request being served on this thread, or
/// `None` when it carried no budget.
#[must_use]
pub fn inbound_remaining_ns() -> Option<u64> {
    INBOUND.with(Cell::get).map(|(at, ns)| remaining_ns(at, ns))
}

/// True when the request being served carried a budget that has
/// already run out.
#[must_use]
pub fn inbound_expired() -> bool {
    inbound_remaining_ns() == Some(0)
}

/// What is left of a budget of `budget_ns` anchored at `at`, saturating
/// at zero.
#[must_use]
pub fn remaining_ns(at: Instant, budget_ns: u64) -> u64 {
    let spent = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
    budget_ns.saturating_sub(spent)
}

/// True when a budget of `budget_ns` anchored at `at` has run out.
#[must_use]
pub fn expired(at: Instant, budget_ns: u64) -> bool {
    remaining_ns(at, budget_ns) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_guard_scopes_the_outbound_budget() {
        clear_inbound();
        assert_eq!(outbound_budget_ns(), None);
        {
            let _g = stamp_outbound(Duration::from_secs(1));
            assert_eq!(outbound_budget_ns(), Some(1_000_000_000));
            {
                let _inner = stamp_outbound(Duration::from_millis(5));
                assert_eq!(outbound_budget_ns(), Some(5_000_000));
            }
            // Nested stamp restored the outer one.
            assert_eq!(outbound_budget_ns(), Some(1_000_000_000));
        }
        assert_eq!(outbound_budget_ns(), None);
    }

    #[test]
    fn inbound_budget_decrements_toward_zero() {
        note_inbound(Instant::now(), 60_000_000_000);
        let left = inbound_remaining_ns().unwrap();
        assert!(left > 0 && left <= 60_000_000_000);
        assert!(!inbound_expired());

        // An already-ancient anchor is fully spent.
        note_inbound(Instant::now() - Duration::from_secs(2), 1_000_000);
        assert_eq!(inbound_remaining_ns(), Some(0));
        assert!(inbound_expired());
        clear_inbound();
        assert_eq!(inbound_remaining_ns(), None);
    }

    #[test]
    fn outbound_falls_back_to_inbound_remaining() {
        note_inbound(Instant::now(), 60_000_000_000);
        let forwarded = outbound_budget_ns().unwrap();
        assert!(forwarded > 0 && forwarded <= 60_000_000_000);

        // A spent inbound budget still propagates, as zero.
        note_inbound(Instant::now() - Duration::from_secs(2), 1);
        assert_eq!(outbound_budget_ns(), Some(0));

        // An explicit stamp wins over the fallback.
        let _g = stamp_outbound(Duration::from_millis(250));
        assert_eq!(outbound_budget_ns(), Some(250_000_000));
        clear_inbound();
    }

    #[test]
    fn capped_stamp_cannot_exceed_the_inbound_budget() {
        clear_inbound();
        {
            let _g = stamp_capped(Duration::from_secs(5));
            assert_eq!(outbound_budget_ns(), Some(5_000_000_000));
        }
        note_inbound(Instant::now(), 1_000_000); // 1 ms left upstream
        {
            let _g = stamp_capped(Duration::from_secs(5));
            let stamped = outbound_budget_ns().unwrap();
            assert!(
                stamped <= 1_000_000,
                "stamp {stamped} exceeds the serving budget"
            );
        }
        clear_inbound();
    }

    #[test]
    fn zero_budget_is_born_expired() {
        let now = Instant::now();
        assert!(expired(now, 0));
        note_inbound(now, 0);
        assert!(inbound_expired());
        clear_inbound();
    }
}
