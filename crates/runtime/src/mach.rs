//! Mach 3 typed messages.
//!
//! A Mach message is a fixed header followed by *typed* data items:
//! each item is preceded by a type descriptor word giving the type
//! name, element size in bits, and element count (with a long form for
//! counts that overflow the 12-bit field).  MIG and Flick's Mach 3
//! back end both emit this format; its self-describing nature is what
//! makes MIG stubs cheap for small messages and comparatively slow for
//! large ones (Figure 7).

use crate::buf::{MarshalBuf, MsgReader};
use crate::error::DecodeError;

/// `MACH_MSG_TYPE_*` names for the types Flick emits.
pub mod type_name {
    /// 32-bit integer.
    pub const INTEGER_32: u8 = 2;
    /// 8-bit character.
    pub const CHAR: u8 = 8;
    /// Uninterpreted byte.
    pub const BYTE: u8 = 9;
    /// 64-bit integer.
    pub const INTEGER_64: u8 = 11;
    /// 32-bit real.
    pub const REAL_32: u8 = 25;
    /// 64-bit real.
    pub const REAL_64: u8 = 26;
}

/// Size of the fixed message header in bytes.
pub const HEADER_BYTES: usize = 24;

/// Largest element count expressible in a short-form descriptor.
pub const SHORT_FORM_MAX: u32 = 0x0fff;

/// The fixed Mach message header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachHeader {
    /// Message size in bytes, header included.
    pub size: u32,
    /// Destination port name.
    pub remote_port: u32,
    /// Reply port name.
    pub local_port: u32,
    /// Message id; MIG uses `base_id + procedure index`.
    pub id: i32,
}

impl MachHeader {
    /// Writes the header (native-order words, per Mach convention —
    /// Mach messages never cross byte orders on one host).
    pub fn write(&self, buf: &mut MarshalBuf) {
        // The header carries the full message size, so one hook counts
        // the whole message even though the body is written after.
        crate::metrics::encode_end(crate::metrics::Codec::Mach, u64::from(self.size));
        let mut c = buf.chunk(HEADER_BYTES);
        c.put_u32_le_at(0, 0); // msgh_bits: simple message
        c.put_u32_le_at(4, self.size);
        c.put_u32_le_at(8, self.remote_port);
        c.put_u32_le_at(12, self.local_port);
        c.put_u32_le_at(16, 0); // msgh_kind / reserved
        c.put_u32_le_at(20, self.id as u32);
    }

    /// Reads a header.
    pub fn read(r: &mut MsgReader<'_>) -> Result<Self, DecodeError> {
        let c = r.chunk(HEADER_BYTES)?;
        let h = MachHeader {
            size: c.get_u32_le_at(4),
            remote_port: c.get_u32_le_at(8),
            local_port: c.get_u32_le_at(12),
            id: c.get_u32_le_at(20) as i32,
        };
        crate::metrics::decode_end(crate::metrics::Codec::Mach, u64::from(h.size));
        Ok(h)
    }
}

/// A decoded type descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TypeDesc {
    /// `MACH_MSG_TYPE_*` name.
    pub name: u8,
    /// Element size in bits.
    pub size_bits: u8,
    /// Element count.
    pub number: u32,
}

impl TypeDesc {
    /// Total payload bytes described (count × size, byte-rounded).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        (self.number as usize * self.size_bits as usize).div_ceil(8)
    }
}

/// Writes a type descriptor, choosing short or long form by `number`.
pub fn put_type(buf: &mut MarshalBuf, name: u8, size_bits: u8, number: u32) {
    if number <= SHORT_FORM_MAX {
        // word = name | size << 8 | number << 16 | inline bit (1 << 28)
        let w = u32::from(name) | (u32::from(size_bits) << 8) | (number << 16) | (1 << 28); // msgt_inline
        buf.put_u32_le(w);
    } else {
        // Long form: header word with msgt_longform, then name/size and
        // number words.
        let w = (1 << 28) | (1 << 29); // inline | longform
        buf.put_u32_le(w);
        buf.put_u32_le(u32::from(name) | (u32::from(size_bits) << 16));
        buf.put_u32_le(number);
    }
}

/// Reads a type descriptor (either form).
pub fn get_type(r: &mut MsgReader<'_>) -> Result<TypeDesc, DecodeError> {
    let w = r.get_u32_le()?;
    if w & (1 << 29) != 0 {
        // Long form.
        let ns = r.get_u32_le()?;
        let number = r.get_u32_le()?;
        Ok(TypeDesc {
            name: (ns & 0xff) as u8,
            size_bits: ((ns >> 16) & 0xff) as u8,
            number,
        })
    } else {
        Ok(TypeDesc {
            name: (w & 0xff) as u8,
            size_bits: ((w >> 8) & 0xff) as u8,
            number: (w >> 16) & 0x0fff,
        })
    }
}

/// Writes a typed array of 32-bit integers (descriptor + data).
pub fn put_i32_array(buf: &mut MarshalBuf, data: &[i32]) {
    put_type(buf, type_name::INTEGER_32, 32, data.len() as u32);
    buf.ensure(data.len() * 4);
    for &v in data {
        buf.put_u32_le(v as u32);
    }
}

/// Reads a typed array of 32-bit integers, verifying the descriptor.
pub fn get_i32_array(r: &mut MsgReader<'_>) -> Result<Vec<i32>, DecodeError> {
    let t = get_type(r)?;
    if t.name != type_name::INTEGER_32 || t.size_bits != 32 {
        return Err(DecodeError::BadHeader("expected INTEGER_32 descriptor"));
    }
    let mut out = Vec::with_capacity(t.number as usize);
    for _ in 0..t.number {
        out.push(r.get_u32_le()? as i32);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = MachHeader {
            size: 64,
            remote_port: 5,
            local_port: 9,
            id: 2400,
        };
        let mut b = MarshalBuf::new();
        h.write(&mut b);
        assert_eq!(b.len(), HEADER_BYTES);
        let data = b.into_vec();
        let mut r = MsgReader::new(&data);
        assert_eq!(MachHeader::read(&mut r).unwrap(), h);
    }

    #[test]
    fn short_form_descriptor() {
        let mut b = MarshalBuf::new();
        put_type(&mut b, type_name::INTEGER_32, 32, 16);
        assert_eq!(b.len(), 4, "short form is one word");
        let data = b.into_vec();
        let mut r = MsgReader::new(&data);
        let t = get_type(&mut r).unwrap();
        assert_eq!(
            t,
            TypeDesc {
                name: 2,
                size_bits: 32,
                number: 16
            }
        );
        assert_eq!(t.payload_bytes(), 64);
    }

    #[test]
    fn long_form_descriptor() {
        let mut b = MarshalBuf::new();
        put_type(&mut b, type_name::BYTE, 8, 100_000);
        assert_eq!(b.len(), 12, "long form is three words");
        let data = b.into_vec();
        let mut r = MsgReader::new(&data);
        let t = get_type(&mut r).unwrap();
        assert_eq!(
            t,
            TypeDesc {
                name: 9,
                size_bits: 8,
                number: 100_000
            }
        );
    }

    #[test]
    fn boundary_count_uses_short_form() {
        let mut b = MarshalBuf::new();
        put_type(&mut b, type_name::CHAR, 8, SHORT_FORM_MAX);
        assert_eq!(b.len(), 4);
        let mut b2 = MarshalBuf::new();
        put_type(&mut b2, type_name::CHAR, 8, SHORT_FORM_MAX + 1);
        assert_eq!(b2.len(), 12);
    }

    #[test]
    fn i32_array_roundtrip() {
        let data: Vec<i32> = (-8..8).collect();
        let mut b = MarshalBuf::new();
        put_i32_array(&mut b, &data);
        let bytes = b.into_vec();
        let mut r = MsgReader::new(&bytes);
        assert_eq!(get_i32_array(&mut r).unwrap(), data);
        assert!(r.is_exhausted());
    }

    #[test]
    fn wrong_descriptor_rejected() {
        let mut b = MarshalBuf::new();
        put_type(&mut b, type_name::CHAR, 8, 4);
        b.put_bytes(&[0; 4]);
        let bytes = b.into_vec();
        let mut r = MsgReader::new(&bytes);
        assert!(get_i32_array(&mut r).is_err());
    }
}
