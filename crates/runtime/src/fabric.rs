//! The connection fabric: a multiplexed serving runtime for generated
//! stubs.
//!
//! Flick's generated stubs win on per-call marshal throughput, but a
//! server that drains one connection at a time squanders that speed
//! under concurrent load.  The fabric drives *many* connections per
//! process: an accept loop distributes connections round-robin to
//! thread-per-core workers, and each worker pumps a set of
//! per-connection state machines ([`ConnDriver`]) through
//! read → parse → dispatch → batch → flush rounds.
//!
//! The contract, per connection:
//!
//! * **Pipelining** — up to [`Limits::max_pipeline`] frames may be
//!   outstanding (parsed and dispatched, reply not yet produced) at
//!   once.  Frames carry protocol-level ids (ONC xid, GIOP
//!   request-id), so replies completed out of order by a
//!   [`FrameHandler`] still reach the right requester; the fabric
//!   imposes no head-of-line blocking between requests on one link.
//! * **Batching** — every reply completed in one pump round is framed
//!   into the connection's output buffer and flushed together — one
//!   writev-style write per round, not one per reply
//!   (`fabric.batch.{flush,records}`).
//! * **Backpressure** — a connection whose queued replies exceed
//!   [`Limits::reply_buf_bytes`] is not *read* until the queue drains
//!   (`fabric.backpressure`), and a connection is never read while its
//!   input buffer still holds a complete undispatched frame — so a
//!   flood of tiny frames cannot outrun dispatch and grow the input
//!   buffer.  Combined with the framing caps (enforced on replies as
//!   well as requests), per-connection memory is bounded by
//!   [`Limits::per_conn_buffer_bound`]; a slow reader stalls itself,
//!   never the process.
//! * **Eviction** — a framing violation (oversized frame, bad magic)
//!   closes the connection immediately (`fabric.conn.evicted`).
//!
//! And process-wide, across connections:
//!
//! * **Deadline enforcement** — a request whose propagated time budget
//!   (see [`crate::deadline`]) arrived already spent is answered with
//!   the protocol's cheap failure *before* any argument decode or
//!   handler work — `SYSTEM_ERR` on ONC streams, a `TIMEOUT` system
//!   exception on GIOP — and silently dropped on datagram transports
//!   (`rpc.expired`).
//! * **Load shedding** — once fabric-wide in-flight requests pass
//!   [`Limits::shed_threshold`], new requests are refused with
//!   `PROG_UNAVAIL` / `TRANSIENT` (`fabric.shed.*`); at
//!   [`Limits::max_inflight_total`] workers stop consuming input
//!   entirely.  Overload costs each refused caller one cheap error,
//!   not the whole process its latency.
//! * **Graceful drain** — [`FabricController::shutdown`] stops
//!   accepting, lets in-flight work complete and flush, then closes;
//!   connections still open past the grace period are force-closed
//!   (`fabric.drained`).
//!
//! Buffers come from [`crate::pool`], so a warm fabric serves its
//! steady state without per-call allocation.  The byte-oriented
//! [`Conn`] trait is implemented by `flick-transport` (this crate
//! stays I/O-free); [`service_handler`] adapts the generated
//! `handle_call` / `handle_message` entry points unchanged, and
//! [`BridgeHandler`] folds the transcoding gateway in as just another
//! connection handler.

use crate::bridge::{Bridge, BridgeOutcome};
use crate::buf::{MarshalBuf, MsgReader};
use crate::error::DecodeError;
use crate::limits::Limits;
use crate::oncrpc::{self, RecordScan};
use crate::{giop, metrics, pool};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Result of one non-blocking read on a [`Conn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadStatus {
    /// `n` bytes were appended to the buffer.
    Read(usize),
    /// No bytes available right now; the peer may send more later.
    Empty,
    /// The peer closed its sending side; no more bytes will arrive.
    Closed,
}

/// Result of one non-blocking write on a [`Conn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteStatus {
    /// `n` bytes were accepted (possibly fewer than offered).
    Wrote(usize),
    /// No room right now; retry after the peer drains.
    Full,
    /// The peer is gone; nothing more can be written.
    Closed,
}

/// A byte-oriented, non-blocking connection the fabric can pump.
///
/// Implemented by `flick-transport`'s stream/datagram endpoints; the
/// runtime defines the trait (not the transports) so the dependency
/// arrow keeps pointing transport → runtime.
pub trait Conn: Send {
    /// Appends at most `max` available bytes to `buf`.
    fn read_into(&mut self, buf: &mut MarshalBuf, max: usize) -> ReadStatus;
    /// Writes a prefix of `bytes`, as much as fits right now.
    fn write_some(&mut self, bytes: &[u8]) -> WriteStatus;
    /// Tears the connection down (both directions).
    fn close(&mut self);
    /// True for datagram-backed connections, where an expired request
    /// is dropped silently (the sender's retransmit is the recovery
    /// path) instead of answered with an error it no longer wants.
    fn is_datagram(&self) -> bool {
        false
    }
}

/// Fabric-wide admission state, shared by every [`ConnDriver`] a
/// [`Fabric`] runs: the in-flight gauge the shed threshold compares
/// against, the overload counters, and the drain latch.
#[derive(Debug, Default)]
struct Shared {
    /// Frames dispatched (or being refused) whose completions have not
    /// yet drained, across all connections.
    inflight: AtomicUsize,
    /// Requests refused at admission because the fabric was over its
    /// shed threshold.
    shed: AtomicU64,
    /// Requests refused (or dropped) because their propagated budget
    /// was already spent on arrival.
    expired: AtomicU64,
    /// Set once by [`FabricController::shutdown`]: stop accepting,
    /// finish what is in flight, flush, close.
    draining: AtomicBool,
    /// When draining, the instant after which workers force-close
    /// connections that have not finished on their own.
    force_close_at: Mutex<Option<Instant>>,
}

/// The wire framing spoken on one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Framing {
    /// ONC RPC TCP record marking (fragment headers).
    OncRecord,
    /// GIOP messages (self-delimiting 12-byte header).
    Giop,
}

/// Identifies one frame within its connection: frames are numbered in
/// arrival order, and replies may complete in any order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

/// Where a [`FrameHandler`] deposits completed replies.
///
/// Replies accumulate in one pooled buffer (no per-reply allocation);
/// the driver frames and flushes them as a batch after the handler
/// returns.  A handler may answer a frame immediately in `on_frame`
/// or hold it and answer from a later `poll` — that is what makes the
/// pipelining window real.
#[derive(Debug, Default)]
pub struct ReplySink {
    buf: MarshalBuf,
    /// `(frame, start..end)` spans into `buf`.
    entries: Vec<(FrameId, usize, usize)>,
    /// Frames consumed without a reply (oneway, garbage dropped).
    silent: Vec<FrameId>,
}

impl ReplySink {
    /// Completes `id` with an unframed reply (an ONC reply record or a
    /// complete GIOP message, matching the connection's framing).
    pub fn reply(&mut self, id: FrameId, bytes: &[u8]) {
        let start = self.buf.len();
        self.buf.put_bytes(bytes);
        self.entries.push((id, start, self.buf.len()));
    }

    /// Completes `id` with no reply on the wire.
    pub fn silent(&mut self, id: FrameId) {
        self.silent.push(id);
    }

    fn completed(&self) -> usize {
        self.entries.len() + self.silent.len()
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.entries.clear();
        self.silent.clear();
    }
}

/// Per-connection request processing plugged into a [`ConnDriver`].
pub trait FrameHandler: Send {
    /// Handles one complete inbound frame (an unframed ONC record or a
    /// complete GIOP message).  Every frame must *eventually* be
    /// completed via `sink` — here or from a later [`poll`].
    ///
    /// [`poll`]: FrameHandler::poll
    fn on_frame(&mut self, id: FrameId, frame: &[u8], sink: &mut ReplySink);

    /// Called once per pump round before reading: deliver any replies
    /// that completed asynchronously since the last round.  The
    /// default does nothing (fully synchronous handlers).
    fn poll(&mut self, sink: &mut ReplySink) {
        let _ = sink;
    }
}

/// Adapts a synchronous request→reply function — the shape of the
/// generated `handle_call`/`handle_message` entry points — into a
/// [`FrameHandler`].  The closure writes its reply into the provided
/// buffer and returns whether one should go out.
///
/// ```ignore
/// let h = service_handler(move |frame, reply| {
///     onc_bench::handle_call(frame, PROG, VERS, reply, &mut srv)
/// });
/// ```
pub fn service_handler<F>(f: F) -> impl FrameHandler
where
    F: FnMut(&[u8], &mut MarshalBuf) -> bool + Send,
{
    struct Sync<F> {
        f: F,
        scratch: MarshalBuf,
    }
    impl<F> FrameHandler for Sync<F>
    where
        F: FnMut(&[u8], &mut MarshalBuf) -> bool + Send,
    {
        fn on_frame(&mut self, id: FrameId, frame: &[u8], sink: &mut ReplySink) {
            self.scratch.clear();
            if (self.f)(frame, &mut self.scratch) {
                sink.reply(id, self.scratch.as_slice());
            } else {
                sink.silent(id);
            }
        }
    }
    Sync {
        f,
        scratch: MarshalBuf::new(),
    }
}

/// The transcoding gateway as a fabric handler: each inbound ONC
/// record is rewritten and forwarded upstream by the wrapped
/// [`Bridge`], and the rewritten reply completes the frame.  One
/// fabric process can host many of these, proxying many ONC→GIOP
/// links alongside ordinary served connections.
pub struct BridgeHandler<F> {
    bridge: Bridge,
    forward: F,
    scratch: MarshalBuf,
}

impl<F> BridgeHandler<F>
where
    F: crate::bridge::UpstreamLink + Send,
{
    /// Wraps `bridge`, forwarding upstream via `forward` — any
    /// [`crate::bridge::UpstreamLink`]: a plain closure (a complete
    /// GIOP request in, the complete GIOP reply out, `None` on a dead
    /// upstream) or a [`crate::bridge::Supervisor`] for a self-healing
    /// link.
    pub fn new(bridge: Bridge, forward: F) -> Self {
        BridgeHandler {
            bridge,
            forward,
            scratch: MarshalBuf::new(),
        }
    }

    /// The wrapped bridge's counters so far.
    #[must_use]
    pub fn counters(&self) -> crate::bridge::BridgeCounters {
        self.bridge.counters()
    }

    /// The wrapped upstream link — e.g. a [`crate::bridge::Supervisor`]
    /// whose breaker stats a harness wants to read out when the
    /// connection settles.
    #[must_use]
    pub fn upstream(&self) -> &F {
        &self.forward
    }
}

impl<F> FrameHandler for BridgeHandler<F>
where
    F: crate::bridge::UpstreamLink + Send,
{
    fn on_frame(&mut self, id: FrameId, frame: &[u8], sink: &mut ReplySink) {
        self.scratch.clear();
        match self
            .bridge
            .handle_record(frame, &mut self.scratch, &mut self.forward)
        {
            BridgeOutcome::Replied => sink.reply(id, self.scratch.as_slice()),
            BridgeOutcome::Silent => sink.silent(id),
        }
    }
}

/// What one [`ConnDriver::pump`] round accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pump {
    /// Bytes moved or frames completed; pump again soon.
    Progress,
    /// Nothing to do right now; the connection is waiting on its peer.
    Idle,
    /// The connection is finished (drained and closed, or evicted).
    Done,
}

/// How a finished connection ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ending {
    Closed,
    Evicted,
}

/// Outcome of one [`ConnDriver::dispatch_frames`] pass.
#[derive(Clone, Copy, Debug)]
struct Dispatched {
    /// Frames parsed and handed to the handler.
    frames: usize,
    /// The pass stopped because `inbuf` holds no complete frame — as
    /// opposed to stopping at the pipelining-window or reply-queue
    /// gate — so reading more bytes is the only way to make progress.
    starved: bool,
}

/// The per-connection state machine: owns the connection, its framing,
/// its handler, and two pooled buffers (inbound bytes, outbound
/// framed replies).
pub struct ConnDriver {
    conn: Box<dyn Conn>,
    framing: Framing,
    handler: Box<dyn FrameHandler>,
    limits: Limits,
    shared: Arc<Shared>,
    datagram: bool,
    inbuf: pool::PooledBuf,
    outbuf: pool::PooledBuf,
    sink: ReplySink,
    /// Scratch for synthesized admission refusals.
    refusal: MarshalBuf,
    next_id: u64,
    /// Frames dispatched whose replies have not yet been completed.
    outstanding: usize,
    read_closed: bool,
    ending: Option<Ending>,
}

impl ConnDriver {
    /// A driver over `conn`, speaking `framing`, dispatching to
    /// `handler`, bounded by `limits`.  A standalone driver gets its
    /// own private admission state; drivers run by a [`Fabric`] share
    /// the fabric's.
    #[must_use]
    pub fn new(
        conn: Box<dyn Conn>,
        framing: Framing,
        handler: Box<dyn FrameHandler>,
        limits: Limits,
    ) -> Self {
        Self::with_shared(conn, framing, handler, limits, Arc::default())
    }

    fn with_shared(
        conn: Box<dyn Conn>,
        framing: Framing,
        handler: Box<dyn FrameHandler>,
        limits: Limits,
        shared: Arc<Shared>,
    ) -> Self {
        metrics::fabric_conn_open();
        let datagram = conn.is_datagram();
        ConnDriver {
            conn,
            framing,
            handler,
            limits,
            shared,
            datagram,
            inbuf: pool::checkout(),
            outbuf: pool::checkout(),
            sink: ReplySink::default(),
            refusal: MarshalBuf::new(),
            next_id: 0,
            outstanding: 0,
            read_closed: false,
            ending: None,
        }
    }

    /// Replies queued but not yet accepted by the connection.
    #[must_use]
    pub fn queued_reply_bytes(&self) -> usize {
        self.outbuf.len()
    }

    /// Inbound bytes buffered but not yet dispatched.  Bounded by one
    /// partial frame plus one read chunk: the driver only reads when
    /// the parser has no complete frame left to dispatch.
    #[must_use]
    pub fn buffered_input_bytes(&self) -> usize {
        self.inbuf.len()
    }

    /// Frames dispatched whose replies are still pending.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn finish(&mut self, ending: Ending) -> Pump {
        if self.ending.is_none() {
            self.ending = Some(ending);
            self.conn.close();
            // Whatever was still outstanding will never complete now;
            // release it from the fabric-wide gauge so dead work
            // cannot pin the shed threshold.
            if self.outstanding > 0 {
                self.shared
                    .inflight
                    .fetch_sub(self.outstanding, Ordering::Relaxed);
                self.outstanding = 0;
            }
            match ending {
                Ending::Closed => metrics::fabric_conn_closed(),
                Ending::Evicted => metrics::fabric_conn_evicted(),
            }
        }
        Pump::Done
    }

    /// Stops reading new requests: the driver finishes once in-flight
    /// work completes and queued replies flush, exactly as if the peer
    /// had half-closed.
    fn begin_drain(&mut self) {
        self.read_closed = true;
    }

    /// Drain grace expired: one last flush attempt, then close.
    fn force_close(&mut self) {
        if self.ending.is_none() {
            let _ = self.flush();
            self.finish(Ending::Closed);
        }
    }

    /// Frames one completed reply into `outbuf` according to the
    /// connection's framing.
    fn frame_reply(&mut self, start: usize, end: usize) {
        // Split-borrow: the span lives in `sink.buf`, the frame goes
        // into `outbuf`.
        let bytes = &self.sink.buf.as_slice()[start..end];
        match self.framing {
            Framing::OncRecord => oncrpc::frame_record_into(bytes, &mut self.outbuf),
            // GIOP messages are self-delimiting; append as-is.
            Framing::Giop => self.outbuf.put_bytes(bytes),
        }
    }

    /// The largest reply the connection's framing can carry: the same
    /// cap enforced on inbound frames, so `per_conn_buffer_bound`'s
    /// "+ one maximal reply" term holds on the outbound side too
    /// (and, for ONC, the record mark's 31-bit length stays valid).
    fn reply_cap(&self) -> usize {
        let cap = match self.framing {
            Framing::OncRecord => self.limits.max_record_bytes,
            Framing::Giop => giop::HEADER_BYTES + self.limits.max_message_bytes,
        };
        cap.min(0x7fff_ffff)
    }

    /// Drains the sink: frames every completed reply into `outbuf` as
    /// one batch and settles the outstanding accounting.  `Err` means
    /// a handler produced a reply the framing cannot carry; the
    /// connection must be evicted rather than put corrupt or
    /// unbounded bytes on the wire.
    fn drain_sink(&mut self) -> Result<usize, ()> {
        let completed = self.sink.completed();
        if completed == 0 {
            return Ok(0);
        }
        debug_assert!(
            completed <= self.outstanding,
            "handler completed frames it was never given"
        );
        self.outstanding = self.outstanding.saturating_sub(completed);
        self.shared.inflight.fetch_sub(completed, Ordering::Relaxed);
        let cap = self.reply_cap();
        if self.sink.entries.iter().any(|&(_, s, e)| e - s > cap) {
            return Err(());
        }
        let records = self.sink.entries.len();
        for i in 0..records {
            let (_, start, end) = self.sink.entries[i];
            self.frame_reply(start, end);
        }
        if records > 0 {
            metrics::fabric_batch_flush(records as u64);
        }
        self.sink.clear();
        Ok(completed)
    }

    /// Reply bytes committed but not yet on the wire: queued framed
    /// output plus replies still sitting in the sink.  This is the
    /// quantity the backpressure threshold compares against.
    fn pending_reply_bytes(&self) -> usize {
        self.outbuf.len() + self.sink.buf.len()
    }

    /// Writes as much queued output as the connection will take.
    /// Returns bytes written, or `None` if the peer is gone.
    fn flush(&mut self) -> Option<usize> {
        let mut written = 0;
        while !self.outbuf.is_empty() {
            match self.conn.write_some(self.outbuf.as_slice()) {
                WriteStatus::Wrote(n) => {
                    self.outbuf.drain_front(n);
                    written += n;
                }
                WriteStatus::Full => break,
                WriteStatus::Closed => return None,
            }
        }
        Some(written)
    }

    /// Parses frames off the front of `inbuf` and dispatches them,
    /// respecting the pipelining window.  Returns what happened, or
    /// `Err` on a framing violation (the connection must be evicted).
    fn dispatch_frames(&mut self) -> Result<Dispatched, DecodeError> {
        let mut consumed = 0;
        let mut frames = 0;
        let mut starved = false;
        loop {
            // The pipelining window, the reply queue, and the
            // fabric-wide hard cap all gate dispatch: consuming a
            // frame commits us to buffering its reply (and, past the
            // hard cap, to work the whole process can no longer
            // afford), so any of them stops consumption.
            if self.outstanding >= self.limits.max_pipeline
                || self.pending_reply_bytes() >= self.limits.reply_buf_bytes
                || self.shared.inflight.load(Ordering::Relaxed) >= self.limits.max_inflight_total
            {
                break;
            }
            let stream = &self.inbuf.as_slice()[consumed..];
            if stream.is_empty() {
                starved = true;
                break;
            }
            let frame_len = match self.framing {
                Framing::OncRecord => {
                    match oncrpc::scan_record_limited(stream, self.limits.max_record_bytes)? {
                        RecordScan::Complete(payload, used) => {
                            let id = FrameId(self.next_id);
                            self.next_id += 1;
                            self.outstanding += 1;
                            self.shared.inflight.fetch_add(1, Ordering::Relaxed);
                            deliver_frame(
                                self.framing,
                                self.datagram,
                                &self.limits,
                                &self.shared,
                                self.handler.as_mut(),
                                &mut self.sink,
                                &mut self.refusal,
                                id,
                                payload,
                            );
                            frames += 1;
                            used
                        }
                        RecordScan::Partial => {
                            starved = true;
                            break;
                        }
                        RecordScan::Fragmented => {
                            // Multi-fragment record: assemble (bounded).
                            match oncrpc::deframe_record_limited(
                                stream,
                                self.limits.max_record_bytes,
                            ) {
                                Ok((record, used)) => {
                                    let id = FrameId(self.next_id);
                                    self.next_id += 1;
                                    self.outstanding += 1;
                                    self.shared.inflight.fetch_add(1, Ordering::Relaxed);
                                    deliver_frame(
                                        self.framing,
                                        self.datagram,
                                        &self.limits,
                                        &self.shared,
                                        self.handler.as_mut(),
                                        &mut self.sink,
                                        &mut self.refusal,
                                        id,
                                        &record,
                                    );
                                    frames += 1;
                                    used
                                }
                                Err(e) if matches!(e.root(), DecodeError::Truncated { .. }) => {
                                    starved = true;
                                    break;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                Framing::Giop => match scan_giop(stream, self.limits.max_message_bytes) {
                    Ok(Some(total)) => {
                        let id = FrameId(self.next_id);
                        self.next_id += 1;
                        self.outstanding += 1;
                        self.shared.inflight.fetch_add(1, Ordering::Relaxed);
                        deliver_frame(
                            self.framing,
                            self.datagram,
                            &self.limits,
                            &self.shared,
                            self.handler.as_mut(),
                            &mut self.sink,
                            &mut self.refusal,
                            id,
                            &stream[..total],
                        );
                        frames += 1;
                        total
                    }
                    Ok(None) => {
                        starved = true;
                        break;
                    }
                    Err(e) => return Err(e),
                },
            };
            consumed += frame_len;
        }
        if consumed > 0 {
            self.inbuf.drain_front(consumed);
        }
        Ok(Dispatched { frames, starved })
    }

    /// Parses and dispatches the whole buffered backlog: alternates
    /// dispatch passes with sink drains, so completions from a
    /// synchronous handler reopen the pipelining window within the
    /// round and buffered frames never pile up behind a stale gate.
    /// Returns `(progress, starved)` — `starved` meaning `inbuf` holds
    /// no complete frame and only reading can make further progress —
    /// or `Err` when the connection must be evicted.
    fn dispatch_backlog(&mut self) -> Result<(usize, bool), ()> {
        let mut progress = 0;
        loop {
            let d = self.dispatch_frames().map_err(|_| ())?;
            progress += d.frames + self.drain_sink()?;
            if d.frames == 0 || d.starved {
                return Ok((progress, d.starved));
            }
        }
    }

    /// One pump round: flush queued replies, poll the handler for
    /// deferred completions, dispatch the buffered backlog, read only
    /// if the parser is starved for bytes (and not backpressured),
    /// then flush the round's batch.
    pub fn pump(&mut self) -> Pump {
        if self.ending.is_some() {
            return Pump::Done;
        }
        let mut progress = 0usize;

        // 1. Move queued output first: draining the reply queue is
        //    what lifts backpressure.
        match self.flush() {
            Some(n) => progress += n,
            None => return self.finish(Ending::Closed),
        }

        // 2. Deferred completions from a pipelining handler.
        self.handler.poll(&mut self.sink);
        match self.drain_sink() {
            Ok(n) => progress += n,
            Err(()) => return self.finish(Ending::Evicted),
        }

        // 3. Dispatch whatever is already buffered; a framing
        //    violation (or an uncarriable reply) evicts.
        let starved = match self.dispatch_backlog() {
            Ok((n, starved)) => {
                progress += n;
                starved
            }
            Err(()) => return self.finish(Ending::Evicted),
        };

        // 4. Read only when dispatch is starved for bytes.  Skipping
        //    the read while `inbuf` still holds a complete frame (the
        //    window or the reply queue gated dispatch) is what bounds
        //    `inbuf` to one partial frame plus one read chunk — a
        //    flood of tiny frames cannot outrun dispatch.
        let backpressured = self.pending_reply_bytes() >= self.limits.reply_buf_bytes;
        if backpressured {
            metrics::fabric_backpressure();
        } else if starved && !self.read_closed {
            match self
                .conn
                .read_into(&mut self.inbuf, self.limits.read_chunk_bytes)
            {
                ReadStatus::Read(n) => {
                    progress += n;
                    match self.dispatch_backlog() {
                        Ok((m, _)) => progress += m,
                        Err(()) => return self.finish(Ending::Evicted),
                    }
                }
                ReadStatus::Empty => {}
                ReadStatus::Closed => self.read_closed = true,
            }
        }

        // 5. Batch-flush everything completed this round.
        match self.flush() {
            Some(n) => progress += n,
            None => return self.finish(Ending::Closed),
        }

        // A closed, drained, settled connection is finished.  Bytes
        // left in `inbuf` after close are a truncated frame: dropped,
        // as a real socket would.
        if self.read_closed && self.outstanding == 0 && self.outbuf.is_empty() {
            return self.finish(Ending::Closed);
        }
        if progress > 0 {
            Pump::Progress
        } else {
            Pump::Idle
        }
    }
}

/// Admission control, then dispatch: every consumed frame lands here,
/// already counted in the local window and the fabric-wide gauge, and
/// is either refused cheaply — before any argument decode or handler
/// work — or handed to the handler.
///
/// Two refusal classes, in priority order:
///
/// * **Expired** — the frame's propagated budget arrived already
///   spent.  Answering with real work would burn server time on a
///   reply the caller has stopped waiting for; instead a stream peer
///   gets the protocol's cheap failure (`SYSTEM_ERR` / `TIMEOUT`
///   system exception) and a datagram peer gets silence.
/// * **Shed** — the fabric-wide in-flight count (excluding this
///   frame) is at or past [`Limits::shed_threshold`].  The refusal is
///   the protocol's "try elsewhere / later" signal: `PROG_UNAVAIL`
///   for ONC, a `TRANSIENT` system exception for GIOP.
///
/// Refusals are synthesized with *no* trace context (the thread's
/// ambient trace register belongs to whatever frame a handler last
/// decoded, not this one) and complete through the ordinary sink path
/// so batching, flushing, and accounting treat them like any reply.
#[allow(clippy::too_many_arguments)]
fn deliver_frame(
    framing: Framing,
    datagram: bool,
    limits: &Limits,
    shared: &Shared,
    handler: &mut dyn FrameHandler,
    sink: &mut ReplySink,
    refusal: &mut MarshalBuf,
    id: FrameId,
    frame: &[u8],
) {
    // `inflight` includes this frame (counted by the caller), so
    // "existing work >= threshold" is a strict comparison.
    let overloaded = shared.inflight.load(Ordering::Relaxed) > limits.shed_threshold;
    match framing {
        Framing::OncRecord => {
            if let Some(p) = oncrpc::peek_call(frame) {
                if p.budget_ns == Some(0) {
                    metrics::rpc_expired();
                    shared.expired.fetch_add(1, Ordering::Relaxed);
                    if datagram {
                        sink.silent(id);
                    } else {
                        refusal.clear();
                        oncrpc::write_reply_plain(refusal, p.xid, oncrpc::ReplyOutcome::SystemErr);
                        sink.reply(id, refusal.as_slice());
                    }
                    return;
                }
                if overloaded {
                    metrics::fabric_shed(false);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    refusal.clear();
                    oncrpc::write_reply_plain(refusal, p.xid, oncrpc::ReplyOutcome::ProgUnavail);
                    sink.reply(id, refusal.as_slice());
                    return;
                }
            }
        }
        Framing::Giop => {
            if let Some(p) = giop::peek_request(frame) {
                if p.budget_ns == Some(0) {
                    metrics::rpc_expired();
                    shared.expired.fetch_add(1, Ordering::Relaxed);
                    if p.response_expected {
                        refusal.clear();
                        giop::write_system_exception_reply(
                            refusal,
                            p.order,
                            p.request_id,
                            "IDL:omg.org/CORBA/TIMEOUT:1.0",
                            0,
                        );
                        sink.reply(id, refusal.as_slice());
                    } else {
                        sink.silent(id);
                    }
                    return;
                }
                if overloaded {
                    metrics::fabric_shed(true);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    if p.response_expected {
                        refusal.clear();
                        giop::write_system_exception_reply(
                            refusal,
                            p.order,
                            p.request_id,
                            "IDL:omg.org/CORBA/TRANSIENT:1.0",
                            1,
                        );
                        sink.reply(id, refusal.as_slice());
                    } else {
                        sink.silent(id);
                    }
                    return;
                }
            }
        }
    }
    handler.on_frame(id, frame, sink);
}

/// Scans for one complete GIOP message at the front of `stream`:
/// `Ok(Some(total_len))` when complete, `Ok(None)` when more bytes are
/// needed, `Err` on a framing violation.
fn scan_giop(stream: &[u8], max_bytes: usize) -> Result<Option<usize>, DecodeError> {
    if stream.len() < giop::HEADER_BYTES {
        return Ok(None);
    }
    let mut r = MsgReader::new(stream);
    let h = match giop::read_header_limited(&mut r, max_bytes) {
        Ok(h) => h,
        Err(e) if matches!(e.root(), DecodeError::Truncated { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    let total = giop::HEADER_BYTES + h.size as usize;
    if stream.len() < total {
        return Ok(None);
    }
    Ok(Some(total))
}

/// One accepted connection, ready for a driver.
pub struct Accepted {
    /// The connection itself.
    pub conn: Box<dyn Conn>,
    /// The framing it speaks.
    pub framing: Framing,
    /// The handler serving it.
    pub handler: Box<dyn FrameHandler>,
}

/// Produces connections for [`Fabric::serve`].  `accept` blocks until
/// the next connection; `None` shuts the fabric down once existing
/// connections drain.
pub trait Acceptor: Send {
    /// The next connection, or `None` at shutdown.
    fn accept(&mut self) -> Option<Accepted>;
}

/// Aggregate counters from one [`Fabric::serve`] run.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    accepted: Arc<AtomicU64>,
    closed: Arc<AtomicU64>,
    evicted: Arc<AtomicU64>,
    shared: Arc<Shared>,
}

impl FabricStats {
    /// Connections accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections that ran to a clean close.
    #[must_use]
    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// Connections evicted for framing violations.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Requests refused at admission because the fabric was over its
    /// shed threshold.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Requests refused or dropped because their propagated budget was
    /// already spent on arrival.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.shared.expired.load(Ordering::Relaxed)
    }

    /// Current fabric-wide in-flight request count.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }
}

/// A handle for shutting a running [`Fabric::serve`] down from another
/// thread.  Cloneable and cheap; obtained from [`Fabric::controller`]
/// before calling `serve`.
#[derive(Clone)]
pub struct FabricController {
    shared: Arc<Shared>,
}

impl FabricController {
    /// Initiates a graceful drain: the fabric stops accepting new
    /// connections, existing connections stop *reading* (as if the
    /// peer half-closed), in-flight requests run to completion, their
    /// replies flush, and each connection closes as it settles.
    /// Connections still open after `grace` are force-closed.
    ///
    /// The accept loop learns about the drain the next time its
    /// [`Acceptor`] yields (or returns `None`); a transport whose
    /// accept blocks indefinitely should close its listener as part
    /// of shutdown so the loop can exit promptly.
    pub fn shutdown(&self, grace: Duration) {
        // Deadline first: a worker that observes the flag must find
        // the deadline already published.
        *self
            .shared
            .force_close_at
            .lock()
            .expect("fabric drain lock poisoned") = Some(Instant::now() + grace);
        self.shared.draining.store(true, Ordering::Release);
    }

    /// True once [`shutdown`](Self::shutdown) has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }
}

/// The multiplexed serving runtime: accept loop + thread-per-core
/// workers, each pumping its share of [`ConnDriver`]s.
pub struct Fabric {
    limits: Limits,
    workers: usize,
    shared: Arc<Shared>,
}

impl Fabric {
    /// A fabric with `limits` and one worker per available core.
    ///
    /// # Panics
    /// When `limits` fails [`Limits::validated`] — an incoherent
    /// configuration (a zero cap, a reply queue smaller than one
    /// frame, a shed threshold above the hard stop) would surface as
    /// mysterious evictions or total refusal at runtime, so it is
    /// refused at construction instead.
    #[must_use]
    pub fn new(limits: Limits) -> Self {
        let limits = match limits.validated() {
            Ok(l) => l,
            Err(why) => panic!("incoherent fabric limits: {why}"),
        };
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Fabric {
            limits,
            workers,
            shared: Arc::default(),
        }
    }

    /// Overrides the worker count (tests and benches pin this).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// A shutdown handle for this fabric, usable from any thread while
    /// [`serve`](Self::serve) runs.  A fabric that has been drained
    /// stays drained; build a new one to serve again.
    #[must_use]
    pub fn controller(&self) -> FabricController {
        FabricController {
            shared: self.shared.clone(),
        }
    }

    /// Serves connections from `acceptor` until it returns `None` (or
    /// a [`FabricController::shutdown`] drain completes) and every
    /// accepted connection finishes.  The accept loop runs on the
    /// calling thread; connections are distributed round-robin to the
    /// workers.
    pub fn serve<A: Acceptor>(&self, mut acceptor: A) -> FabricStats {
        let stats = FabricStats {
            shared: self.shared.clone(),
            ..FabricStats::default()
        };
        std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(self.workers);
            for _ in 0..self.workers {
                let (tx, rx) = mpsc::channel::<Accepted>();
                senders.push(tx);
                let limits = self.limits;
                let stats = stats.clone();
                scope.spawn(move || worker_loop(&rx, limits, &stats));
            }
            let mut next = 0usize;
            while let Some(mut accepted) = acceptor.accept() {
                if self.shared.draining.load(Ordering::Acquire) {
                    // Draining: refuse the connection and stop
                    // accepting altogether.
                    accepted.conn.close();
                    break;
                }
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                // A worker never exits while its sender lives, so the
                // only send failure is a panicked worker — propagate.
                senders[next % senders.len()]
                    .send(accepted)
                    .expect("fabric worker died");
                next += 1;
            }
            drop(senders); // workers drain and exit
        });
        if self.shared.draining.load(Ordering::Acquire) {
            metrics::fabric_drained();
        }
        stats
    }
}

fn worker_loop(rx: &mpsc::Receiver<Accepted>, limits: Limits, stats: &FabricStats) {
    let shared = &stats.shared;
    let mut drivers: Vec<ConnDriver> = Vec::new();
    let mut accepting = true;
    let mut draining = false;
    let mut idle_rounds: u32 = 0;
    loop {
        if !draining && shared.draining.load(Ordering::Acquire) {
            draining = true;
            // Connections queued but never started get closed, not
            // served; live ones stop reading and run down.
            while let Ok(mut a) = rx.try_recv() {
                a.conn.close();
            }
            accepting = false;
            for d in &mut drivers {
                d.begin_drain();
            }
        }
        // Take on every connection queued for this worker.
        while accepting {
            match rx.try_recv() {
                Ok(a) => drivers.push(ConnDriver::with_shared(
                    a.conn,
                    a.framing,
                    a.handler,
                    limits,
                    shared.clone(),
                )),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => accepting = false,
            }
        }
        if drivers.is_empty() {
            if !accepting {
                return;
            }
            // Idle worker: park until the next connection arrives (or
            // shutdown).  The wait is bounded so a drain initiated
            // while the accept loop is still blocked in its acceptor
            // is noticed promptly.
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(a) => drivers.push(ConnDriver::with_shared(
                    a.conn,
                    a.framing,
                    a.handler,
                    limits,
                    shared.clone(),
                )),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => accepting = false,
            }
            continue;
        }

        if draining {
            let due = shared
                .force_close_at
                .lock()
                .expect("fabric drain lock poisoned")
                .is_some_and(|at| Instant::now() >= at);
            if due {
                for d in &mut drivers {
                    d.force_close();
                }
            }
        }

        let mut any_progress = false;
        drivers.retain_mut(|d| match d.pump() {
            Pump::Progress => {
                any_progress = true;
                true
            }
            Pump::Idle => true,
            Pump::Done => {
                match d.ending {
                    Some(Ending::Evicted) => stats.evicted.fetch_add(1, Ordering::Relaxed),
                    _ => stats.closed.fetch_add(1, Ordering::Relaxed),
                };
                any_progress = true;
                false
            }
        });
        if any_progress {
            idle_rounds = 0;
        } else {
            // Every connection is waiting on its peer.  Yield while
            // the lull is short — under load, peers refill within a
            // few scheduler passes, and a sleep here costs real
            // throughput — then back off exponentially to ~1 ms
            // sleeps so an open-but-quiet connection does not peg a
            // core.  A genuinely idle worker burns through the yield
            // budget in well under a millisecond (nothing else is
            // runnable, so each round is microseconds) and parks.
            idle_rounds += 1;
            if idle_rounds <= 256 {
                std::thread::yield_now();
            } else {
                let exp = (idle_rounds - 256).min(10);
                std::thread::sleep(std::time::Duration::from_micros(1 << exp));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oncrpc::CallHeader;
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An in-memory scripted connection: the test queues inbound
    /// bytes and inspects what the driver wrote.
    #[derive(Default)]
    struct ScriptConn {
        inbound: VecDeque<Vec<u8>>,
        written: Arc<Mutex<Vec<u8>>>,
        /// Bytes the "peer" will accept per write; `usize::MAX` = all.
        accept_per_write: usize,
        closed_after_input: bool,
    }

    impl ScriptConn {
        fn new(chunks: Vec<Vec<u8>>) -> (Self, Arc<Mutex<Vec<u8>>>) {
            let written = Arc::new(Mutex::new(Vec::new()));
            (
                ScriptConn {
                    inbound: chunks.into(),
                    written: written.clone(),
                    accept_per_write: usize::MAX,
                    closed_after_input: true,
                },
                written,
            )
        }
    }

    impl Conn for ScriptConn {
        fn read_into(&mut self, buf: &mut MarshalBuf, max: usize) -> ReadStatus {
            match self.inbound.front_mut() {
                Some(chunk) => {
                    let n = chunk.len().min(max);
                    buf.put_bytes(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.inbound.pop_front();
                    }
                    ReadStatus::Read(n)
                }
                None if self.closed_after_input => ReadStatus::Closed,
                None => ReadStatus::Empty,
            }
        }

        fn write_some(&mut self, bytes: &[u8]) -> WriteStatus {
            if self.accept_per_write == 0 {
                return WriteStatus::Full;
            }
            let n = bytes.len().min(self.accept_per_write);
            self.written.lock().unwrap().extend_from_slice(&bytes[..n]);
            WriteStatus::Wrote(n)
        }

        fn close(&mut self) {}
    }

    /// Echoes each ONC record's payload back as the "reply record".
    fn echo_handler() -> impl FrameHandler {
        service_handler(|frame: &[u8], reply: &mut MarshalBuf| {
            reply.put_bytes(frame);
            true
        })
    }

    fn onc_record(payload: &[u8]) -> Vec<u8> {
        oncrpc::frame_record(payload)
    }

    fn run_to_done(d: &mut ConnDriver) {
        for _ in 0..10_000 {
            if d.pump() == Pump::Done {
                return;
            }
        }
        panic!("driver never finished");
    }

    #[test]
    fn echoes_records_and_batches_replies() {
        let (conn, written) = ScriptConn::new(vec![[
            onc_record(b"alpha"),
            onc_record(b"beta!"),
            onc_record(b"gamma"),
        ]
        .concat()]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(echo_handler()),
            Limits::default(),
        );
        run_to_done(&mut d);
        let out = written.lock().unwrap().clone();
        // Three framed reply records, coalesced into the output.
        let (r1, used1) = oncrpc::deframe_record(&out).unwrap();
        let (r2, used2) = oncrpc::deframe_record(&out[used1..]).unwrap();
        let (r3, used3) = oncrpc::deframe_record(&out[used1 + used2..]).unwrap();
        assert_eq!(
            (&r1[..], &r2[..], &r3[..]),
            (&b"alpha"[..], &b"beta!"[..], &b"gamma"[..])
        );
        assert_eq!(used1 + used2 + used3, out.len());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let rec = onc_record(b"split-me-up");
        let (a, b) = rec.split_at(6);
        let (conn, written) = ScriptConn::new(vec![a.to_vec(), b.to_vec()]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(echo_handler()),
            Limits::default(),
        );
        run_to_done(&mut d);
        let out = written.lock().unwrap().clone();
        let (r, _) = oncrpc::deframe_record(&out).unwrap();
        assert_eq!(&r[..], b"split-me-up");
    }

    /// A handler that holds every frame and answers them all, in
    /// reverse arrival order, only when polled after the last one —
    /// an out-of-order pipelining server.
    struct DeferredReverse {
        pending: Vec<(FrameId, Vec<u8>)>,
        expect: usize,
    }

    impl FrameHandler for DeferredReverse {
        fn on_frame(&mut self, id: FrameId, frame: &[u8], _sink: &mut ReplySink) {
            self.pending.push((id, frame.to_vec()));
        }
        fn poll(&mut self, sink: &mut ReplySink) {
            if self.pending.len() >= self.expect {
                for (id, frame) in self.pending.drain(..).rev() {
                    sink.reply(id, &frame);
                }
            }
        }
    }

    #[test]
    fn pipelined_frames_complete_out_of_order() {
        // Three xid-tagged call records arrive back to back; the
        // handler answers them newest-first.  The wire carries the
        // replies in completion order and the xids keep them
        // attributable — exactly the GIOP/ONC pipelining contract.
        let recs: Vec<Vec<u8>> = (0..3u32)
            .map(|i| {
                let mut b = MarshalBuf::new();
                b.put_u32_be(0xA000 + i); // stand-in xid
                b.put_bytes(&[i as u8; 8]);
                onc_record(b.as_slice())
            })
            .collect();
        let (conn, written) = ScriptConn::new(vec![recs.concat()]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(DeferredReverse {
                pending: Vec::new(),
                expect: 3,
            }),
            Limits::default(),
        );
        // All three dispatch before any reply exists: that is the
        // pipelining window in action.
        while d.outstanding() < 3 {
            assert_ne!(d.pump(), Pump::Done, "finished before pipeline filled");
        }
        assert_eq!(d.outstanding(), 3);
        run_to_done(&mut d);

        let out = written.lock().unwrap().clone();
        let mut xids = Vec::new();
        let mut at = 0;
        while at < out.len() {
            let (r, used) = oncrpc::deframe_record(&out[at..]).unwrap();
            xids.push(u32::from_be_bytes(r[..4].try_into().unwrap()));
            at += used;
        }
        assert_eq!(xids, vec![0xA002, 0xA001, 0xA000], "completion order");
    }

    #[test]
    fn pipeline_window_caps_outstanding_frames() {
        let limits = Limits {
            max_pipeline: 2,
            ..Limits::default()
        };
        let recs: Vec<u8> = (0..6u8).flat_map(|i| onc_record(&[i; 4])).collect();
        let (conn, _written) = ScriptConn::new(vec![recs]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            // Never replies: the window must clamp dispatch.
            Box::new(DeferredReverse {
                pending: Vec::new(),
                expect: usize::MAX,
            }),
            limits,
        );
        for _ in 0..50 {
            d.pump();
            assert!(d.outstanding() <= 2, "window exceeded: {}", d.outstanding());
        }
        assert_eq!(d.outstanding(), 2);
    }

    #[test]
    fn backpressure_stops_reading_a_slow_consumer() {
        let limits = Limits {
            reply_buf_bytes: 512,
            ..Limits::default()
        };
        // Plenty of requests, a peer that accepts nothing back.
        let big: Vec<u8> = (0..100u8).flat_map(|i| onc_record(&[i; 64])).collect();
        let (mut conn, _written) = ScriptConn::new(vec![big]);
        conn.accept_per_write = 0;
        conn.closed_after_input = false;
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(echo_handler()),
            limits,
        );
        for _ in 0..1000 {
            d.pump();
        }
        // The reply queue stalled at the threshold (plus at most the
        // batch completed in the round that crossed it) instead of
        // swallowing all 100 echoes.
        let bound = limits.per_conn_buffer_bound();
        assert!(d.queued_reply_bytes() > 0);
        assert!(
            d.queued_reply_bytes() <= bound,
            "queued {} exceeds bound {}",
            d.queued_reply_bytes(),
            bound
        );
        assert!(
            d.queued_reply_bytes() < 100 * 68,
            "backpressure never engaged: {}",
            d.queued_reply_bytes()
        );
    }

    #[test]
    fn tiny_frame_flood_cannot_outrun_a_stalled_pipeline() {
        // Thousands of tiny frames arrive for a handler that never
        // completes any of them: the pipeline window fills and stays
        // full.  The driver must stop *reading* — not just stop
        // dispatching — or `inbuf` grows by a chunk per round.
        let limits = Limits {
            max_pipeline: 4,
            read_chunk_bytes: 256,
            ..Limits::default()
        };
        let flood: Vec<u8> = (0..4096u32).flat_map(|_| onc_record(&[7u8; 4])).collect();
        let (mut conn, _written) = ScriptConn::new(vec![flood]);
        conn.closed_after_input = false;
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(DeferredReverse {
                pending: Vec::new(),
                expect: usize::MAX,
            }),
            limits,
        );
        for _ in 0..5_000 {
            d.pump();
            assert!(
                d.buffered_input_bytes() <= 2 * limits.read_chunk_bytes,
                "inbuf grew to {} with the pipeline stalled",
                d.buffered_input_bytes()
            );
        }
        assert_eq!(d.outstanding(), 4);
    }

    #[test]
    fn silent_oneway_flood_keeps_inbuf_bounded() {
        // Oneway frames never trip the reply-queue gate; each round
        // must still consume the whole backlog before reading more.
        let limits = Limits {
            max_pipeline: 4,
            read_chunk_bytes: 256,
            ..Limits::default()
        };
        let flood: Vec<u8> = (0..4096u32).flat_map(|_| onc_record(&[9u8; 4])).collect();
        let (conn, written) = ScriptConn::new(vec![flood]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(service_handler(|_: &[u8], _: &mut MarshalBuf| false)),
            limits,
        );
        for _ in 0..100_000 {
            if d.pump() == Pump::Done {
                break;
            }
            assert!(
                d.buffered_input_bytes() <= 2 * limits.read_chunk_bytes,
                "inbuf grew to {} under a oneway flood",
                d.buffered_input_bytes()
            );
        }
        assert_eq!(d.ending, Some(Ending::Closed));
        assert!(written.lock().unwrap().is_empty(), "oneways reply nothing");
    }

    #[test]
    fn oversized_reply_evicts_the_connection() {
        // The backpressure bound's "+ one maximal reply" term only
        // holds if replies respect the framing cap; a handler that
        // violates it loses the connection rather than the bound.
        let limits = Limits {
            max_record_bytes: 1024,
            ..Limits::default()
        };
        let (conn, _written) = ScriptConn::new(vec![onc_record(b"hi")]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(service_handler(|_: &[u8], reply: &mut MarshalBuf| {
                reply.put_bytes(&[0u8; 4096]);
                true
            })),
            limits,
        );
        run_to_done(&mut d);
        assert_eq!(d.ending, Some(Ending::Evicted));
    }

    #[test]
    fn oversized_record_evicts_the_connection() {
        let limits = Limits {
            max_record_bytes: 1024,
            ..Limits::default()
        };
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(0x8000_0000u32 | 1_000_000).to_be_bytes());
        hostile.extend_from_slice(&[0; 64]);
        let (conn, _written) = ScriptConn::new(vec![hostile]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(echo_handler()),
            limits,
        );
        run_to_done(&mut d);
        assert_eq!(d.ending, Some(Ending::Evicted));
    }

    #[test]
    fn giop_frames_are_scanned_whole() {
        // A GIOP echo: the handler returns the inbound message bytes.
        let mut msg = MarshalBuf::new();
        let order = crate::cdr::ByteOrder::Big;
        let at = giop::begin_message(&mut msg, order, giop::MsgType::Request);
        let cdr = crate::cdr::CdrOut::begin(&msg, order);
        giop::put_request_header(&mut msg, &cdr, 77, true, b"obj", "noop");
        giop::finish_message(&mut msg, at, order);
        let wire = msg.into_vec();

        let (a, b) = wire.split_at(7); // split inside the header
        let (conn, written) = ScriptConn::new(vec![a.to_vec(), b.to_vec()]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::Giop,
            Box::new(service_handler(|frame: &[u8], reply: &mut MarshalBuf| {
                reply.put_bytes(frame);
                true
            })),
            Limits::default(),
        );
        run_to_done(&mut d);
        assert_eq!(written.lock().unwrap().clone(), wire);
    }

    #[test]
    fn fabric_serves_connections_across_workers() {
        struct VecAcceptor(Vec<Accepted>);
        impl Acceptor for VecAcceptor {
            fn accept(&mut self) -> Option<Accepted> {
                self.0.pop()
            }
        }

        let mut outputs = Vec::new();
        let mut accepted = Vec::new();
        for i in 0..8u32 {
            let mut b = MarshalBuf::new();
            CallHeader {
                xid: i,
                prog: 7,
                vers: 1,
                proc: 1,
            }
            .write(&mut b);
            let (conn, written) = ScriptConn::new(vec![onc_record(b.as_slice())]);
            outputs.push(written);
            accepted.push(Accepted {
                conn: Box::new(conn),
                framing: Framing::OncRecord,
                handler: Box::new(echo_handler()),
            });
        }
        let stats = Fabric::new(Limits::default())
            .workers(3)
            .serve(VecAcceptor(accepted));
        assert_eq!(stats.accepted(), 8);
        assert_eq!(stats.closed(), 8);
        assert_eq!(stats.evicted(), 0);
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.expired(), 0);
        assert_eq!(stats.inflight(), 0);
        for w in outputs {
            let out = w.lock().unwrap().clone();
            let (r, _) = oncrpc::deframe_record(&out).unwrap();
            assert_eq!(r.len(), oncrpc::CALL_HEADER_BYTES);
        }
    }

    fn budgeted_call(xid: u32, budget: Duration) -> Vec<u8> {
        let _g = crate::deadline::stamp_outbound(budget);
        let mut b = MarshalBuf::new();
        CallHeader {
            xid,
            prog: 7,
            vers: 1,
            proc: 1,
        }
        .write(&mut b);
        onc_record(b.as_slice())
    }

    /// Panics if the fabric lets a frame through to it.
    fn unreachable_handler() -> impl FrameHandler {
        service_handler(|_: &[u8], _: &mut MarshalBuf| {
            panic!("an expired request reached the handler")
        })
    }

    #[test]
    fn expired_stream_requests_get_system_err_before_the_handler() {
        let (conn, written) = ScriptConn::new(vec![budgeted_call(0xDEAD, Duration::ZERO)]);
        let mut d = ConnDriver::new(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(unreachable_handler()),
            Limits::default(),
        );
        run_to_done(&mut d);
        let out = written.lock().unwrap().clone();
        let (rec, _) = oncrpc::deframe_record(&out).unwrap();
        let mut r = MsgReader::new(&rec);
        let (xid, verdict) = oncrpc::read_reply_verdict(&mut r).unwrap();
        assert_eq!(xid, 0xDEAD);
        assert_eq!(verdict, oncrpc::ReplyVerdict::SystemErr);
    }

    /// A [`ScriptConn`] posing as a datagram transport.
    struct DgramConn(ScriptConn);
    impl Conn for DgramConn {
        fn read_into(&mut self, buf: &mut MarshalBuf, max: usize) -> ReadStatus {
            self.0.read_into(buf, max)
        }
        fn write_some(&mut self, bytes: &[u8]) -> WriteStatus {
            self.0.write_some(bytes)
        }
        fn close(&mut self) {
            self.0.close();
        }
        fn is_datagram(&self) -> bool {
            true
        }
    }

    #[test]
    fn expired_datagram_requests_are_dropped_silently() {
        let (conn, written) = ScriptConn::new(vec![budgeted_call(5, Duration::ZERO)]);
        let mut d = ConnDriver::new(
            Box::new(DgramConn(conn)),
            Framing::OncRecord,
            Box::new(unreachable_handler()),
            Limits::default(),
        );
        run_to_done(&mut d);
        assert_eq!(d.ending, Some(Ending::Closed));
        assert!(
            written.lock().unwrap().is_empty(),
            "a datagram peer must get silence, not an error it no longer wants"
        );
    }

    /// Holds every frame forever and counts what it was given.
    struct CountingHold(Arc<AtomicU64>);
    impl FrameHandler for CountingHold {
        fn on_frame(&mut self, _id: FrameId, _frame: &[u8], _sink: &mut ReplySink) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn overload_sheds_new_calls_with_prog_unavail() {
        let limits = Limits {
            shed_threshold: 1,
            max_inflight_total: 8,
            ..Limits::default()
        };
        let recs: Vec<u8> = (1..=3u32)
            .flat_map(|xid| {
                let mut b = MarshalBuf::new();
                CallHeader {
                    xid,
                    prog: 7,
                    vers: 1,
                    proc: 1,
                }
                .write(&mut b);
                onc_record(b.as_slice())
            })
            .collect();
        let (mut conn, written) = ScriptConn::new(vec![recs]);
        conn.closed_after_input = false;
        let handled = Arc::new(AtomicU64::new(0));
        let shared = Arc::new(Shared::default());
        let mut d = ConnDriver::with_shared(
            Box::new(conn),
            Framing::OncRecord,
            Box::new(CountingHold(handled.clone())),
            limits,
            shared.clone(),
        );
        for _ in 0..100 {
            d.pump();
        }
        // The first call is in flight; the other two were shed with a
        // cheap protocol error, not queued behind it.
        assert_eq!(handled.load(Ordering::Relaxed), 1);
        assert_eq!(shared.shed.load(Ordering::Relaxed), 2);
        assert_eq!(shared.inflight.load(Ordering::Relaxed), 1);
        let out = written.lock().unwrap().clone();
        let mut verdicts = Vec::new();
        let mut at = 0;
        while at < out.len() {
            let (rec, used) = oncrpc::deframe_record(&out[at..]).unwrap();
            let mut r = MsgReader::new(&rec);
            verdicts.push(oncrpc::read_reply_verdict(&mut r).unwrap());
            at += used;
        }
        assert_eq!(
            verdicts,
            vec![
                (2, oncrpc::ReplyVerdict::ProgUnavail),
                (3, oncrpc::ReplyVerdict::ProgUnavail),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "incoherent fabric limits")]
    fn incoherent_limits_refuse_to_build_a_fabric() {
        let _ = Fabric::new(Limits {
            shed_threshold: 0,
            ..Limits::default()
        });
    }

    #[test]
    fn shutdown_drains_in_flight_work_then_closes() {
        struct ChanAcceptor(mpsc::Receiver<Accepted>);
        impl Acceptor for ChanAcceptor {
            fn accept(&mut self) -> Option<Accepted> {
                self.0.recv().ok()
            }
        }

        let (mut conn, written) = ScriptConn::new(vec![onc_record(b"ping")]);
        conn.closed_after_input = false; // the peer keeps the link open
        let observed = written.clone();
        let (tx, rx) = mpsc::channel::<Accepted>();
        let fabric = Fabric::new(Limits::default()).workers(1);
        let controller = fabric.controller();
        let driver = std::thread::spawn(move || {
            tx.send(Accepted {
                conn: Box::new(conn),
                framing: Framing::OncRecord,
                handler: Box::new(echo_handler()),
            })
            .unwrap();
            // Wait for the echo: proof the in-flight request completed
            // and flushed before the drain closed anything.
            for _ in 0..1_000_000 {
                if !observed.lock().unwrap().is_empty() {
                    break;
                }
                std::thread::yield_now();
            }
            assert!(
                !observed.lock().unwrap().is_empty(),
                "echo never flushed before shutdown"
            );
            controller.shutdown(Duration::from_millis(500));
            drop(tx); // unblocks the accept loop
        });
        let stats = fabric.serve(ChanAcceptor(rx));
        driver.join().unwrap();
        assert_eq!(stats.accepted(), 1);
        assert_eq!(stats.closed(), 1, "the idle connection drained cleanly");
        assert_eq!(stats.evicted(), 0);
        let out = written.lock().unwrap().clone();
        let (rec, _) = oncrpc::deframe_record(&out).unwrap();
        assert_eq!(&rec[..], b"ping");
    }
}
