//! Per-server / per-fabric resource limits.
//!
//! The hostile-wire hardening introduced hard framing caps —
//! [`crate::oncrpc::MAX_RECORD_BYTES`] and
//! [`crate::giop::MAX_MESSAGE_BYTES`], both 16 MiB — so a lying length
//! field can never force a giant allocation.  Those constants remain
//! the defaults, but a serving process wants them *configurable*: a
//! tight-memory gateway hosting thousands of connections budgets a few
//! KiB per link, while a bulk-transfer endpoint may need the full 16
//! MiB.  [`Limits`] carries the framing caps together with the
//! connection-fabric knobs (pipelining depth, reply-queue bound, batch
//! size) as one value handed to a server loop or a
//! [`crate::fabric::Fabric`].
//!
//! Every field defaults to today's behavior; [`Limits::tight`] is the
//! small-footprint configuration the fan-in bench exercises.

/// Resource limits for one server loop or fabric instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Cap on one assembled ONC record (and any single fragment).
    /// Default: [`crate::oncrpc::MAX_RECORD_BYTES`].
    pub max_record_bytes: usize,
    /// Cap on one GIOP message body.  Default:
    /// [`crate::giop::MAX_MESSAGE_BYTES`].
    pub max_message_bytes: usize,
    /// Maximum in-flight (decoded but unanswered) requests per
    /// connection — the pipelining window.
    pub max_pipeline: usize,
    /// Backpressure threshold: once a connection's pending encoded
    /// replies exceed this many bytes, the fabric stops *reading* that
    /// connection until the queue drains.
    pub reply_buf_bytes: usize,
    /// Bytes pulled off a connection per pump round — the decode
    /// granularity (and an input-side fairness bound).
    pub read_chunk_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_record_bytes: crate::oncrpc::MAX_RECORD_BYTES,
            max_message_bytes: crate::giop::MAX_MESSAGE_BYTES,
            max_pipeline: 32,
            reply_buf_bytes: 256 * 1024,
            read_chunk_bytes: 64 * 1024,
        }
    }
}

impl Limits {
    /// Today's defaults — identical to the previously hard-coded caps.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A tight-memory configuration: 64 KiB frames, a short pipeline,
    /// and a small reply queue.  This is what the fan-in bench runs so
    /// thousands of connections fit in a few MiB of buffers.
    #[must_use]
    pub fn tight() -> Self {
        Limits {
            max_record_bytes: 64 * 1024,
            max_message_bytes: 64 * 1024,
            max_pipeline: 16,
            reply_buf_bytes: 16 * 1024,
            read_chunk_bytes: 8 * 1024,
        }
    }

    /// Worst-case bytes one connection's fabric buffers may hold:
    /// a partially assembled inbound frame plus one read chunk, the
    /// reply queue at its threshold, plus one maximal reply appended
    /// after the threshold check.  The backpressure test asserts
    /// against this bound.
    #[must_use]
    pub fn per_conn_buffer_bound(&self) -> usize {
        let frame = self.max_record_bytes.max(self.max_message_bytes);
        (frame + self.read_chunk_bytes) + (self.reply_buf_bytes + frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_hardcoded_caps() {
        let l = Limits::default();
        assert_eq!(l.max_record_bytes, crate::oncrpc::MAX_RECORD_BYTES);
        assert_eq!(l.max_message_bytes, crate::giop::MAX_MESSAGE_BYTES);
        assert_eq!(l.max_record_bytes, 16 * 1024 * 1024);
    }

    #[test]
    fn tight_is_smaller_everywhere() {
        let d = Limits::default();
        let t = Limits::tight();
        assert!(t.max_record_bytes < d.max_record_bytes);
        assert!(t.max_message_bytes < d.max_message_bytes);
        assert!(t.reply_buf_bytes < d.reply_buf_bytes);
        assert!(t.per_conn_buffer_bound() < d.per_conn_buffer_bound());
    }
}
