//! Per-server / per-fabric resource limits.
//!
//! The hostile-wire hardening introduced hard framing caps —
//! [`crate::oncrpc::MAX_RECORD_BYTES`] and
//! [`crate::giop::MAX_MESSAGE_BYTES`], both 16 MiB — so a lying length
//! field can never force a giant allocation.  Those constants remain
//! the defaults, but a serving process wants them *configurable*: a
//! tight-memory gateway hosting thousands of connections budgets a few
//! KiB per link, while a bulk-transfer endpoint may need the full 16
//! MiB.  [`Limits`] carries the framing caps together with the
//! connection-fabric knobs (pipelining depth, reply-queue bound, batch
//! size) and the fabric-wide admission caps (total in-flight work,
//! shed threshold) as one value handed to a server loop or a
//! [`crate::fabric::Fabric`].
//!
//! Every field defaults to today's behavior; [`Limits::tight`] is the
//! small-footprint configuration the fan-in bench exercises.  A
//! hand-built `Limits` should go through [`Limits::validated`] so an
//! incoherent configuration fails loudly at construction instead of
//! surfacing as mysterious runtime evictions — [`crate::fabric::Fabric::new`]
//! does this for you.

/// Resource limits for one server loop or fabric instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Cap on one assembled ONC record (and any single fragment).
    /// Default: [`crate::oncrpc::MAX_RECORD_BYTES`].
    pub max_record_bytes: usize,
    /// Cap on one GIOP message body.  Default:
    /// [`crate::giop::MAX_MESSAGE_BYTES`].
    pub max_message_bytes: usize,
    /// Maximum in-flight (decoded but unanswered) requests per
    /// connection — the pipelining window.
    pub max_pipeline: usize,
    /// Backpressure threshold: once a connection's pending encoded
    /// replies exceed this many bytes, the fabric stops *reading* that
    /// connection until the queue drains.
    pub reply_buf_bytes: usize,
    /// Bytes pulled off a connection per pump round — the decode
    /// granularity (and an input-side fairness bound).
    pub read_chunk_bytes: usize,
    /// Hard cap on in-flight requests across the *whole* fabric: at
    /// this level workers stop dispatching entirely until work
    /// completes.  The memory backstop above the shed threshold.
    pub max_inflight_total: usize,
    /// Admission threshold: once fabric-wide in-flight requests reach
    /// this level, new requests are refused with a cheap protocol
    /// error (`PROG_UNAVAIL` / `TRANSIENT`) instead of queueing.
    /// Must not exceed `max_inflight_total`.
    pub shed_threshold: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_record_bytes: crate::oncrpc::MAX_RECORD_BYTES,
            max_message_bytes: crate::giop::MAX_MESSAGE_BYTES,
            max_pipeline: 32,
            reply_buf_bytes: 16 * 1024 * 1024,
            read_chunk_bytes: 64 * 1024,
            max_inflight_total: 1024,
            shed_threshold: 768,
        }
    }
}

impl Limits {
    /// Today's defaults — identical to the previously hard-coded caps.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A tight-memory configuration: 64 KiB frames, a short pipeline,
    /// and a small reply queue.  This is what the fan-in bench runs so
    /// thousands of connections fit in a few MiB of buffers.
    #[must_use]
    pub fn tight() -> Self {
        Limits {
            max_record_bytes: 64 * 1024,
            max_message_bytes: 64 * 1024,
            max_pipeline: 16,
            reply_buf_bytes: 64 * 1024,
            read_chunk_bytes: 8 * 1024,
            max_inflight_total: 256,
            shed_threshold: 192,
        }
    }

    /// Checks the configuration for internal coherence, returning it
    /// unchanged when sound.
    ///
    /// # Errors
    /// A static description of the first incoherence found:
    /// * any zero cap (`max_record_bytes`, `max_message_bytes`,
    ///   `max_pipeline`, `read_chunk_bytes`, `reply_buf_bytes`,
    ///   `max_inflight_total`, `shed_threshold`) — a zero bound can
    ///   admit no work at all;
    /// * `reply_buf_bytes` smaller than the largest admissible frame —
    ///   one maximal reply would overrun the queue it is supposed to
    ///   bound, surfacing as an eviction on a well-behaved peer;
    /// * `shed_threshold` above `max_inflight_total` — shedding would
    ///   never engage below the hard stop, defeating its purpose.
    pub fn validated(self) -> Result<Self, &'static str> {
        if self.max_record_bytes == 0 {
            return Err("max_record_bytes is zero: no record could ever be read");
        }
        if self.max_message_bytes == 0 {
            return Err("max_message_bytes is zero: no message could ever be read");
        }
        if self.max_pipeline == 0 {
            return Err("max_pipeline is zero: no request could ever be dispatched");
        }
        if self.read_chunk_bytes == 0 {
            return Err("read_chunk_bytes is zero: no bytes could ever be read");
        }
        if self.reply_buf_bytes == 0 {
            return Err("reply_buf_bytes is zero: no reply could ever be queued");
        }
        let frame = self.max_record_bytes.max(self.max_message_bytes);
        if self.reply_buf_bytes < frame {
            return Err(
                "reply_buf_bytes is smaller than the largest admissible frame: \
                 one maximal reply would evict a well-behaved connection",
            );
        }
        if self.max_inflight_total == 0 {
            return Err("max_inflight_total is zero: every request would be refused");
        }
        if self.shed_threshold == 0 {
            return Err("shed_threshold is zero: every request would be shed");
        }
        if self.shed_threshold > self.max_inflight_total {
            return Err("shed_threshold exceeds max_inflight_total: \
                 the hard stop would engage before shedding ever could");
        }
        Ok(self)
    }

    /// Worst-case bytes one connection's fabric buffers may hold:
    /// a partially assembled inbound frame plus one read chunk, the
    /// reply queue at its threshold, plus one maximal reply appended
    /// after the threshold check.  The backpressure test asserts
    /// against this bound.
    #[must_use]
    pub fn per_conn_buffer_bound(&self) -> usize {
        let frame = self.max_record_bytes.max(self.max_message_bytes);
        (frame + self.read_chunk_bytes) + (self.reply_buf_bytes + frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_hardcoded_caps() {
        let l = Limits::default();
        assert_eq!(l.max_record_bytes, crate::oncrpc::MAX_RECORD_BYTES);
        assert_eq!(l.max_message_bytes, crate::giop::MAX_MESSAGE_BYTES);
        assert_eq!(l.max_record_bytes, 16 * 1024 * 1024);
    }

    #[test]
    fn tight_is_smaller_everywhere() {
        let d = Limits::default();
        let t = Limits::tight();
        assert!(t.max_record_bytes < d.max_record_bytes);
        assert!(t.max_message_bytes < d.max_message_bytes);
        assert!(t.reply_buf_bytes < d.reply_buf_bytes);
        assert!(t.max_inflight_total < d.max_inflight_total);
        assert!(t.per_conn_buffer_bound() < d.per_conn_buffer_bound());
    }

    #[test]
    fn stock_configurations_validate() {
        assert!(Limits::default().validated().is_ok());
        assert!(Limits::tight().validated().is_ok());
    }

    #[test]
    fn incoherent_configurations_are_refused_with_reasons() {
        let cases: &[(&str, Limits)] = &[
            (
                "max_pipeline",
                Limits {
                    max_pipeline: 0,
                    ..Limits::default()
                },
            ),
            (
                "reply_buf_bytes below the frame cap",
                Limits {
                    reply_buf_bytes: crate::oncrpc::MAX_RECORD_BYTES - 1,
                    ..Limits::default()
                },
            ),
            (
                "zero reply_buf_bytes",
                Limits {
                    reply_buf_bytes: 0,
                    ..Limits::default()
                },
            ),
            (
                "zero read_chunk_bytes",
                Limits {
                    read_chunk_bytes: 0,
                    ..Limits::default()
                },
            ),
            (
                "zero max_record_bytes",
                Limits {
                    max_record_bytes: 0,
                    ..Limits::default()
                },
            ),
            (
                "zero max_inflight_total",
                Limits {
                    max_inflight_total: 0,
                    ..Limits::default()
                },
            ),
            (
                "shed_threshold above max_inflight_total",
                Limits {
                    shed_threshold: 2048,
                    max_inflight_total: 1024,
                    ..Limits::default()
                },
            ),
        ];
        for (what, limits) in cases {
            let err = limits
                .validated()
                .expect_err(&format!("{what} must be refused"));
            assert!(!err.is_empty(), "{what}: descriptive error expected");
        }
    }
}
