//! Point-in-time observability snapshots for benches, tests, and the
//! `--stats` surface.
//!
//! Thin feature-gated views over `flick_telemetry`: the full registry
//! in text or JSON, and a per-operation latency table distilled from
//! the `rpc.<op>.{rtt,server}` histograms the trace spans feed.  With
//! the `telemetry` feature off every function returns an empty string
//! so callers need no `cfg` of their own.

/// The metric registry as human-readable text (empty when the
/// `telemetry` feature is off or nothing was recorded).
#[inline]
#[must_use]
pub fn snapshot_text() -> String {
    #[cfg(feature = "telemetry")]
    {
        flick_telemetry::global().snapshot().to_text()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

/// The metric registry as one JSON object keyed by metric name (empty
/// string when the `telemetry` feature is off).
#[inline]
#[must_use]
pub fn snapshot_json() -> String {
    #[cfg(feature = "telemetry")]
    {
        flick_telemetry::global().snapshot().to_json()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

/// A per-operation latency table over every `rpc.<op>.rtt` and
/// `rpc.<op>.server` histogram: operation, side, count, and
/// p50/p90/p99/max in nanoseconds (bucket upper bounds).  Empty when
/// no RPC span has recorded or the `telemetry` feature is off.
#[must_use]
pub fn per_op_table() -> String {
    #[cfg(feature = "telemetry")]
    {
        let snap = flick_telemetry::global().snapshot();
        let mut rows = Vec::new();
        for (name, value) in &snap.metrics {
            let Some(rest) = name.strip_prefix("rpc.") else {
                continue;
            };
            let (op, side) = if let Some(op) = rest.strip_suffix(".rtt") {
                (op, "client rtt")
            } else if let Some(op) = rest.strip_suffix(".server") {
                (op, "server")
            } else {
                continue;
            };
            let flick_telemetry::MetricValue::Histogram(h) = value else {
                continue;
            };
            if h.count == 0 {
                continue;
            }
            rows.push(format!(
                "{:<24} {:<10} {:>7} {:>12} {:>12} {:>12} {:>12}",
                op,
                side,
                h.count,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.percentile(1.0),
            ));
        }
        if rows.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "{:<24} {:<10} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
            "op", "side", "count", "p50(ns)", "p90(ns)", "p99(ns)", "max(ns)"
        );
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn per_op_table_lists_rpc_histograms() {
        flick_telemetry::global()
            .histogram("rpc.stats_unit_op.rtt")
            .record(1000);
        flick_telemetry::global()
            .histogram("rpc.stats_unit_op.server")
            .record(500);
        let table = per_op_table();
        assert!(table.contains("stats_unit_op"), "table: {table}");
        assert!(table.contains("client rtt"));
        assert!(table.contains("server"));
        assert!(table.starts_with("op "), "header row first: {table}");
        assert!(snapshot_text().contains("rpc.stats_unit_op.rtt"));
        assert!(snapshot_json().contains("\"rpc.stats_unit_op.rtt\""));
    }
}
