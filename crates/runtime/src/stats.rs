//! Point-in-time observability snapshots for benches, tests, and the
//! `--stats` surface.
//!
//! Thin feature-gated views over `flick_telemetry`: the full registry
//! in text or JSON, and a per-operation latency table distilled from
//! the `rpc.<op>.{rtt,server}` histograms the trace spans feed.  With
//! the `telemetry` feature off every function returns an empty string
//! so callers need no `cfg` of their own.

/// The metric registry as human-readable text (empty when the
/// `telemetry` feature is off or nothing was recorded).
#[inline]
#[must_use]
pub fn snapshot_text() -> String {
    #[cfg(feature = "telemetry")]
    {
        flick_telemetry::global().snapshot().to_text()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

/// The metric registry as one JSON object keyed by metric name (empty
/// string when the `telemetry` feature is off).
#[inline]
#[must_use]
pub fn snapshot_json() -> String {
    #[cfg(feature = "telemetry")]
    {
        flick_telemetry::global().snapshot().to_json()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

/// A per-operation latency table over every `rpc.<op>.rtt` and
/// `rpc.<op>.server` histogram: operation, side, count, and
/// p50/p90/p99/max in nanoseconds (bucket upper bounds).  Empty when
/// no RPC span has recorded or the `telemetry` feature is off.
#[must_use]
pub fn per_op_table() -> String {
    #[cfg(feature = "telemetry")]
    {
        let snap = flick_telemetry::global().snapshot();
        let mut rows = Vec::new();
        for (name, value) in &snap.metrics {
            let Some(rest) = name.strip_prefix("rpc.") else {
                continue;
            };
            let (op, side) = if let Some(op) = rest.strip_suffix(".rtt") {
                (op, "client rtt")
            } else if let Some(op) = rest.strip_suffix(".server") {
                (op, "server")
            } else {
                continue;
            };
            let flick_telemetry::MetricValue::Histogram(h) = value else {
                continue;
            };
            if h.count == 0 {
                continue;
            }
            rows.push(format!(
                "{:<24} {:<10} {:>7} {:>12} {:>12} {:>12} {:>12}",
                op,
                side,
                h.count,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.percentile(1.0),
            ));
        }
        if rows.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "{:<24} {:<10} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
            "op", "side", "count", "p50(ns)", "p90(ns)", "p99(ns)", "max(ns)"
        );
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

/// A per-operation gateway table over every `bridge.<op>.{forwarded,
/// rejected,fallback}` counter — the proxy-side companion to
/// [`per_op_table`], so bridge traffic breaks down by operation the
/// same way RPC latency does.  Empty when no per-op bridge counter has
/// recorded or the `telemetry` feature is off.
#[must_use]
pub fn bridge_op_table() -> String {
    #[cfg(feature = "telemetry")]
    {
        let snap = flick_telemetry::global().snapshot();
        // op name -> [forwarded, rejected, fallback]
        let mut ops: Vec<(String, [u64; 3])> = Vec::new();
        for (name, value) in &snap.metrics {
            let Some(rest) = name.strip_prefix("bridge.") else {
                continue;
            };
            let Some((op, kind)) = rest.rsplit_once('.') else {
                continue; // the global bridge.{forwarded,...} totals
            };
            let slot = match kind {
                "forwarded" => 0,
                "rejected" => 1,
                "fallback" => 2,
                _ => continue,
            };
            let flick_telemetry::MetricValue::Counter(n) = value else {
                continue;
            };
            let row = match ops.iter_mut().find(|(o, _)| o == op) {
                Some((_, counts)) => counts,
                None => {
                    ops.push((op.to_string(), [0; 3]));
                    &mut ops.last_mut().expect("just pushed").1
                }
            };
            row[slot] = *n;
        }
        ops.retain(|(_, c)| c.iter().any(|&n| n > 0));
        if ops.is_empty() {
            return String::new();
        }
        ops.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = format!(
            "{:<24} {:>10} {:>10} {:>10}\n",
            "op", "forwarded", "rejected", "fallback"
        );
        for (op, c) in ops {
            out.push_str(&format!(
                "{:<24} {:>10} {:>10} {:>10}\n",
                op, c[0], c[1], c[2]
            ));
        }
        out
    }
    #[cfg(not(feature = "telemetry"))]
    {
        String::new()
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn bridge_op_table_breaks_counters_down_by_operation() {
        flick_telemetry::global()
            .counter("bridge.stats_unit_send.forwarded")
            .add(7);
        flick_telemetry::global()
            .counter("bridge.stats_unit_send.rejected")
            .add(2);
        let table = bridge_op_table();
        assert!(table.contains("stats_unit_send"), "table: {table}");
        assert!(table.starts_with("op "), "header row first: {table}");
        let row = table
            .lines()
            .find(|l| l.contains("stats_unit_send"))
            .unwrap();
        assert!(row.contains('7') && row.contains('2'), "row: {row}");
    }

    #[test]
    fn per_op_table_lists_rpc_histograms() {
        flick_telemetry::global()
            .histogram("rpc.stats_unit_op.rtt")
            .record(1000);
        flick_telemetry::global()
            .histogram("rpc.stats_unit_op.server")
            .record(500);
        let table = per_op_table();
        assert!(table.contains("stats_unit_op"), "table: {table}");
        assert!(table.contains("client rtt"));
        assert!(table.contains("server"));
        assert!(table.starts_with("op "), "header row first: {table}");
        assert!(snapshot_text().contains("rpc.stats_unit_op.rtt"));
        assert!(snapshot_json().contains("\"rpc.stats_unit_op.rtt\""));
    }
}
