//! With the `telemetry` feature on and collection enabled, real
//! marshal traffic shows up in a registry snapshot: message counts,
//! byte totals, and latency histograms for the CDR and XDR paths.
#![cfg(feature = "telemetry")]

use flick_runtime::cdr::ByteOrder;
use flick_runtime::giop::{begin_message, finish_message, read_header, MsgType};
use flick_runtime::oncrpc::{deframe_record, frame_record, CallHeader};
use flick_runtime::{MarshalBuf, MsgReader};
use flick_telemetry::MetricValue;

fn histogram_count(s: &flick_telemetry::Snapshot, name: &str) -> u64 {
    match s.get(name) {
        Some(MetricValue::Histogram(h)) => h.count,
        other => panic!("{name} should be a histogram, got {other:?}"),
    }
}

#[test]
fn cdr_and_xdr_traffic_lands_in_the_snapshot() {
    flick_telemetry::set_enabled(true);
    flick_telemetry::global().reset();

    const ROUNDS: u64 = 10;
    let mut giop_bytes = 0u64;
    for i in 0..ROUNDS {
        // CDR encode + decode via GIOP framing.
        let mut buf = MarshalBuf::new();
        let at = begin_message(&mut buf, ByteOrder::Big, MsgType::Request);
        for j in 0..=i {
            buf.put_u32_be(j as u32);
        }
        finish_message(&mut buf, at, ByteOrder::Big);
        let data = buf.into_vec();
        giop_bytes += data.len() as u64;
        let mut r = MsgReader::new(&data);
        read_header(&mut r).expect("header parses");

        // XDR encode + decode via record marking.
        let mut buf = MarshalBuf::new();
        CallHeader {
            xid: i as u32,
            prog: 1,
            vers: 1,
            proc: 1,
        }
        .write(&mut buf);
        let framed = frame_record(&buf.into_vec());
        deframe_record(&framed).expect("record deframes");
    }

    let s = flick_telemetry::global().snapshot();

    // Counts.
    assert_eq!(s.counter("runtime.cdr.encode.msgs"), Some(ROUNDS));
    assert_eq!(s.counter("runtime.cdr.decode.msgs"), Some(ROUNDS));
    assert_eq!(s.counter("runtime.xdr.encode.msgs"), Some(ROUNDS));
    assert_eq!(s.counter("runtime.xdr.decode.msgs"), Some(ROUNDS));

    // Byte totals: encode and decode saw the same complete messages.
    assert_eq!(s.counter("runtime.cdr.encode.bytes"), Some(giop_bytes));
    assert_eq!(s.counter("runtime.cdr.decode.bytes"), Some(giop_bytes));
    let xdr_sent = s.counter("runtime.xdr.encode.bytes").unwrap();
    assert_eq!(s.counter("runtime.xdr.decode.bytes"), Some(xdr_sent));
    // 40-byte call header + 4-byte record mark, each round.
    assert_eq!(xdr_sent, ROUNDS * 44);

    // Latency histograms populated where begin/end pairs bracket work.
    assert_eq!(histogram_count(&s, "runtime.cdr.encode.ns"), ROUNDS);
    assert_eq!(histogram_count(&s, "runtime.xdr.encode.ns"), ROUNDS);
    assert_eq!(histogram_count(&s, "runtime.cdr.decode.ns"), ROUNDS);
    assert_eq!(histogram_count(&s, "runtime.xdr.decode.ns"), ROUNDS);

    // Size distributions track every message.
    assert_eq!(histogram_count(&s, "runtime.cdr.encode.size"), ROUNDS);
    assert_eq!(histogram_count(&s, "runtime.xdr.encode.size"), ROUNDS);

    // And the whole thing exports.
    let json = s.to_json();
    assert!(json.contains("\"runtime.cdr.encode.msgs\":{\"type\":\"counter\",\"value\":10}"));
    assert!(json.contains("\"runtime.xdr.encode.ns\":{\"type\":\"histogram\""));
    let text = s.to_text();
    assert!(text.contains("runtime.cdr.encode.msgs"));

    flick_telemetry::set_enabled(false);
}
