//! PRES mapping nodes.

use std::fmt;

use flick_cast::CType;
use flick_mint::MintId;

/// Index of a [`PresNode`] within a [`PresTree`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PresId(u32);

impl PresId {
    fn from_index(i: usize) -> Self {
        PresId(u32::try_from(i).expect("more than 2^32 PRES nodes"))
    }

    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PresId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Where unmarshaled storage for presented data may come from.
///
/// These flags encode the *behavioral properties of the presentation*
/// (paper §3.1): stack allocation is valid only when the presentation
/// semantics forbid the server function from keeping a reference after
/// it returns; presenting data in place inside the marshal buffer is
/// valid only for `in` parameters whose encoded and presented formats
/// are identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSem {
    /// The stub may allocate parameter storage on its runtime stack.
    pub may_use_stack: bool,
    /// The stub may present data in place inside the marshal buffer.
    pub may_use_buffer: bool,
    /// Fallback allocation strategy when neither applies.
    pub fallback: AllocStrategy,
}

impl AllocSem {
    /// The conservative semantics: always heap-allocate.
    #[must_use]
    pub fn heap_only() -> Self {
        AllocSem {
            may_use_stack: false,
            may_use_buffer: false,
            fallback: AllocStrategy::Heap,
        }
    }

    /// The semantics of CORBA-style `in` parameters on the server
    /// side: the work function may not retain references, so stack and
    /// in-buffer presentation are both valid.
    #[must_use]
    pub fn server_in_param() -> Self {
        AllocSem {
            may_use_stack: true,
            may_use_buffer: true,
            fallback: AllocStrategy::Heap,
        }
    }
}

/// Fallback allocator used when optimized storage does not apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocStrategy {
    /// `malloc`/`free` (or the language's allocator).
    Heap,
    /// The presentation's named allocator (e.g. `CORBA_alloc`).
    PresentationAllocator,
}

/// A PRES mapping node: the conversion between one MINT type and one
/// target-language type.  Children describe component conversions.
#[derive(Clone, Debug, PartialEq)]
pub enum PresNode {
    /// No data on either side (void return, empty message).
    Void,
    /// Direct mapping: a MINT atom presents as a C scalar with no
    /// transformation (Figure 2, first example).
    Direct {
        /// The message type.
        mint: MintId,
        /// The presented C type.
        ctype: CType,
    },
    /// An enum presents as a C enum/int; values map one-to-one.
    EnumMap {
        /// The message type (an integer node).
        mint: MintId,
        /// The presented C type (typically a typedef of `unsigned`).
        ctype: CType,
    },
    /// A MINT fixed-length array presents as a C array.
    FixedArray {
        /// The message type (array with fixed bounds).
        mint: MintId,
        /// Element conversion.
        elem: PresId,
        /// Element count.
        len: u64,
        /// The presented C array type.
        ctype: CType,
    },
    /// `OPT_PTR` (Figure 2, second example): a MINT counted array
    /// presents as a C pointer; non-zero count ⇒ pointer to decoded
    /// elements, zero count ⇒ null pointer.
    OptPtr {
        /// The message type (variable array).
        mint: MintId,
        /// Element conversion.
        elem: PresId,
        /// The presented C pointer type.
        ctype: CType,
        /// Allocation semantics for unmarshaled elements.
        alloc: AllocSem,
    },
    /// A MINT counted char array presents as a NUL-terminated `char *`
    /// (the classic C string presentation; marshaling counts the
    /// characters, unmarshaling appends the terminator).
    TerminatedString {
        /// The message type (counted array of char).
        mint: MintId,
        /// Allocation semantics for the unmarshaled string.
        alloc: AllocSem,
    },
    /// A MINT counted array presents as a counted sequence struct
    /// (CORBA's `{_maximum, _length, _buffer}`).
    CountedSeq {
        /// The message type (variable array).
        mint: MintId,
        /// Element conversion.
        elem: PresId,
        /// The presented C struct type (a typedef name).
        ctype: CType,
        /// Name of the length member.
        length_field: String,
        /// Name of the capacity member.
        maximum_field: String,
        /// Name of the buffer member.
        buffer_field: String,
        /// Allocation semantics for unmarshaled elements.
        alloc: AllocSem,
    },
    /// A MINT struct presents as a C struct, member by member.
    StructMap {
        /// The message type (struct).
        mint: MintId,
        /// The presented C struct type (typedef or tag reference).
        ctype: CType,
        /// `(C member name, conversion)` in MINT slot order.
        fields: Vec<(String, PresId)>,
    },
    /// A MINT union presents as a C `struct { d; union u; }` pair.
    UnionMap {
        /// The message type (union).
        mint: MintId,
        /// The presented C type.
        ctype: CType,
        /// Discriminator conversion.
        discrim: PresId,
        /// Name of the discriminator member.
        discrim_field: String,
        /// `(label value, member name, conversion)` per arm.
        cases: Vec<(i64, String, PresId)>,
        /// Default arm, if any.
        default: Option<(String, PresId)>,
    },
    /// ONC RPC optional data: a MINT boolean-discriminated union of
    /// void/value presents as a nullable C pointer.
    OptionalPtr {
        /// The message type (union over a boolean).
        mint: MintId,
        /// Pointee conversion.
        elem: PresId,
        /// The presented C pointer type.
        ctype: CType,
        /// Allocation semantics for the pointee.
        alloc: AllocSem,
    },
}

impl PresNode {
    /// The MINT node this conversion consumes/produces, if any.
    #[must_use]
    pub fn mint(&self) -> Option<MintId> {
        match self {
            PresNode::Void => None,
            PresNode::Direct { mint, .. }
            | PresNode::EnumMap { mint, .. }
            | PresNode::FixedArray { mint, .. }
            | PresNode::OptPtr { mint, .. }
            | PresNode::TerminatedString { mint, .. }
            | PresNode::CountedSeq { mint, .. }
            | PresNode::StructMap { mint, .. }
            | PresNode::UnionMap { mint, .. }
            | PresNode::OptionalPtr { mint, .. } => Some(*mint),
        }
    }

    /// The presented C type, if the conversion has one.
    #[must_use]
    pub fn ctype(&self) -> Option<&CType> {
        match self {
            PresNode::Void => None,
            PresNode::TerminatedString { .. } => None,
            PresNode::Direct { ctype, .. }
            | PresNode::EnumMap { ctype, .. }
            | PresNode::FixedArray { ctype, .. }
            | PresNode::OptPtr { ctype, .. }
            | PresNode::CountedSeq { ctype, .. }
            | PresNode::StructMap { ctype, .. }
            | PresNode::UnionMap { ctype, .. }
            | PresNode::OptionalPtr { ctype, .. } => Some(ctype),
        }
    }
}

/// Arena of PRES nodes.
#[derive(Clone, Debug, Default)]
pub struct PresTree {
    nodes: Vec<PresNode>,
}

impl PresTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add(&mut self, node: PresNode) -> PresId {
        let id = PresId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Reserves a slot for a node whose children are not yet built
    /// (recursive presentations such as ONC linked lists).  Must be
    /// [`PresTree::patch`]ed before use.
    pub fn reserve(&mut self) -> PresId {
        self.add(PresNode::Void)
    }

    /// Replaces a reserved slot.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn patch(&mut self, id: PresId, node: PresNode) {
        self.nodes[id.index()] = node;
    }

    /// The node for `id`.
    ///
    /// # Panics
    /// Panics if `id` is from another tree.
    #[must_use]
    pub fn get(&self, id: PresId) -> &PresNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_mint::MintGraph;

    #[test]
    fn figure2_example1_direct_int() {
        // Figure 2 example 1: C `int x` ↔ MINT 32-bit integer.
        let mut mint = MintGraph::new();
        let m = mint.i32();
        let mut pres = PresTree::new();
        let p = pres.add(PresNode::Direct {
            mint: m,
            ctype: CType::Int,
        });
        assert_eq!(pres.get(p).mint(), Some(m));
        assert_eq!(pres.get(p).ctype(), Some(&CType::Int));
    }

    #[test]
    fn figure2_example2_opt_ptr_string() {
        // Figure 2 example 2: C `char *str` ↔ MINT counted char array,
        // via an OPT_PTR transformation.
        let mut mint = MintGraph::new();
        let chars = mint.string(None);
        let c8 = mint.char8();
        let mut pres = PresTree::new();
        let elem = pres.add(PresNode::Direct {
            mint: c8,
            ctype: CType::Char,
        });
        let p = pres.add(PresNode::OptPtr {
            mint: chars,
            elem,
            ctype: CType::ptr(CType::Char),
            alloc: AllocSem::heap_only(),
        });
        match pres.get(p) {
            PresNode::OptPtr { ctype, .. } => {
                assert_eq!(*ctype, CType::ptr(CType::Char));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alloc_semantics_presets() {
        let h = AllocSem::heap_only();
        assert!(!h.may_use_stack && !h.may_use_buffer);
        let s = AllocSem::server_in_param();
        assert!(s.may_use_stack && s.may_use_buffer);
    }

    #[test]
    fn void_has_no_mint_or_ctype() {
        let mut pres = PresTree::new();
        let v = pres.add(PresNode::Void);
        assert_eq!(pres.get(v).mint(), None);
        assert_eq!(pres.get(v).ctype(), None);
    }
}
