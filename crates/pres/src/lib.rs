//! PRES and PRES-C — presentation mapping trees and the complete
//! C-presentation description (paper §2.2.3–§2.2.4).
//!
//! A [`PresNode`] defines a *type conversion* between a MINT message
//! type and a target-language (CAST) type: a direct scalar mapping, an
//! `OPT_PTR` pointer transformation, a counted-sequence presentation,
//! and so on.  A [`PresC`] bundles everything a back end needs to
//! implement one side (client or server) of an interface:
//!
//! * the MINT graph of every request and reply message,
//! * the CAST declarations presented to user code,
//! * one [`Stub`] per generated function, whose parameter bindings tie
//!   message slots to C parameters through PRES trees.
//!
//! The only thing *not* described here is the transport protocol —
//! message format, data encoding, and communication mechanism — which
//! is the domain of the back ends.

pub mod hash;
pub mod node;
pub mod print;
pub mod stub;

pub use hash::stub_hash;
pub use node::{AllocSem, AllocStrategy, PresId, PresNode, PresTree};
pub use stub::{MessagePres, OpInfo, ParamBinding, Side, Stub, StubKind};

use flick_cast::CUnit;
use flick_mint::MintGraph;

/// A complete presentation of an interface in C, for one side.
///
/// This is the artifact a presentation generator produces and a back
/// end consumes; the paper stores it in a `.prc` file, we pass it in
/// memory (and snapshot it textually in golden tests).
#[derive(Clone, Debug)]
pub struct PresC {
    /// Which side of the interface this presentation serves.
    pub side: Side,
    /// Scoped interface name.
    pub interface: String,
    /// Transport program identity (ONC RPC program number, if any).
    pub program: u64,
    /// Transport version (ONC RPC version number, if any).
    pub version: u64,
    /// All message types.
    pub mint: MintGraph,
    /// All presentation mappings.
    pub pres: PresTree,
    /// Supporting C declarations (typedefs, structs) exposed to users.
    pub cast: CUnit,
    /// The stubs to generate.
    pub stubs: Vec<Stub>,
    /// Name of the presentation style that produced this (e.g.
    /// `"corba-c"`, `"rpcgen-c"`, `"mig-c"`), for diagnostics and the
    /// Table 1 accounting.
    pub style: String,
}

impl PresC {
    /// Finds a stub by generated name.
    #[must_use]
    pub fn stub(&self, name: &str) -> Option<&Stub> {
        self.stubs.iter().find(|s| s.name == name)
    }

    /// Textual rendering — the paper's `.prc` view (see [`mod@print`]).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        print::print(self)
    }
}
