//! Stub descriptions within a PRES-C presentation.

use flick_cast::CFunction;
use flick_mint::MintId;

use crate::node::PresId;

/// Which side of an interface a presentation (or stub) serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The invoking side.
    Client,
    /// The implementing side.
    Server,
}

/// The role of a generated function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StubKind {
    /// Client-side call stub: marshal request, send, await reply,
    /// unmarshal results.
    ClientCall,
    /// Server-side dispatch function: demultiplex a request, unmarshal
    /// arguments, invoke the work function, marshal the reply.
    ServerDispatch,
    /// The prototype of the user-implemented server work function.
    ServerWork,
    /// One-way send stub (no reply expected).
    OnewaySend,
}

/// Interface-operation metadata carried with each stub.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpInfo {
    /// The IDL-level operation name.
    pub name: String,
    /// Wire discriminator for the operation (ONC RPC procedure number,
    /// or the ordinal backing a CORBA operation-name discriminator).
    pub request_code: u64,
    /// For CORBA-style protocols, the operation name as sent on the
    /// wire (IIOP demultiplexes on a string; ONC on an integer).
    pub wire_name: String,
    /// True if the operation never sends a reply.
    pub oneway: bool,
}

/// Binds one slot of a message to one C-level location.
///
/// For a request message the slots are the `in`/`inout` parameters in
/// order; for a reply they are the return value (named `_return` by
/// convention) followed by `out`/`inout` parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamBinding {
    /// The C parameter (or `_return`) name.
    pub c_name: String,
    /// How the slot's data converts between message and C forms.
    pub pres: PresId,
    /// True when the stub receives/returns the value through a pointer
    /// (C out-parameters, struct parameters passed by address).
    pub by_ref: bool,
    /// False when the presentation never surfaces this slot in the
    /// generated C/Rust signature (padding-only fields, suppressed
    /// parameters).  The wire message still carries the slot; the
    /// `dead-slot` pass drops its marshal work.
    pub live: bool,
}

/// A message (request or reply) together with the presentation of each
/// of its slots.
#[derive(Clone, Debug, PartialEq)]
pub struct MessagePres {
    /// The whole-message MINT type.
    pub mint: MintId,
    /// Slot bindings in marshal order.
    pub slots: Vec<ParamBinding>,
}

/// One generated function: its exposed CAST declaration plus the MINT
/// and PRES structures a back end needs to implement it.
#[derive(Clone, Debug)]
pub struct Stub {
    /// Generated function name (e.g. `Mail_send`, `send_1`).
    pub name: String,
    /// Role of the function.
    pub kind: StubKind,
    /// The exposed C signature (body filled in by a back end).
    pub decl: CFunction,
    /// Request message and its slot presentations.
    pub request: MessagePres,
    /// Reply message and its slot presentations (void MINT for oneway).
    pub reply: MessagePres,
    /// Operation metadata.
    pub op: OpInfo,
}

impl Stub {
    /// True if this stub expects no reply message.
    #[must_use]
    pub fn is_oneway(&self) -> bool {
        self.op.oneway
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_cast::{CParam, CType};
    use flick_mint::MintGraph;

    #[test]
    fn stub_construction() {
        let mut mint = MintGraph::new();
        let req = mint.void();
        let rep = mint.void();
        let stub = Stub {
            name: "Mail_send".into(),
            kind: StubKind::ClientCall,
            decl: CFunction {
                name: "Mail_send".into(),
                ret: CType::Void,
                params: vec![CParam {
                    name: "obj".into(),
                    ty: CType::named("Mail"),
                }],
                body: None,
            },
            request: MessagePres {
                mint: req,
                slots: vec![],
            },
            reply: MessagePres {
                mint: rep,
                slots: vec![],
            },
            op: OpInfo {
                name: "send".into(),
                request_code: 1,
                wire_name: "send".into(),
                oneway: false,
            },
        };
        assert!(!stub.is_oneway());
        assert_eq!(stub.decl.params.len(), 1);
    }
}
