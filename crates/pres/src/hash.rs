//! Content addressing of stubs: a stable structural hash over
//! everything in a PRES-C presentation that feeds one stub's plan.
//!
//! The incremental backend memoizes per-stub lowering and optimization
//! keyed by `(stub_hash, encoding fingerprint, pipeline fingerprint)`.
//! For that key to be sound, [`stub_hash`] must cover every input the
//! lowerer reads for the stub — its operation metadata, each slot's
//! binding, the PRES conversion trees, the presented C types, and the
//! MINT message structure — and nothing that is merely incidental
//! (arena indices, declaration positions in sibling interfaces).  Two
//! presentations that assign different `PresId`/`MintId` numbers to
//! identical structures therefore produce the same digest, which is
//! exactly what lets an edited sibling interface leave this stub's
//! cache entry valid.
//!
//! PRES trees can be cyclic (ONC linked lists tie knots with
//! reserve/patch), so traversal carries an in-progress stack and hashes
//! a cycle as the re-entry depth — the same de Bruijn scheme
//! `flick_mint::subgraph_hash` uses.

use flick_mint::subgraph_hash_into;
use flick_stablehash::{StableHash, StableHasher};

use crate::node::{AllocSem, AllocStrategy, PresId, PresNode};
use crate::stub::{MessagePres, Stub, StubKind};
use crate::PresC;

/// Digest of everything `stub`'s plan depends on within `presc`.
#[must_use]
pub fn stub_hash(presc: &PresC, stub: &Stub) -> u64 {
    let mut h = StableHasher::new();
    stub.name.stable_hash(&mut h);
    h.write_tag(match stub.kind {
        StubKind::ClientCall => 0,
        StubKind::ServerDispatch => 1,
        StubKind::ServerWork => 2,
        StubKind::OnewaySend => 3,
    });
    stub.op.name.stable_hash(&mut h);
    h.write_u64(stub.op.request_code);
    stub.op.wire_name.stable_hash(&mut h);
    h.write_bool(stub.op.oneway);
    hash_message(presc, &stub.request, &mut h);
    hash_message(presc, &stub.reply, &mut h);
    h.finish()
}

fn hash_message(presc: &PresC, msg: &MessagePres, h: &mut StableHasher) {
    subgraph_hash_into(&presc.mint, msg.mint, h);
    h.write_u64(msg.slots.len() as u64);
    for slot in &msg.slots {
        slot.c_name.stable_hash(h);
        h.write_bool(slot.by_ref);
        h.write_bool(slot.live);
        let mut stack = Vec::new();
        hash_pres(presc, slot.pres, h, &mut stack);
    }
}

fn hash_alloc(alloc: &AllocSem, h: &mut StableHasher) {
    h.write_bool(alloc.may_use_stack);
    h.write_bool(alloc.may_use_buffer);
    h.write_tag(match alloc.fallback {
        AllocStrategy::Heap => 0,
        AllocStrategy::PresentationAllocator => 1,
    });
}

fn hash_pres(presc: &PresC, id: PresId, h: &mut StableHasher, stack: &mut Vec<PresId>) {
    if let Some(pos) = stack.iter().rposition(|&seen| seen == id) {
        // Recursive presentation: hash the re-entry depth, not the id.
        h.write_tag(10);
        h.write_u64((stack.len() - pos) as u64);
        return;
    }
    stack.push(id);
    match presc.pres.get(id) {
        PresNode::Void => h.write_tag(0),
        PresNode::Direct { mint, ctype } => {
            h.write_tag(1);
            subgraph_hash_into(&presc.mint, *mint, h);
            ctype.stable_hash(h);
        }
        PresNode::EnumMap { mint, ctype } => {
            h.write_tag(2);
            subgraph_hash_into(&presc.mint, *mint, h);
            ctype.stable_hash(h);
        }
        PresNode::FixedArray {
            mint,
            elem,
            len,
            ctype,
        } => {
            h.write_tag(3);
            subgraph_hash_into(&presc.mint, *mint, h);
            hash_pres(presc, *elem, h, stack);
            h.write_u64(*len);
            ctype.stable_hash(h);
        }
        PresNode::OptPtr {
            mint,
            elem,
            ctype,
            alloc,
        } => {
            h.write_tag(4);
            subgraph_hash_into(&presc.mint, *mint, h);
            hash_pres(presc, *elem, h, stack);
            ctype.stable_hash(h);
            hash_alloc(alloc, h);
        }
        PresNode::TerminatedString { mint, alloc } => {
            h.write_tag(5);
            subgraph_hash_into(&presc.mint, *mint, h);
            hash_alloc(alloc, h);
        }
        PresNode::CountedSeq {
            mint,
            elem,
            ctype,
            length_field,
            maximum_field,
            buffer_field,
            alloc,
        } => {
            h.write_tag(6);
            subgraph_hash_into(&presc.mint, *mint, h);
            hash_pres(presc, *elem, h, stack);
            ctype.stable_hash(h);
            length_field.stable_hash(h);
            maximum_field.stable_hash(h);
            buffer_field.stable_hash(h);
            hash_alloc(alloc, h);
        }
        PresNode::StructMap {
            mint,
            ctype,
            fields,
        } => {
            h.write_tag(7);
            subgraph_hash_into(&presc.mint, *mint, h);
            ctype.stable_hash(h);
            h.write_u64(fields.len() as u64);
            for (name, field) in fields {
                name.stable_hash(h);
                hash_pres(presc, *field, h, stack);
            }
        }
        PresNode::UnionMap {
            mint,
            ctype,
            discrim,
            discrim_field,
            cases,
            default,
        } => {
            h.write_tag(8);
            subgraph_hash_into(&presc.mint, *mint, h);
            ctype.stable_hash(h);
            hash_pres(presc, *discrim, h, stack);
            discrim_field.stable_hash(h);
            h.write_u64(cases.len() as u64);
            for (val, name, case) in cases {
                h.write_i64(*val);
                name.stable_hash(h);
                hash_pres(presc, *case, h, stack);
            }
            match default {
                None => h.write_tag(0),
                Some((name, node)) => {
                    h.write_tag(1);
                    name.stable_hash(h);
                    hash_pres(presc, *node, h, stack);
                }
            }
        }
        PresNode::OptionalPtr {
            mint,
            elem,
            ctype,
            alloc,
        } => {
            h.write_tag(9);
            subgraph_hash_into(&presc.mint, *mint, h);
            hash_pres(presc, *elem, h, stack);
            ctype.stable_hash(h);
            hash_alloc(alloc, h);
        }
    }
    stack.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PresTree;
    use crate::stub::{OpInfo, ParamBinding, Side};
    use flick_cast::{CFunction, CType, CUnit};
    use flick_mint::MintGraph;

    /// Builds a one-stub presentation; `padding` shifts every arena
    /// index without changing the stub's structure.
    fn sample(padding: usize, ctype: CType) -> PresC {
        let mut mint = MintGraph::new();
        let mut pres = PresTree::new();
        for i in 0..padding {
            let filler = mint.add(flick_mint::MintNode::integer_bits(false, 8));
            let _ = mint.array_fixed(filler, i as u64 + 1);
            let _ = pres.add(PresNode::Void);
        }
        let m = mint.i32();
        let req = mint.structure(vec![("x".into(), m)]);
        let rep = mint.void();
        let p = pres.add(PresNode::Direct {
            mint: m,
            ctype: ctype.clone(),
        });
        PresC {
            side: Side::Client,
            interface: "T".into(),
            program: 0,
            version: 0,
            mint,
            pres,
            cast: CUnit::new(),
            stubs: vec![Stub {
                name: "T_op".into(),
                kind: StubKind::ClientCall,
                decl: CFunction {
                    name: "T_op".into(),
                    ret: CType::Void,
                    params: vec![],
                    body: None,
                },
                request: MessagePres {
                    mint: req,
                    slots: vec![ParamBinding {
                        c_name: "x".into(),
                        pres: p,
                        by_ref: false,
                        live: true,
                    }],
                },
                reply: MessagePres {
                    mint: rep,
                    slots: vec![],
                },
                op: OpInfo {
                    name: "op".into(),
                    request_code: 1,
                    wire_name: "op".into(),
                    oneway: false,
                },
            }],
            style: "test".into(),
        }
    }

    #[test]
    fn hash_is_position_independent() {
        let a = sample(0, CType::Int);
        let b = sample(7, CType::Int);
        assert_eq!(
            stub_hash(&a, &a.stubs[0]),
            stub_hash(&b, &b.stubs[0]),
            "arena padding must not change the content hash"
        );
    }

    #[test]
    fn hash_sees_presented_type_changes() {
        let a = sample(0, CType::Int);
        let b = sample(0, CType::Long);
        assert_ne!(stub_hash(&a, &a.stubs[0]), stub_hash(&b, &b.stubs[0]));
    }
}
