//! Textual rendering of a PRES-C presentation — the equivalent of the
//! paper's `.prc` files, which carried presentations between the
//! generator and the back end.  Useful for debugging a presentation
//! and for golden tests over the generator's output.

use std::fmt::Write as _;

use flick_mint::MintNode;

use crate::node::{PresId, PresNode};
use crate::stub::Side;
use crate::PresC;

/// Renders `presc` in a stable textual form.
#[must_use]
pub fn print(presc: &PresC) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "presentation {} (style {}, side {})",
        presc.interface,
        presc.style,
        match presc.side {
            Side::Client => "client",
            Side::Server => "server",
        }
    );
    if presc.program != 0 {
        let _ = writeln!(
            out,
            "program 0x{:x} version {}",
            presc.program, presc.version
        );
    }
    for stub in &presc.stubs {
        let _ = writeln!(
            out,
            "stub {} [{}#{}{}]",
            stub.name,
            stub.op.wire_name,
            stub.op.request_code,
            if stub.op.oneway { ", oneway" } else { "" }
        );
        let sig = flick_cast::printer::declarator(&stub.decl.ret, &stub.decl.name);
        let params: Vec<String> = stub
            .decl
            .params
            .iter()
            .map(|p| flick_cast::printer::declarator(&p.ty, &p.name))
            .collect();
        let _ = writeln!(out, "  cast: {sig}({})", params.join(", "));
        let _ = writeln!(out, "  request: {}", mint_str(presc, stub.request.mint, 0));
        for slot in &stub.request.slots {
            let _ = writeln!(
                out,
                "    slot {}{}: {}",
                slot.c_name,
                if slot.by_ref { " (by ref)" } else { "" },
                pres_str(presc, slot.pres, 0)
            );
        }
        if !stub.op.oneway {
            let _ = writeln!(out, "  reply: {}", mint_str(presc, stub.reply.mint, 0));
            for slot in &stub.reply.slots {
                let _ = writeln!(
                    out,
                    "    slot {}: {}",
                    slot.c_name,
                    pres_str(presc, slot.pres, 0)
                );
            }
        }
    }
    out
}

/// Renders a MINT subtree compactly (depth-limited; cycles elided).
fn mint_str(presc: &PresC, id: flick_mint::MintId, depth: usize) -> String {
    if depth > 4 {
        return "…".to_string();
    }
    match presc.mint.get(id) {
        MintNode::Void => "void".into(),
        MintNode::Integer { min, range } => {
            // Recover the conventional name from the range.
            match (*min, *range) {
                (0, r) if r == u64::from(u8::MAX) => "u8".into(),
                (0, r) if r == u64::from(u16::MAX) => "u16".into(),
                (0, r) if r == u64::from(u32::MAX) => "u32".into(),
                (0, _) => "u64".into(),
                (m, r) if m == i64::from(i16::MIN) && r == u64::from(u16::MAX) => "i16".into(),
                (m, r) if m == i64::from(i32::MIN) && r == u64::from(u32::MAX) => "i32".into(),
                (m, _) if m == i64::from(i8::MIN) => "i8".into(),
                _ => "i64".into(),
            }
        }
        MintNode::Scalar(k) => format!("{k:?}").to_lowercase(),
        MintNode::Array { elem, len } => {
            let e = mint_str(presc, *elem, depth + 1);
            match len.fixed_len() {
                Some(n) => format!("{e}[{n}]"),
                None => match len.max {
                    Some(b) => format!("{e}<{b}>"),
                    None => format!("{e}<>"),
                },
            }
        }
        MintNode::Struct { slots } => {
            let body: Vec<String> = slots
                .iter()
                .map(|(n, t)| format!("{n}: {}", mint_str(presc, *t, depth + 1)))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
        MintNode::Union { cases, .. } => format!("union/{}", cases.len()),
        MintNode::Const { value, .. } => format!("const {value:?}"),
    }
}

/// Renders a PRES subtree compactly.
fn pres_str(presc: &PresC, id: PresId, depth: usize) -> String {
    if depth > 4 {
        return "…".to_string();
    }
    match presc.pres.get(id) {
        PresNode::Void => "void".into(),
        PresNode::Direct { ctype, .. } => {
            format!("direct({})", flick_cast::printer::declarator(ctype, ""))
        }
        PresNode::EnumMap { ctype, .. } => {
            format!("enum({})", flick_cast::printer::declarator(ctype, ""))
        }
        PresNode::FixedArray { elem, len, .. } => {
            format!("array[{len}] of {}", pres_str(presc, *elem, depth + 1))
        }
        PresNode::OptPtr { elem, .. } => {
            format!("opt_ptr -> {}", pres_str(presc, *elem, depth + 1))
        }
        PresNode::TerminatedString { .. } => "string (NUL-terminated char *)".into(),
        PresNode::CountedSeq {
            elem,
            length_field,
            buffer_field,
            ..
        } => format!(
            "counted_seq({length_field}/{buffer_field}) of {}",
            pres_str(presc, *elem, depth + 1)
        ),
        PresNode::StructMap { ctype, fields, .. } => {
            let body: Vec<String> = fields
                .iter()
                .map(|(n, f)| format!("{n}: {}", pres_str(presc, *f, depth + 1)))
                .collect();
            format!(
                "struct {} {{{}}}",
                flick_cast::printer::declarator(ctype, ""),
                body.join(", ")
            )
        }
        PresNode::UnionMap { cases, .. } => format!("union_map/{}", cases.len()),
        PresNode::OptionalPtr { elem, .. } => {
            format!("optional_ptr -> {}", pres_str(presc, *elem, depth + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PresTree;
    use crate::stub::{MessagePres, OpInfo, ParamBinding, Stub, StubKind};
    use flick_cast::{CFunction, CParam, CType, CUnit};
    use flick_mint::MintGraph;

    #[test]
    fn prints_a_mail_like_presentation() {
        let mut mint = MintGraph::new();
        let chars = mint.string(None);
        let u32m = mint.u32();
        let opc = mint.constant(u32m, flick_mint::ConstVal::Unsigned(1));
        let req = mint.structure(vec![("_op".into(), opc), ("msg".into(), chars)]);
        let rep = mint.structure(vec![]);
        let mut pres = PresTree::new();
        let slot = pres.add(PresNode::TerminatedString {
            mint: chars,
            alloc: crate::AllocSem::heap_only(),
        });
        let presc = PresC {
            side: Side::Client,
            interface: "Mail".into(),
            program: 0x2000_0001,
            version: 1,
            mint,
            pres,
            cast: CUnit::new(),
            stubs: vec![Stub {
                name: "Mail_send".into(),
                kind: StubKind::ClientCall,
                decl: CFunction {
                    name: "Mail_send".into(),
                    ret: CType::Void,
                    params: vec![CParam {
                        name: "msg".into(),
                        ty: CType::ptr(CType::Char),
                    }],
                    body: None,
                },
                request: MessagePres {
                    mint: req,
                    slots: vec![ParamBinding {
                        c_name: "msg".into(),
                        pres: slot,
                        by_ref: false,
                        live: true,
                    }],
                },
                reply: MessagePres {
                    mint: rep,
                    slots: vec![],
                },
                op: OpInfo {
                    name: "send".into(),
                    request_code: 1,
                    wire_name: "send".into(),
                    oneway: false,
                },
            }],
            style: "corba-c".into(),
        };
        let p = print(&presc);
        assert!(
            p.contains("presentation Mail (style corba-c, side client)"),
            "{p}"
        );
        assert!(p.contains("program 0x20000001 version 1"), "{p}");
        assert!(p.contains("stub Mail_send [send#1]"), "{p}");
        assert!(p.contains("cast: void Mail_send(char *msg)"), "{p}");
        assert!(p.contains("{_op: const Unsigned(1), msg: char8<>}"), "{p}");
        assert!(
            p.contains("slot msg: string (NUL-terminated char *)"),
            "{p}"
        );
    }
}
