//! Generated C is a complete, compilable translation unit: every
//! interface in the test set passes `cc -fsyntax-only` against the
//! shipped `flick_runtime.h`.  Skipped when no C compiler is present.

use std::io::Write as _;
use std::process::Command;

use flick_backend::{BackEnd, Transport, C_RUNTIME_HEADER};
use flick_idl::diag::Diagnostics;
use flick_pres::Side;

fn cc() -> Option<&'static str> {
    ["cc", "gcc", "clang"]
        .into_iter()
        .find(|cand| Command::new(cand).arg("--version").output().is_ok())
}

fn check_compiles(c_source: &str, tag: &str) {
    let Some(cc) = cc() else {
        eprintln!("no C compiler; skipping");
        return;
    };
    let dir = std::env::temp_dir().join(format!("flick-c-check-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    std::fs::write(dir.join("flick_runtime.h"), C_RUNTIME_HEADER).expect("header");
    let c_path = dir.join("stubs.c");
    std::fs::write(&c_path, c_source).expect("source");
    let out = Command::new(cc)
        .args(["-std=c99", "-fsyntax-only", "-Wall", "-Wno-unused-function"])
        .arg("-I")
        .arg(&dir)
        .arg(&c_path)
        .output()
        .expect("cc runs");
    if !out.status.success() {
        let mut stderr = std::io::stderr();
        let _ = stderr.write_all(&out.stderr);
        panic!("generated C for `{tag}` failed to compile:\n{c_source}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn c_for(idl: &str, iface: &str, t: Transport, tag: &str) {
    let aoi = flick_frontend_corba::parse_str("t.idl", idl);
    for side in [Side::Client, Side::Server] {
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, iface, side, &mut d).expect("presentation");
        let out = BackEnd::new(t).compile(&p).expect("backend");
        check_compiles(&out.c_source, tag);
    }
}

#[test]
fn mail_c_compiles() {
    c_for(
        "interface Mail { void send(in string msg); };",
        "Mail",
        Transport::IiopTcp,
        "mail",
    );
}

#[test]
fn bench_c_compiles_on_both_onc_and_iiop() {
    let idl = include_str!("../../../testdata/bench.idl");
    c_for(idl, "Bench", Transport::OncTcp, "bench-onc");
    c_for(idl, "Bench", Transport::IiopTcp, "bench-iiop");
}

#[test]
fn returns_and_out_params_compile() {
    c_for(
        r"
        struct P { long a; long b; };
        interface Calc {
            long add(in long a, in long b);
            P make(in long a);
            void fetch(in long k, out long v);
        };
        ",
        "Calc",
        Transport::OncTcp,
        "calc",
    );
}

#[test]
fn unions_enums_compile() {
    c_for(
        r"
        enum Kind { K_A, K_B };
        union U switch (long) {
            case 0: long a;
            case 1: double b;
            default: octet raw;
        };
        interface I { void put(in U u, in Kind k); };
        ",
        "I",
        Transport::IiopTcp,
        "union",
    );
}
