//! The marshal plan: the IR on which Flick's optimizations run.
//!
//! Planning turns each stub's PRES trees into [`PlanNode`] trees whose
//! *shape records the optimization decisions*:
//!
//! * a fixed-layout region that packs becomes one [`PlanNode::Packed`]
//!   chunk (§3.2 chunking — constant-offset accesses, one space
//!   decision);
//! * an atomic array whose wire and memory layouts coincide becomes a
//!   [`PlanNode::MemcpyArray`] (§3.2 data copying);
//! * whole-message and per-region space requirements are classified
//!   (§3.1) so emitters hoist their buffer checks;
//! * recursion — and, when inlining is disabled, every named aggregate
//!   — is routed through an out-of-line function ([`PlanNode::Outline`],
//!   §3.3).
//!
//! Emitters walk these trees twice per stub, once in the encode
//! direction and once in decode.

use std::collections::BTreeMap;

use flick_mint::MintNode;
use flick_pres::{OpInfo, PresC, PresId, PresNode, StubKind};

use crate::encoding::{Encoding, StringWire, WirePrim};
use crate::layout::{pack, size_class, Packed, SizeClass};
use crate::opts::OptFlags;

/// A planned conversion for one value.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    /// Nothing to marshal.
    Void,
    /// A single scalar.
    Prim {
        /// Wire form.
        prim: WirePrim,
        /// Mach-style descriptor to emit first, if the encoding is typed.
        descriptor: Option<u32>,
    },
    /// An enum, wire-encoded as u32.
    Enum {
        /// Wire form of the discriminating integer.
        prim: WirePrim,
    },
    /// A packed fixed-layout region accessed through a chunk pointer.
    Packed {
        /// The computed layout.
        layout: Packed,
        /// Name of the presented aggregate type (for emitters).
        type_name: Option<String>,
        /// The PRES node the layout was packed from (emitters walk it
        /// to reconstruct values on the decode side).
        pres: flick_pres::PresId,
    },
    /// A counted array of layout-identical scalars: block copy.
    MemcpyArray {
        /// Element wire form.
        prim: WirePrim,
        /// Static element count for fixed arrays; `None` for counted.
        fixed_len: Option<u64>,
        /// Declared bound for counted arrays.
        bound: Option<u64>,
        /// Whether a count prefix travels before the data.
        counted: bool,
        /// Trailing padding unit, if the encoding pads.
        pad_unit: Option<u8>,
        /// Mach-style descriptor name, if the encoding is typed.
        descriptor: Option<u8>,
    },
    /// A string (counted char data).
    String {
        /// Declared bound, if any.
        bound: Option<u64>,
        /// Wire convention.
        style: StringWire,
        /// Padding unit, if any.
        pad_unit: Option<u8>,
        /// Whether the receive side may borrow from the buffer (§3.1
        /// parameter management; set only for server `in` data with
        /// `param_mgmt` on).
        borrow_ok: bool,
        /// Mach-style descriptor name, if the encoding is typed.
        descriptor: Option<u8>,
    },
    /// A counted array marshaled element by element.
    CountedArray {
        /// Declared bound, if any.
        bound: Option<u64>,
        /// Per-element plan.
        elem: Box<PlanNode>,
        /// Size class of one element (drives check hoisting: a fixed
        /// element lets the emitter `ensure(count * size)` once).
        elem_class: SizeClass,
        /// Rust/C element type name.
        elem_type: String,
        /// Presented sequence type name.
        type_name: String,
        /// Field names of the counted representation (C emission).
        fields: (String, String, String),
    },
    /// A fixed array marshaled element by element (used when the
    /// element is variable-size, or when chunking is disabled).
    FixedArray {
        /// Element count.
        len: u64,
        /// Per-element plan.
        elem: Box<PlanNode>,
        /// Element type name.
        elem_type: String,
    },
    /// A struct marshaled member by member (variable-size members, or
    /// chunking disabled).
    Struct {
        /// Presented type name.
        type_name: String,
        /// `(member name, plan)` in order.
        fields: Vec<(String, PlanNode)>,
    },
    /// A discriminated union.
    Union {
        /// Presented type name.
        type_name: String,
        /// Discriminator wire form.
        disc_prim: WirePrim,
        /// `(label, member name, plan)` arms.
        cases: Vec<(i64, String, PlanNode)>,
        /// Default arm.
        default: Option<(String, Box<PlanNode>)>,
    },
    /// ONC optional data: a presence flag then the value.
    Optional {
        /// Pointee plan.
        elem: Box<PlanNode>,
        /// Pointee type name.
        elem_type: String,
    },
    /// Marshal via an out-of-line function (recursion, or inlining
    /// disabled).
    Outline {
        /// Key into [`StubPlans::outlines`].
        key: String,
    },
}

/// Plan for one message direction of one stub.
#[derive(Clone, Debug)]
pub struct MsgPlan {
    /// Whole-message size class (§3.1) — includes the operation
    /// discriminator and every slot, excludes transport headers.
    pub class: SizeClass,
    /// Per-slot plans, in marshal order.
    pub slots: Vec<SlotPlan>,
}

/// Plan for one bound value of a message.
#[derive(Clone, Debug)]
pub struct SlotPlan {
    /// The C/Rust-level name the slot binds to.
    pub name: String,
    /// Whether the C stub receives it through a pointer.
    pub by_ref: bool,
    /// The conversion tree.
    pub node: PlanNode,
}

/// The full plan for one stub.
#[derive(Clone, Debug)]
pub struct StubPlan {
    /// Stub (function) name.
    pub name: String,
    /// Stub role.
    pub kind: StubKind,
    /// Operation metadata (request code, wire name, oneway).
    pub op: OpInfo,
    /// Request-direction plan.
    pub request: MsgPlan,
    /// Reply-direction plan.
    pub reply: MsgPlan,
}

/// Plans for every stub of a presentation, plus shared out-of-line
/// marshal functions.
#[derive(Clone, Debug)]
pub struct StubPlans {
    /// Per-stub plans in presentation order.
    pub stubs: Vec<StubPlan>,
    /// Out-of-line marshal bodies by key (type name).
    pub outlines: BTreeMap<String, PlanNode>,
}

/// Optimizer decision counts for one presentation's plans — the §3
/// choices, tallied so `flickc --stats` can show what the optimizer
/// actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Stubs planned.
    pub stubs: u64,
    /// Total plan nodes across all stubs and outlines.
    pub plan_nodes: u64,
    /// Fixed-layout regions turned into chunks (§3.2 chunking).
    pub packed_chunks: u64,
    /// Scalar runs turned into block copies (§3.2 data copying).
    pub memcpy_runs: u64,
    /// `Outline` call sites (recursion, or inlining disabled).
    pub outline_calls: u64,
    /// Distinct out-of-line marshal bodies.
    pub outline_fns: u64,
    /// Messages whose space check hoists to one `ensure` (§3.1 —
    /// whole-message size class is fixed or bounded).
    pub hoisted_checks: u64,
    /// Deepest inlined aggregate nesting in any plan tree.
    pub max_inline_depth: u64,
}

impl PlanStats {
    /// Tallies the decisions recorded in `plans`.
    #[must_use]
    pub fn of(plans: &StubPlans) -> PlanStats {
        let mut s = PlanStats {
            stubs: plans.stubs.len() as u64,
            ..PlanStats::default()
        };
        s.outline_fns = plans.outlines.len() as u64;
        for stub in &plans.stubs {
            for msg in [&stub.request, &stub.reply] {
                if !matches!(msg.class, SizeClass::Unbounded) {
                    s.hoisted_checks += 1;
                }
                for slot in &msg.slots {
                    s.walk(&slot.node, 0);
                }
            }
        }
        for body in plans.outlines.values() {
            s.walk(body, 0);
        }
        s
    }

    fn walk(&mut self, node: &PlanNode, depth: u64) {
        self.plan_nodes += 1;
        self.max_inline_depth = self.max_inline_depth.max(depth);
        match node {
            PlanNode::Packed { .. } => self.packed_chunks += 1,
            PlanNode::MemcpyArray { .. } => self.memcpy_runs += 1,
            PlanNode::Outline { .. } => self.outline_calls += 1,
            PlanNode::Struct { fields, .. } => {
                for (_, f) in fields {
                    self.walk(f, depth + 1);
                }
            }
            PlanNode::Union { cases, default, .. } => {
                for (_, _, c) in cases {
                    self.walk(c, depth + 1);
                }
                if let Some((_, d)) = default {
                    self.walk(d, depth + 1);
                }
            }
            PlanNode::CountedArray { elem, .. }
            | PlanNode::FixedArray { elem, .. }
            | PlanNode::Optional { elem, .. } => self.walk(elem, depth + 1),
            _ => {}
        }
    }
}

pub(crate) type PlanResult<T> = Result<T, String>;

struct Planner<'a> {
    presc: &'a PresC,
    enc: &'a Encoding,
    opts: &'a OptFlags,
    outlines: BTreeMap<String, PlanNode>,
    in_progress: Vec<(PresId, String)>,
}

/// Builds plans for every stub in `presc`.
///
/// # Errors
/// Returns a message if the presentation contains a conversion this
/// planner cannot lower.
pub fn plan_presc(presc: &PresC, enc: &Encoding, opts: &OptFlags) -> PlanResult<Vec<StubPlan>> {
    Ok(plan_presc_full(presc, enc, opts)?.stubs)
}

/// Like [`plan_presc`] but also returns shared outline bodies.
///
/// # Errors
/// Returns a message if the presentation contains a conversion this
/// planner cannot lower.
pub fn plan_presc_full(presc: &PresC, enc: &Encoding, opts: &OptFlags) -> PlanResult<StubPlans> {
    let mut planner = Planner {
        presc,
        enc,
        opts,
        outlines: BTreeMap::new(),
        in_progress: Vec::new(),
    };
    let mut stubs = Vec::new();
    for stub in &presc.stubs {
        let request = planner.plan_message(&stub.request)?;
        let reply = planner.plan_message(&stub.reply)?;
        stubs.push(StubPlan {
            name: stub.name.clone(),
            kind: stub.kind,
            op: stub.op.clone(),
            request,
            reply,
        });
    }
    Ok(StubPlans {
        stubs,
        outlines: planner.outlines,
    })
}

impl<'a> Planner<'a> {
    fn plan_message(&mut self, msg: &flick_pres::MessagePres) -> PlanResult<MsgPlan> {
        let mut class = SizeClass::Fixed(u64::from(self.enc.len_prefix().slot)); // op discriminator
        let mut slots = Vec::new();
        for slot in &msg.slots {
            class = class.then(size_class(self.presc, self.enc, slot.pres));
            slots.push(SlotPlan {
                name: slot.c_name.clone(),
                by_ref: slot.by_ref,
                node: self.plan_node(slot.pres)?,
            });
        }
        Ok(MsgPlan { class, slots })
    }

    fn type_name_of(&self, pres: PresId) -> Option<String> {
        match self.presc.pres.get(pres).ctype() {
            Some(flick_cast::CType::Named(n)) => Some(n.clone()),
            _ => None,
        }
    }

    fn plan_node(&mut self, pres: PresId) -> PlanResult<PlanNode> {
        // Recursion check: a pres node already being planned must go
        // out of line regardless of the inlining flag.
        if let Some((_, key)) = self.in_progress.iter().find(|(p, _)| *p == pres) {
            let key = key.clone();
            return Ok(PlanNode::Outline { key });
        }

        let node = self.presc.pres.get(pres).clone();

        // Named aggregates go out of line when inlining is disabled —
        // the call-per-datum shape of traditional IDL compilers.
        let outline_key = match &node {
            PresNode::StructMap { .. }
            | PresNode::UnionMap { .. }
            | PresNode::OptionalPtr { .. } => self.type_name_of(pres),
            _ => None,
        };
        let force_outline = !self.opts.inline_marshal && outline_key.is_some();
        let is_recursive_candidate = matches!(
            node,
            PresNode::StructMap { .. } | PresNode::UnionMap { .. } | PresNode::OptionalPtr { .. }
        );

        if is_recursive_candidate {
            let key = outline_key
                .clone()
                .unwrap_or_else(|| format!("anon_{}", pres.index()));
            self.in_progress.push((pres, key));
        }
        let planned = self.plan_node_inner(&node, pres);
        let popped = if is_recursive_candidate {
            self.in_progress.pop()
        } else {
            None
        };
        let planned = planned?;

        // If anything inside referenced us as an outline, or inlining
        // is off, register the body and return a call.
        let key = popped.map(|(_, k)| k);
        if let Some(key) = key {
            let was_referenced = plan_references_outline(&planned, &key);
            if force_outline || was_referenced {
                self.outlines.insert(key.clone(), planned);
                return Ok(PlanNode::Outline { key });
            }
        }
        Ok(planned)
    }

    fn plan_node_inner(&mut self, node: &PresNode, pres: PresId) -> PlanResult<PlanNode> {
        Ok(match node {
            PresNode::Void => PlanNode::Void,
            PresNode::Direct { mint, .. } => PlanNode::Prim {
                prim: self.enc.prim(&self.presc.mint, *mint),
                descriptor: None,
            },
            PresNode::EnumMap { .. } => PlanNode::Enum {
                prim: self.enc.prim_for_size(4, false),
            },
            PresNode::StructMap { .. } | PresNode::FixedArray { .. }
                if self.opts.chunking && pack(self.presc, self.enc, pres).is_some() =>
            {
                let layout = pack(self.presc, self.enc, pres).expect("checked above");
                PlanNode::Packed {
                    layout,
                    type_name: self.type_name_of(pres),
                    pres,
                }
            }
            PresNode::StructMap { fields, .. } => {
                let mut fs = Vec::new();
                for (name, f) in fields {
                    fs.push((name.clone(), self.plan_node(*f)?));
                }
                PlanNode::Struct {
                    type_name: self
                        .type_name_of(pres)
                        .unwrap_or_else(|| format!("anon_{}", pres.index())),
                    fields: fs,
                }
            }
            PresNode::FixedArray { elem, len, .. } => {
                // Chunking off or variable elements: try a memcpy run
                // for scalar elements first.
                if let PresNode::Direct { mint, .. } = self.presc.pres.get(*elem) {
                    let prim = self.enc.elem_prim(&self.presc.mint, *mint);
                    if self.opts.memcpy && prim.memcpy_compatible(prim.size) {
                        return Ok(PlanNode::MemcpyArray {
                            prim,
                            fixed_len: Some(*len),
                            bound: None,
                            counted: false,
                            pad_unit: self.enc.pad_unit,
                            descriptor: self.descriptor_for(prim),
                        });
                    }
                }
                PlanNode::FixedArray {
                    len: *len,
                    elem: Box::new(self.plan_node(*elem)?),
                    elem_type: self.elem_type_name(*elem),
                }
            }
            PresNode::TerminatedString { mint, alloc, .. } => {
                let bound = match self.presc.mint.get(*mint) {
                    MintNode::Array { len, .. } => len.max,
                    _ => None,
                };
                PlanNode::String {
                    bound,
                    style: self.enc.string_wire,
                    pad_unit: self.enc.pad_unit,
                    borrow_ok: self.opts.param_mgmt && alloc.may_use_buffer,
                    descriptor: if self.enc.typed_descriptors {
                        Some(8)
                    } else {
                        None
                    },
                }
            }
            PresNode::OptPtr { mint, elem, .. } | PresNode::CountedSeq { mint, elem, .. } => {
                let bound = match self.presc.mint.get(*mint) {
                    MintNode::Array { len, .. } => len.max,
                    _ => None,
                };
                // memcpy run for layout-identical scalar elements.
                if let PresNode::Direct { mint: em, .. } = self.presc.pres.get(*elem) {
                    let prim = self.enc.elem_prim(&self.presc.mint, *em);
                    if self.opts.memcpy && prim.memcpy_compatible(prim.size) {
                        return Ok(PlanNode::MemcpyArray {
                            prim,
                            fixed_len: None,
                            bound,
                            counted: true,
                            pad_unit: self.enc.pad_unit,
                            descriptor: self.descriptor_for(prim),
                        });
                    }
                }
                let elem_class = size_class(self.presc, self.enc, *elem);
                let (fields, type_name) = match node {
                    PresNode::CountedSeq {
                        length_field,
                        maximum_field,
                        buffer_field,
                        ctype,
                        ..
                    } => (
                        (
                            length_field.clone(),
                            maximum_field.clone(),
                            buffer_field.clone(),
                        ),
                        match ctype {
                            flick_cast::CType::Named(n) => n.clone(),
                            _ => format!("seq_{}", pres.index()),
                        },
                    ),
                    _ => (
                        ("_length".into(), "_maximum".into(), "_buffer".into()),
                        format!("seq_{}", pres.index()),
                    ),
                };
                PlanNode::CountedArray {
                    bound,
                    elem: Box::new(self.plan_node(*elem)?),
                    elem_class,
                    elem_type: self.elem_type_name(*elem),
                    type_name,
                    fields,
                }
            }
            PresNode::UnionMap {
                discrim,
                cases,
                default,
                ..
            } => {
                let disc_prim = match self.presc.pres.get(*discrim) {
                    PresNode::Direct { mint, .. } => self.enc.prim(&self.presc.mint, *mint),
                    PresNode::EnumMap { .. } => self.enc.prim_for_size(4, false),
                    other => return Err(format!("unsupported union discriminator {other:?}")),
                };
                let mut arms = Vec::new();
                for (v, name, c) in cases {
                    arms.push((*v, name.clone(), self.plan_node(*c)?));
                }
                let default = match default {
                    Some((name, d)) => Some((name.clone(), Box::new(self.plan_node(*d)?))),
                    None => None,
                };
                PlanNode::Union {
                    type_name: self
                        .type_name_of(pres)
                        .unwrap_or_else(|| format!("anon_{}", pres.index())),
                    disc_prim,
                    cases: arms,
                    default,
                }
            }
            PresNode::OptionalPtr { elem, .. } => PlanNode::Optional {
                elem: Box::new(self.plan_node(*elem)?),
                elem_type: self.elem_type_name(*elem),
            },
        })
    }

    fn descriptor_for(&self, prim: WirePrim) -> Option<u8> {
        if !self.enc.typed_descriptors {
            return None;
        }
        Some(match (prim.size, prim.signed) {
            (1, _) => 9,    // BYTE
            (4, true) => 2, // INTEGER_32
            (4, false) => 2,
            (8, _) => 11, // INTEGER_64
            (2, _) => 2,
            _ => 9,
        })
    }

    fn elem_type_name(&self, elem: PresId) -> String {
        match self.presc.pres.get(elem).ctype() {
            Some(flick_cast::CType::Named(n)) => n.clone(),
            Some(c) => rust_prim_name(c).to_string(),
            None => "u8".to_string(),
        }
    }
}

/// True if `plan` contains an `Outline` referencing `key` (detects
/// recursive self-references that force the out-of-line form).
fn plan_references_outline(plan: &PlanNode, key: &str) -> bool {
    match plan {
        PlanNode::Outline { key: k } => k == key,
        PlanNode::Struct { fields, .. } => {
            fields.iter().any(|(_, f)| plan_references_outline(f, key))
        }
        PlanNode::Union { cases, default, .. } => {
            cases
                .iter()
                .any(|(_, _, c)| plan_references_outline(c, key))
                || default
                    .as_ref()
                    .is_some_and(|(_, d)| plan_references_outline(d, key))
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => plan_references_outline(elem, key),
        _ => false,
    }
}

/// The Rust spelling of a presented scalar C type (shared between the
/// planner and the Rust emitter).
#[must_use]
pub fn rust_prim_name(c: &flick_cast::CType) -> &'static str {
    use flick_cast::CType;
    match c {
        CType::Char => "u8",
        CType::SChar => "i8",
        CType::UChar => "u8",
        CType::Short => "i16",
        CType::UShort => "u16",
        CType::Int => "i32",
        CType::UInt => "u32",
        CType::Long => "i64",
        CType::ULong => "u64",
        CType::LongLong => "i64",
        CType::ULongLong => "u64",
        CType::Float => "f32",
        CType::Double => "f64",
        _ => "u8",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn plan_for(idl: &str, iface: &str, enc: &Encoding, opts: &OptFlags) -> Vec<StubPlan> {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation");
        plan_presc(&p, enc, opts).expect("plan")
    }

    const RECTS_IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); };
    ";

    #[test]
    fn rect_sequence_plans_as_loop_of_chunks() {
        let plans = plan_for(RECTS_IDL, "I", &Encoding::xdr(), &OptFlags::all());
        let slot = &plans[0].request.slots[0];
        let PlanNode::CountedArray {
            elem, elem_class, ..
        } = &slot.node
        else {
            panic!("expected counted array, got {:?}", slot.node);
        };
        assert_eq!(*elem_class, SizeClass::Fixed(16));
        assert!(
            matches!(**elem, PlanNode::Packed { ref layout, .. } if layout.size == 16),
            "rect element packs into a 16-byte chunk: {elem:?}"
        );
    }

    #[test]
    fn chunking_off_yields_per_datum_structs() {
        let mut opts = OptFlags::all();
        opts.chunking = false;
        let plans = plan_for(RECTS_IDL, "I", &Encoding::xdr(), &opts);
        let PlanNode::CountedArray { elem, .. } = &plans[0].request.slots[0].node else {
            panic!("counted array");
        };
        assert!(matches!(**elem, PlanNode::Struct { .. }), "{elem:?}");
    }

    #[test]
    fn int_array_memcpy_depends_on_order() {
        let idl = "typedef sequence<long> Ints; interface I { void put(in Ints v); };";
        // Native-order CDR: memcpy run.
        let plans = plan_for(idl, "I", &Encoding::cdr_native(), &OptFlags::all());
        assert!(
            matches!(plans[0].request.slots[0].node, PlanNode::MemcpyArray { .. }),
            "{:?}",
            plans[0].request.slots[0].node
        );
        // Foreign-order CDR on this host: element loop instead.
        let foreign = if cfg!(target_endian = "little") {
            Encoding::cdr_be()
        } else {
            Encoding::cdr_le()
        };
        let plans = plan_for(idl, "I", &foreign, &OptFlags::all());
        assert!(matches!(
            plans[0].request.slots[0].node,
            PlanNode::CountedArray { .. }
        ));
        // memcpy disabled: element loop even in native order.
        let mut opts = OptFlags::all();
        opts.memcpy = false;
        let plans = plan_for(idl, "I", &Encoding::cdr_native(), &opts);
        assert!(matches!(
            plans[0].request.slots[0].node,
            PlanNode::CountedArray { .. }
        ));
    }

    #[test]
    fn octet_arrays_always_memcpy() {
        // Byte-wide elements block-copy under any byte order (CDR keeps
        // them packed; XDR pads only at the end of the run).
        let idl = "typedef sequence<octet> Blob; interface I { void put(in Blob b); };";
        for enc in [Encoding::xdr(), Encoding::cdr_be(), Encoding::cdr_le()] {
            let plans = plan_for(idl, "I", &enc, &OptFlags::all());
            assert!(
                matches!(plans[0].request.slots[0].node, PlanNode::MemcpyArray { .. }),
                "{} should memcpy bytes",
                enc.name
            );
        }
    }

    #[test]
    fn string_plan_styles() {
        let idl = "interface I { void put(in string s); };";
        let plans = plan_for(idl, "I", &Encoding::xdr(), &OptFlags::all());
        let PlanNode::String {
            style, pad_unit, ..
        } = &plans[0].request.slots[0].node
        else {
            panic!("string plan");
        };
        assert_eq!(*style, StringWire::CountedPadded);
        assert_eq!(*pad_unit, Some(4));
        let plans = plan_for(idl, "I", &Encoding::cdr_be(), &OptFlags::all());
        let PlanNode::String { style, .. } = &plans[0].request.slots[0].node else {
            panic!("string plan");
        };
        assert_eq!(*style, StringWire::CountedNul);
    }

    #[test]
    fn message_class_covers_discriminator_and_slots() {
        let idl = "struct P { long a; long b; }; interface I { void put(in P p); };";
        let plans = plan_for(idl, "I", &Encoding::xdr(), &OptFlags::all());
        // 4 (op code) + 8 (two longs) = 12 fixed bytes.
        assert_eq!(plans[0].request.class, SizeClass::Fixed(12));
        // Reply: just the status-free empty body.
        assert_eq!(plans[0].reply.class, SizeClass::Fixed(4));
    }

    #[test]
    fn inlining_off_outlines_named_structs() {
        let aoi = flick_frontend_corba::parse_str("t.idl", RECTS_IDL);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, "I", Side::Client, &mut d).unwrap();
        let mut opts = OptFlags::all();
        opts.inline_marshal = false;
        opts.chunking = false; // the traditional call-per-aggregate shape
        let full = plan_presc_full(&p, &Encoding::xdr(), &opts).unwrap();
        let PlanNode::CountedArray { elem, .. } = &full.stubs[0].request.slots[0].node else {
            panic!("counted array");
        };
        assert!(
            matches!(**elem, PlanNode::Outline { ref key } if key == "Rect"),
            "{elem:?}"
        );
        assert!(full.outlines.contains_key("Rect"));
        assert!(
            full.outlines.contains_key("Point"),
            "nested aggregate outlined too"
        );
    }

    #[test]
    fn recursion_always_outlines() {
        let aoi = flick_frontend_onc::parse_str(
            "l.x",
            r"
            struct node { int v; node *next; };
            program L { version V { void put(node n) = 1; } = 1; } = 9;
            ",
        );
        let mut d = Diagnostics::new();
        let p = flick_presgen::rpcgen_c(&aoi, "L", Side::Client, &mut d).unwrap();
        // Even with inlining ON, the self-reference goes out of line.
        let full = plan_presc_full(&p, &Encoding::xdr(), &OptFlags::all()).unwrap();
        assert!(
            full.outlines.contains_key("node"),
            "recursive struct must have an outline body: {:?}",
            full.outlines.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn plan_stats_tally_optimizer_decisions() {
        let aoi = flick_frontend_corba::parse_str("t.idl", RECTS_IDL);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, "I", Side::Client, &mut d).unwrap();

        let full = plan_presc_full(&p, &Encoding::xdr(), &OptFlags::all()).unwrap();
        let s = PlanStats::of(&full);
        assert_eq!(s.stubs, 1);
        assert!(s.packed_chunks >= 1, "rect elements pack: {s:?}");
        assert!(s.hoisted_checks >= 1, "bounded messages hoist: {s:?}");
        assert_eq!(s.outline_fns, 0);

        // Inlining off: chunks give way to outline calls.
        let mut opts = OptFlags::all();
        opts.inline_marshal = false;
        opts.chunking = false;
        let full = plan_presc_full(&p, &Encoding::xdr(), &opts).unwrap();
        let s2 = PlanStats::of(&full);
        assert_eq!(s2.packed_chunks, 0);
        assert!(s2.outline_fns >= 2, "Rect and Point outlined: {s2:?}");
        assert!(s2.outline_calls >= 2, "{s2:?}");
    }

    #[test]
    fn mach_encoding_plans_descriptored_array() {
        let idl = "typedef sequence<long> Ints; interface I { void put(in Ints v); };";
        let plans = plan_for(idl, "I", &Encoding::mach3(), &OptFlags::all());
        let PlanNode::MemcpyArray { descriptor, .. } = &plans[0].request.slots[0].node else {
            panic!("mach ints plan: {:?}", plans[0].request.slots[0].node);
        };
        assert_eq!(*descriptor, Some(2), "INTEGER_32 descriptor");
    }
}
