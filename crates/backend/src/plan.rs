//! Lowering from PRES-C to the marshal MIR, plus the `plan_presc`
//! facade that runs the full optimization pipeline.
//!
//! Lowering is deliberately *naive*: every value marshals datum by
//! datum, every named aggregate goes out of line, and no storage
//! classes are assigned.  All §3 optimization decisions — check
//! hoisting, chunking, memcpy coalescing, marshal inlining, demux
//! switch formation — are made afterwards by the named passes in
//! [`crate::passes`]; lowering only records the structure (and the
//! PRES back-references the passes need to requery the presentation).
//!
//! Because stubs share no mutable state, lowering plans each stub
//! independently and — for large presentations — in parallel on a
//! std-only scoped-thread pool, merging results in presentation order
//! so output is deterministic regardless of thread count.

use std::collections::BTreeMap;

use flick_mint::MintNode;
use flick_pres::{PresC, PresId, PresNode, Stub};

use crate::encoding::Encoding;
use crate::opts::OptFlags;
use crate::passes::{run_pipeline, PassPipeline};

pub(crate) use crate::mir::{plan_references_outline, PlanResult};
pub use crate::mir::{
    rust_prim_name, MsgPlan, PlanNode, PlanStats, SlotPlan, SlotStorage, StubPlan, StubPlans,
};

/// How lowering distributes stubs across threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Parallel when the presentation is big enough to pay for it.
    Auto,
    /// Always single-threaded.
    Sequential,
    /// Exactly this many worker threads.
    Threads(usize),
}

/// Below this many stubs, thread spawn overhead outweighs the win.
pub(crate) const PARALLEL_MIN_STUBS: usize = 16;

/// Options that shape lowering itself (as opposed to the MIR passes):
/// §3.1 parameter management decides, per slot, whether the receive
/// side may borrow storage from the message buffer.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LowerOpts {
    pub param_mgmt: bool,
}

/// Builds plans for every stub in `presc` using the pipeline `opts`
/// describes.
///
/// # Errors
/// Returns a message if the presentation contains a conversion this
/// planner cannot lower.
pub fn plan_presc(presc: &PresC, enc: &Encoding, opts: &OptFlags) -> PlanResult<Vec<StubPlan>> {
    Ok(plan_presc_full(presc, enc, opts)?.stubs)
}

/// Like [`plan_presc`] but also returns shared outline bodies and the
/// module-wide decisions.
///
/// # Errors
/// Returns a message if the presentation contains a conversion this
/// planner cannot lower.
pub fn plan_presc_full(presc: &PresC, enc: &Encoding, opts: &OptFlags) -> PlanResult<StubPlans> {
    let pipeline = PassPipeline::from_opts(opts);
    Ok(run_pipeline(presc, enc, &pipeline, None)?.mir)
}

/// Lowers every stub of `presc` to naive MIR.
///
/// # Errors
/// Returns a message if the presentation contains a conversion this
/// planner cannot lower.
pub(crate) fn lower_presc(
    presc: &PresC,
    enc: &Encoding,
    lopts: LowerOpts,
    par: Parallelism,
) -> PlanResult<StubPlans> {
    let n = presc.stubs.len();
    let threads = match par {
        Parallelism::Sequential => 1,
        Parallelism::Threads(t) => t.max(1),
        Parallelism::Auto if n >= PARALLEL_MIN_STUBS => std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(8),
        Parallelism::Auto => 1,
    };

    let lowered: Vec<(StubPlan, BTreeMap<String, PlanNode>)> = if threads <= 1 || n <= 1 {
        presc
            .stubs
            .iter()
            .map(|stub| lower_stub(presc, enc, lopts, stub))
            .collect::<PlanResult<Vec<_>>>()?
    } else {
        let chunk = n.div_ceil(threads);
        let per_chunk: Vec<PlanResult<Vec<_>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = presc
                .stubs
                .chunks(chunk)
                .map(|stubs| {
                    scope.spawn(move || {
                        stubs
                            .iter()
                            .map(|stub| lower_stub(presc, enc, lopts, stub))
                            .collect::<PlanResult<Vec<_>>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("lowering worker panicked".to_string()))
                })
                .collect()
        });
        // Merge in presentation order: chunks were dealt contiguously,
        // so concatenation restores the sequential order exactly.
        let mut all = Vec::with_capacity(n);
        for res in per_chunk {
            all.extend(res?);
        }
        all
    };

    let mut stubs = Vec::with_capacity(n);
    let mut outlines = BTreeMap::new();
    for (stub, outs) in lowered {
        stubs.push(stub);
        // Later stubs overwrite — same as one shared map filled in
        // presentation order.
        outlines.extend(outs);
    }
    Ok(StubPlans {
        stubs,
        outlines,
        hoist: false,
        memcpy: false,
        demux: crate::mir::Demux::Linear,
    })
}

pub(crate) fn lower_stub(
    presc: &PresC,
    enc: &Encoding,
    lopts: LowerOpts,
    stub: &Stub,
) -> PlanResult<(StubPlan, BTreeMap<String, PlanNode>)> {
    let mut lw = Lowerer {
        presc,
        enc,
        lopts,
        outlines: BTreeMap::new(),
        in_progress: Vec::new(),
    };
    let request = lw.lower_message(&stub.request)?;
    let reply = lw.lower_message(&stub.reply)?;
    Ok((
        StubPlan {
            name: stub.name.clone(),
            kind: stub.kind,
            op: stub.op.clone(),
            request,
            reply,
        },
        lw.outlines,
    ))
}

struct Lowerer<'a> {
    presc: &'a PresC,
    enc: &'a Encoding,
    lopts: LowerOpts,
    outlines: BTreeMap<String, PlanNode>,
    in_progress: Vec<(PresId, String)>,
}

impl<'a> Lowerer<'a> {
    fn lower_message(&mut self, msg: &flick_pres::MessagePres) -> PlanResult<MsgPlan> {
        let mut slots = Vec::new();
        for slot in &msg.slots {
            slots.push(SlotPlan {
                name: slot.c_name.clone(),
                by_ref: slot.by_ref,
                pres: slot.pres,
                live: slot.live,
                alias: None,
                storage: SlotStorage::default(),
                node: self.lower_node(slot.pres)?,
            });
        }
        Ok(MsgPlan {
            // The classify-storage pass computes the real class.
            class: crate::layout::SizeClass::Unbounded,
            hoisted: None,
            hoisted_capped: None,
            slots,
        })
    }

    fn lower_node(&mut self, pres: PresId) -> PlanResult<PlanNode> {
        // Recursion check: a pres node already being lowered must go
        // out of line no matter what the inline pass later decides.
        if let Some((_, key)) = self.in_progress.iter().find(|(p, _)| *p == pres) {
            let key = key.clone();
            return Ok(PlanNode::Outline { key });
        }

        let node = self.presc.pres.get(pres).clone();

        // Naive lowering outlines *every* named aggregate — the
        // call-per-datum shape of traditional IDL compilers.  The
        // inline-marshal pass re-expands call sites it decides to
        // absorb.
        let outline_key = match &node {
            PresNode::StructMap { .. }
            | PresNode::UnionMap { .. }
            | PresNode::OptionalPtr { .. } => crate::mir::type_name_of(self.presc, pres),
            _ => None,
        };
        let force_outline = outline_key.is_some();
        let is_recursive_candidate = matches!(
            node,
            PresNode::StructMap { .. } | PresNode::UnionMap { .. } | PresNode::OptionalPtr { .. }
        );

        if is_recursive_candidate {
            let key = outline_key
                .clone()
                .unwrap_or_else(|| format!("anon_{}", pres.index()));
            self.in_progress.push((pres, key));
        }
        let planned = self.lower_node_inner(&node, pres);
        let popped = if is_recursive_candidate {
            self.in_progress.pop()
        } else {
            None
        };
        let planned = planned?;

        // If anything inside referenced us as an outline, or this is a
        // named aggregate, register the body and return a call.
        let key = popped.map(|(_, k)| k);
        if let Some(key) = key {
            let was_referenced = plan_references_outline(&planned, &key);
            if force_outline || was_referenced {
                self.outlines.insert(key.clone(), planned);
                return Ok(PlanNode::Outline { key });
            }
        }
        Ok(planned)
    }

    fn lower_node_inner(&mut self, node: &PresNode, pres: PresId) -> PlanResult<PlanNode> {
        Ok(match node {
            PresNode::Void => PlanNode::Void,
            PresNode::Direct { mint, .. } => PlanNode::Prim {
                prim: self.enc.prim(&self.presc.mint, *mint),
                descriptor: None,
            },
            PresNode::EnumMap { .. } => PlanNode::Enum {
                prim: self.enc.prim_for_size(4, false),
            },
            PresNode::StructMap { fields, .. } => {
                let mut fs = Vec::new();
                for (name, f) in fields {
                    fs.push((name.clone(), self.lower_node(*f)?));
                }
                PlanNode::Struct {
                    type_name: crate::mir::type_name_of(self.presc, pres)
                        .unwrap_or_else(|| format!("anon_{}", pres.index())),
                    pres,
                    fields: fs,
                }
            }
            PresNode::FixedArray { elem, len, .. } => PlanNode::FixedArray {
                len: *len,
                elem: Box::new(self.lower_node(*elem)?),
                elem_pres: *elem,
                pres,
                elem_type: self.elem_type_name(*elem),
            },
            PresNode::TerminatedString { mint, alloc, .. } => {
                let bound = match self.presc.mint.get(*mint) {
                    MintNode::Array { len, .. } => len.max,
                    _ => None,
                };
                PlanNode::String {
                    bound,
                    style: self.enc.string_wire,
                    pad_unit: self.enc.pad_unit,
                    borrow_ok: self.lopts.param_mgmt && alloc.may_use_buffer,
                    descriptor: if self.enc.typed_descriptors {
                        Some(8)
                    } else {
                        None
                    },
                }
            }
            PresNode::OptPtr { mint, elem, .. } | PresNode::CountedSeq { mint, elem, .. } => {
                let bound = match self.presc.mint.get(*mint) {
                    MintNode::Array { len, .. } => len.max,
                    _ => None,
                };
                let (fields, type_name) = match node {
                    PresNode::CountedSeq {
                        length_field,
                        maximum_field,
                        buffer_field,
                        ctype,
                        ..
                    } => (
                        (
                            length_field.clone(),
                            maximum_field.clone(),
                            buffer_field.clone(),
                        ),
                        match ctype {
                            flick_cast::CType::Named(n) => n.clone(),
                            _ => format!("seq_{}", pres.index()),
                        },
                    ),
                    _ => (
                        ("_length".into(), "_maximum".into(), "_buffer".into()),
                        format!("seq_{}", pres.index()),
                    ),
                };
                PlanNode::CountedArray {
                    bound,
                    elem: Box::new(self.lower_node(*elem)?),
                    // The classify-storage pass fills this in.
                    elem_class: crate::layout::SizeClass::Unbounded,
                    elem_pres: *elem,
                    elem_type: self.elem_type_name(*elem),
                    type_name,
                    fields,
                }
            }
            PresNode::UnionMap {
                discrim,
                cases,
                default,
                ..
            } => {
                let disc_prim = match self.presc.pres.get(*discrim) {
                    PresNode::Direct { mint, .. } => self.enc.prim(&self.presc.mint, *mint),
                    PresNode::EnumMap { .. } => self.enc.prim_for_size(4, false),
                    other => return Err(format!("unsupported union discriminator {other:?}")),
                };
                let mut arms = Vec::new();
                for (v, name, c) in cases {
                    arms.push((*v, name.clone(), self.lower_node(*c)?));
                }
                let default = match default {
                    Some((name, d)) => Some((name.clone(), Box::new(self.lower_node(*d)?))),
                    None => None,
                };
                PlanNode::Union {
                    type_name: crate::mir::type_name_of(self.presc, pres)
                        .unwrap_or_else(|| format!("anon_{}", pres.index())),
                    disc_prim,
                    cases: arms,
                    default,
                }
            }
            PresNode::OptionalPtr { elem, .. } => PlanNode::Optional {
                elem: Box::new(self.lower_node(*elem)?),
                elem_type: self.elem_type_name(*elem),
            },
        })
    }

    fn elem_type_name(&self, elem: PresId) -> String {
        match self.presc.pres.get(elem).ctype() {
            Some(flick_cast::CType::Named(n)) => n.clone(),
            Some(c) => rust_prim_name(c).to_string(),
            None => "u8".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::StringWire;
    use crate::layout::SizeClass;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn plan_for(idl: &str, iface: &str, enc: &Encoding, opts: &OptFlags) -> Vec<StubPlan> {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation");
        plan_presc(&p, enc, opts).expect("plan")
    }

    const RECTS_IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); };
    ";

    #[test]
    fn rect_sequence_plans_as_loop_of_chunks() {
        let plans = plan_for(RECTS_IDL, "I", &Encoding::xdr(), &OptFlags::all());
        let slot = &plans[0].request.slots[0];
        let PlanNode::CountedArray {
            elem, elem_class, ..
        } = &slot.node
        else {
            panic!("expected counted array, got {:?}", slot.node);
        };
        assert_eq!(*elem_class, SizeClass::Fixed(16));
        assert!(
            matches!(**elem, PlanNode::Packed { ref layout, .. } if layout.size == 16),
            "rect element packs into a 16-byte chunk: {elem:?}"
        );
    }

    #[test]
    fn chunking_off_yields_per_datum_structs() {
        let mut opts = OptFlags::all();
        opts.chunking = false;
        let plans = plan_for(RECTS_IDL, "I", &Encoding::xdr(), &opts);
        let PlanNode::CountedArray { elem, .. } = &plans[0].request.slots[0].node else {
            panic!("counted array");
        };
        assert!(matches!(**elem, PlanNode::Struct { .. }), "{elem:?}");
    }

    #[test]
    fn int_array_memcpy_depends_on_order() {
        let idl = "typedef sequence<long> Ints; interface I { void put(in Ints v); };";
        // Native-order CDR: memcpy run.
        let plans = plan_for(idl, "I", &Encoding::cdr_native(), &OptFlags::all());
        assert!(
            matches!(plans[0].request.slots[0].node, PlanNode::MemcpyArray { .. }),
            "{:?}",
            plans[0].request.slots[0].node
        );
        // Foreign-order CDR on this host: element loop instead.
        let foreign = if cfg!(target_endian = "little") {
            Encoding::cdr_be()
        } else {
            Encoding::cdr_le()
        };
        let plans = plan_for(idl, "I", &foreign, &OptFlags::all());
        assert!(matches!(
            plans[0].request.slots[0].node,
            PlanNode::CountedArray { .. }
        ));
        // memcpy disabled: element loop even in native order.
        let mut opts = OptFlags::all();
        opts.memcpy = false;
        let plans = plan_for(idl, "I", &Encoding::cdr_native(), &opts);
        assert!(matches!(
            plans[0].request.slots[0].node,
            PlanNode::CountedArray { .. }
        ));
    }

    #[test]
    fn octet_arrays_always_memcpy() {
        // Byte-wide elements block-copy under any byte order (CDR keeps
        // them packed; XDR pads only at the end of the run).
        let idl = "typedef sequence<octet> Blob; interface I { void put(in Blob b); };";
        for enc in [Encoding::xdr(), Encoding::cdr_be(), Encoding::cdr_le()] {
            let plans = plan_for(idl, "I", &enc, &OptFlags::all());
            assert!(
                matches!(plans[0].request.slots[0].node, PlanNode::MemcpyArray { .. }),
                "{} should memcpy bytes",
                enc.name
            );
        }
    }

    #[test]
    fn string_plan_styles() {
        let idl = "interface I { void put(in string s); };";
        let plans = plan_for(idl, "I", &Encoding::xdr(), &OptFlags::all());
        let PlanNode::String {
            style, pad_unit, ..
        } = &plans[0].request.slots[0].node
        else {
            panic!("string plan");
        };
        assert_eq!(*style, StringWire::CountedPadded);
        assert_eq!(*pad_unit, Some(4));
        let plans = plan_for(idl, "I", &Encoding::cdr_be(), &OptFlags::all());
        let PlanNode::String { style, .. } = &plans[0].request.slots[0].node else {
            panic!("string plan");
        };
        assert_eq!(*style, StringWire::CountedNul);
    }

    #[test]
    fn message_class_covers_discriminator_and_slots() {
        let idl = "struct P { long a; long b; }; interface I { void put(in P p); };";
        let plans = plan_for(idl, "I", &Encoding::xdr(), &OptFlags::all());
        // 4 (op code) + 8 (two longs) = 12 fixed bytes.
        assert_eq!(plans[0].request.class, SizeClass::Fixed(12));
        // Reply: just the status-free empty body.
        assert_eq!(plans[0].reply.class, SizeClass::Fixed(4));
    }

    #[test]
    fn inlining_off_outlines_named_structs() {
        let aoi = flick_frontend_corba::parse_str("t.idl", RECTS_IDL);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, "I", Side::Client, &mut d).unwrap();
        let mut opts = OptFlags::all();
        opts.inline_marshal = false;
        opts.chunking = false; // the traditional call-per-aggregate shape
        let full = plan_presc_full(&p, &Encoding::xdr(), &opts).unwrap();
        let PlanNode::CountedArray { elem, .. } = &full.stubs[0].request.slots[0].node else {
            panic!("counted array");
        };
        assert!(
            matches!(**elem, PlanNode::Outline { ref key } if key == "Rect"),
            "{elem:?}"
        );
        assert!(full.outlines.contains_key("Rect"));
        assert!(
            full.outlines.contains_key("Point"),
            "nested aggregate outlined too"
        );
    }

    #[test]
    fn recursion_always_outlines() {
        let aoi = flick_frontend_onc::parse_str(
            "l.x",
            r"
            struct node { int v; node *next; };
            program L { version V { void put(node n) = 1; } = 1; } = 9;
            ",
        );
        let mut d = Diagnostics::new();
        let p = flick_presgen::rpcgen_c(&aoi, "L", Side::Client, &mut d).unwrap();
        // Even with inlining ON, the self-reference goes out of line.
        let full = plan_presc_full(&p, &Encoding::xdr(), &OptFlags::all()).unwrap();
        assert!(
            full.outlines.contains_key("node"),
            "recursive struct must have an outline body: {:?}",
            full.outlines.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn plan_stats_tally_optimizer_decisions() {
        let aoi = flick_frontend_corba::parse_str("t.idl", RECTS_IDL);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, "I", Side::Client, &mut d).unwrap();

        let full = plan_presc_full(&p, &Encoding::xdr(), &OptFlags::all()).unwrap();
        let s = PlanStats::of(&full);
        assert_eq!(s.stubs, 1);
        assert!(s.packed_chunks >= 1, "rect elements pack: {s:?}");
        assert!(s.hoisted_checks >= 1, "bounded messages hoist: {s:?}");
        assert_eq!(s.outline_fns, 0);

        // Inlining off: chunks give way to outline calls.
        let mut opts = OptFlags::all();
        opts.inline_marshal = false;
        opts.chunking = false;
        let full = plan_presc_full(&p, &Encoding::xdr(), &opts).unwrap();
        let s2 = PlanStats::of(&full);
        assert_eq!(s2.packed_chunks, 0);
        assert!(s2.outline_fns >= 2, "Rect and Point outlined: {s2:?}");
        assert!(s2.outline_calls >= 2, "{s2:?}");
    }

    #[test]
    fn mach_encoding_plans_descriptored_array() {
        let idl = "typedef sequence<long> Ints; interface I { void put(in Ints v); };";
        let plans = plan_for(idl, "I", &Encoding::mach3(), &OptFlags::all());
        let PlanNode::MemcpyArray { descriptor, .. } = &plans[0].request.slots[0].node else {
            panic!("mach ints plan: {:?}", plans[0].request.slots[0].node);
        };
        assert_eq!(*descriptor, Some(2), "INTEGER_32 descriptor");
    }

    #[test]
    fn parallel_lowering_is_deterministic() {
        // Enough operations to cross the parallel threshold, with
        // shared named aggregates so the outline merge is exercised.
        let mut idl = String::from(
            "struct Point { long x; long y; };
             struct Rect { Point min; Point max; };
             typedef sequence<Rect> RectSeq;
             interface Wide {
        ",
        );
        for i in 0..24 {
            idl.push_str(&format!(
                "void op{i}(in RectSeq rs, in string s, in long n);\n"
            ));
        }
        idl.push_str("};");
        let aoi = flick_frontend_corba::parse_str("w.idl", &idl);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, "Wide", Side::Client, &mut d).expect("presentation");
        let lopts = LowerOpts { param_mgmt: true };
        let seq = lower_presc(&p, &Encoding::xdr(), lopts, Parallelism::Sequential).unwrap();
        for threads in [2, 3, 8] {
            let par =
                lower_presc(&p, &Encoding::xdr(), lopts, Parallelism::Threads(threads)).unwrap();
            assert_eq!(
                format!("{seq:?}"),
                format!("{par:?}"),
                "lowering with {threads} threads must match sequential"
            );
        }
        // And the Auto heuristic (>= 16 stubs goes parallel) agrees too.
        let auto = lower_presc(&p, &Encoding::xdr(), lopts, Parallelism::Auto).unwrap();
        assert_eq!(format!("{seq:?}"), format!("{auto:?}"));
    }
}
