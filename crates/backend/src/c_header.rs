//! The self-contained C runtime header generated stubs compile
//! against (`flick_runtime.h`).
//!
//! The paper's stubs link a marshal support library; shipping its
//! interface as a header of `static inline` functions keeps every
//! generated `.c` file a complete, independently compilable
//! translation unit — which the golden tests verify with a real C
//! compiler when one is available.

/// The complete text of `flick_runtime.h`.
pub const C_RUNTIME_HEADER: &str = r#"/* flick_runtime.h — support runtime for Flick-generated C stubs.
 * Generated alongside the stubs; do not edit. */
#ifndef FLICK_RUNTIME_H
#define FLICK_RUNTIME_H

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* The marshal buffer: dynamically allocated, reused between stub
 * invocations (paper footnote 4). */
typedef struct FLICK_BUF {
    char *data;
    size_t len;
    size_t cap;
} FLICK_BUF;

static FLICK_BUF flick_global_buf;

static FLICK_BUF *flick_client_buf(void)
{
    return &flick_global_buf;
}

static void flick_buf_clear(FLICK_BUF *b)
{
    b->len = 0;
}

/* The marshal-space check (Flick hoists these; §3.1). */
static void flick_ensure(FLICK_BUF *b, size_t more)
{
    if (b->cap - b->len < more) {
        size_t want = b->len + more;
        size_t cap = b->cap ? b->cap * 2 : 256;
        while (cap < want) {
            cap *= 2;
        }
        b->data = (char *) realloc(b->data, cap);
        b->cap = cap;
    }
}

/* Opens a fixed-layout chunk: one growth decision, then the caller
 * stores at constant offsets from the returned chunk pointer (§3.2). */
static char *flick_chunk(FLICK_BUF *b, size_t n)
{
    char *p;
    flick_ensure(b, n);
    p = b->data + b->len;
    memset(p, 0, n);
    b->len += n;
    return p;
}

static void flick_put_bytes(FLICK_BUF *b, const void *src, size_t n)
{
    flick_ensure(b, n);
    memcpy(b->data + b->len, src, n);
    b->len += n;
}

static void flick_pad(FLICK_BUF *b, size_t unit)
{
    static const char zeros[8];
    size_t rem = b->len % unit;
    if (rem != 0) {
        flick_put_bytes(b, zeros, unit - rem);
    }
}

/* ---- byte-order helpers ---- */

static uint16_t flick_swap16(uint16_t v) { return (uint16_t) ((v >> 8) | (v << 8)); }
static uint32_t flick_swap32(uint32_t v)
{
    return ((v >> 24) & 0xffu) | ((v >> 8) & 0xff00u) |
           ((v << 8) & 0xff0000u) | ((uint32_t) (v << 24));
}
static uint64_t flick_swap64(uint64_t v)
{
    return ((uint64_t) flick_swap32((uint32_t) v) << 32) | flick_swap32((uint32_t) (v >> 32));
}

static int flick_host_is_le(void)
{
    const uint16_t one = 1;
    return *(const unsigned char *) &one == 1;
}

#define FLICK_TO_BE16(v) (flick_host_is_le() ? flick_swap16(v) : (v))
#define FLICK_TO_LE16(v) (flick_host_is_le() ? (v) : flick_swap16(v))
#define FLICK_TO_BE32(v) (flick_host_is_le() ? flick_swap32(v) : (v))
#define FLICK_TO_LE32(v) (flick_host_is_le() ? (v) : flick_swap32(v))
#define FLICK_TO_BE64(v) (flick_host_is_le() ? flick_swap64(v) : (v))
#define FLICK_TO_LE64(v) (flick_host_is_le() ? (v) : flick_swap64(v))

/* ---- appending puts (cursor at buffer end) ---- */

static void flick_put_u8(FLICK_BUF *b, unsigned v)
{
    flick_ensure(b, 1);
    b->data[b->len++] = (char) v;
}

#define FLICK_DEF_PUT(name, ty, conv)                      \
    static void name(FLICK_BUF *b, ty v)                   \
    {                                                      \
        ty w = conv(v);                                    \
        flick_put_bytes(b, &w, sizeof w);                  \
    }

FLICK_DEF_PUT(flick_put_u16_be, uint16_t, FLICK_TO_BE16)
FLICK_DEF_PUT(flick_put_u16_le, uint16_t, FLICK_TO_LE16)
FLICK_DEF_PUT(flick_put_u32_be, uint32_t, FLICK_TO_BE32)
FLICK_DEF_PUT(flick_put_u32_le, uint32_t, FLICK_TO_LE32)
FLICK_DEF_PUT(flick_put_u64_be, uint64_t, FLICK_TO_BE64)
FLICK_DEF_PUT(flick_put_u64_le, uint64_t, FLICK_TO_LE64)

static void flick_put_f32_be(FLICK_BUF *b, float v)
{
    uint32_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_put_u32_be(b, bits);
}
static void flick_put_f32_le(FLICK_BUF *b, float v)
{
    uint32_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_put_u32_le(b, bits);
}
static void flick_put_f64_be(FLICK_BUF *b, double v)
{
    uint64_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_put_u64_be(b, bits);
}
static void flick_put_f64_le(FLICK_BUF *b, double v)
{
    uint64_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_put_u64_le(b, bits);
}

/* ---- chunked stores (constant offsets off a chunk pointer) ---- */

static void flick_chunk_put_u8(char *at, unsigned v) { *at = (char) v; }

#define FLICK_DEF_CHUNK_PUT(name, ty, conv)                \
    static void name(char *at, ty v)                       \
    {                                                      \
        ty w = conv(v);                                    \
        memcpy(at, &w, sizeof w);                          \
    }

FLICK_DEF_CHUNK_PUT(flick_chunk_put_u16_be, uint16_t, FLICK_TO_BE16)
FLICK_DEF_CHUNK_PUT(flick_chunk_put_u16_le, uint16_t, FLICK_TO_LE16)
FLICK_DEF_CHUNK_PUT(flick_chunk_put_u32_be, uint32_t, FLICK_TO_BE32)
FLICK_DEF_CHUNK_PUT(flick_chunk_put_u32_le, uint32_t, FLICK_TO_LE32)
FLICK_DEF_CHUNK_PUT(flick_chunk_put_u64_be, uint64_t, FLICK_TO_BE64)
FLICK_DEF_CHUNK_PUT(flick_chunk_put_u64_le, uint64_t, FLICK_TO_LE64)

static void flick_chunk_put_f32_be(char *at, float v)
{
    uint32_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_chunk_put_u32_be(at, bits);
}
static void flick_chunk_put_f32_le(char *at, float v)
{
    uint32_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_chunk_put_u32_le(at, bits);
}
static void flick_chunk_put_f64_be(char *at, double v)
{
    uint64_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_chunk_put_u64_be(at, bits);
}
static void flick_chunk_put_f64_le(char *at, double v)
{
    uint64_t bits;
    memcpy(&bits, &v, sizeof bits);
    flick_chunk_put_u64_le(at, bits);
}

/* ---- client call options and structured errors ---- */

/* Per-call reliability knobs for datagram transports: the client owns
 * retransmission (same xid) until the reply arrives or the deadline
 * passes.  Mirrors the Rust runtime's CallOptions. */
typedef struct FLICK_CALL_OPTIONS {
    uint32_t deadline_ms;  /* total budget, retransmissions included */
    uint32_t retries;      /* retransmissions after the first send   */
    uint32_t backoff_ms;   /* first retransmit wait; doubles each try */
} FLICK_CALL_OPTIONS;

#define FLICK_CALL_OPTIONS_DEFAULT { 2000u, 8u, 10u }

/* Why a call failed; mirrors the Rust runtime's RpcError. */
typedef enum FLICK_RPC_ERROR {
    FLICK_RPC_OK = 0,
    FLICK_RPC_TIMEOUT,       /* deadline passed, retransmits exhausted */
    FLICK_RPC_DENIED,        /* MSG_DENIED / PROG_UNAVAIL / PROG_MISMATCH
                              * / PROC_UNAVAIL / SYSTEM_ERR */
    FLICK_RPC_GARBAGE_ARGS,  /* server could not decode our arguments  */
    FLICK_RPC_DECODE,        /* reply body failed to decode locally    */
    FLICK_RPC_TRANSPORT      /* link refused the exchange or closed    */
} FLICK_RPC_ERROR;

/* ---- transport hooks (bound by the linking program) ---- */

/* Sends the marshaled request and swaps in the reply; provided by the
 * transport library the application links (TCP, UDP, Mach, Fluke). */
extern void flick_call(FLICK_BUF *request, unsigned request_code, const char *wire_name);

/* Bounded variant: retransmits per `opts` and reports the outcome
 * instead of aborting on a hostile or silent peer. */
extern FLICK_RPC_ERROR flick_call_bounded(FLICK_BUF *request, unsigned request_code,
                                          const char *wire_name,
                                          const FLICK_CALL_OPTIONS *opts);

/* Decodes the next reply/request slot into `out`; provided by the
 * decode half of the runtime. */
extern void flick_decode_slot(FLICK_BUF *message, void *out);

#endif /* FLICK_RUNTIME_H */
"#;

#[cfg(test)]
mod tests {
    #[test]
    fn header_has_guards_and_core_helpers() {
        let h = super::C_RUNTIME_HEADER;
        assert!(h.contains("#ifndef FLICK_RUNTIME_H"));
        for f in [
            "flick_ensure",
            "flick_chunk",
            "flick_put_u32_be",
            "flick_chunk_put_u64_le",
            "flick_put_bytes",
            "flick_pad",
            "flick_call",
            "flick_decode_slot",
            "FLICK_CALL_OPTIONS",
            "FLICK_RPC_ERROR",
            "flick_call_bounded",
        ] {
            assert!(h.contains(f), "missing {f}");
        }
    }
}
