//! Flick's optimizing back ends: PRES-C → stub implementations
//! (paper §2.3 and §3).
//!
//! A back end is specific to a message encoding and transport but
//! independent of the IDL and presentation rules that produced its
//! input.  All back ends here share one large optimization library —
//! exactly the structure the paper's Table 1 reports — organized as:
//!
//! * [`encoding`] — wire-format descriptions (XDR, CDR big/little
//!   endian, Mach 3 typed, Fluke IPC): primitive sizes, alignment,
//!   byte order, count prefixes, string conventions;
//! * [`layout`] — §3.1 storage classification: every message region is
//!   *fixed*, *variable but bounded*, or *unbounded*;
//! * [`plan`] — the marshal plan, the IR on which the optimizations
//!   run: buffer-check hoisting, chunk formation, `memcpy` run
//!   coalescing, marshal-code inlining, and the word-wise
//!   discriminator switches of §3.3;
//! * [`emit_c`] — plan → CAST → C source (the paper's actual output);
//! * [`emit_rust`] — plan → Rust source against `flick-runtime`,
//!   which the benchmark harness compiles and *executes*;
//! * [`opts`] — [`OptFlags`], individual toggles for each optimization
//!   so the ablation benchmarks can reproduce the paper's §3 claims.
//!
//! The entry point is [`BackEnd::compile`].

pub mod c_header;
pub mod emit_c;
pub mod emit_rust;
pub mod encoding;
pub mod layout;
pub mod opts;
pub mod plan;

pub use c_header::C_RUNTIME_HEADER;
pub use encoding::{Encoding, WirePrim};
pub use opts::OptFlags;
pub use plan::PlanStats;

use flick_pres::PresC;

/// Which transport family a back end serves (paper: CORBA IIOP/TCP,
/// ONC/XDR over TCP or UDP, Mach 3 typed messages, Fluke kernel IPC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// CORBA IIOP over TCP.
    IiopTcp,
    /// ONC RPC over TCP (record-marked).
    OncTcp,
    /// ONC RPC over UDP (datagrams).
    OncUdp,
    /// Mach 3 IPC between ports.
    Mach3,
    /// Fluke kernel IPC (register window).
    Fluke,
}

impl Transport {
    /// The natural encoding for this transport.
    #[must_use]
    pub fn default_encoding(self) -> Encoding {
        match self {
            Transport::IiopTcp => Encoding::cdr_native(),
            Transport::OncTcp | Transport::OncUdp => Encoding::xdr(),
            Transport::Mach3 => Encoding::mach3(),
            Transport::Fluke => Encoding::fluke(),
        }
    }

    /// Stable name used in generated-code banners and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Transport::IiopTcp => "iiop-tcp",
            Transport::OncTcp => "onc-tcp",
            Transport::OncUdp => "onc-udp",
            Transport::Mach3 => "mach3",
            Transport::Fluke => "fluke",
        }
    }
}

/// A configured back end: encoding + transport + optimization flags.
#[derive(Clone, Debug)]
pub struct BackEnd {
    /// Transport the stubs will speak.
    pub transport: Transport,
    /// Wire encoding (usually `transport.default_encoding()`).
    pub encoding: Encoding,
    /// Optimization toggles.
    pub opts: OptFlags,
}

impl BackEnd {
    /// A back end for `transport` with its natural encoding and all
    /// optimizations enabled.
    #[must_use]
    pub fn new(transport: Transport) -> Self {
        BackEnd {
            transport,
            encoding: transport.default_encoding(),
            opts: OptFlags::all(),
        }
    }

    /// Replaces the optimization flags.
    #[must_use]
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Compiles a presentation into stub implementations.
    ///
    /// # Errors
    /// Returns a message when the presentation uses a construct this
    /// back end cannot lower (see `emit_rust` for the Rust subset).
    pub fn compile(&self, presc: &PresC) -> Result<Compiled, String> {
        Ok(self.compile_traced(presc)?.0)
    }

    /// Like [`BackEnd::compile`], but also reports per-step wall times
    /// and the optimizer's decision counts.
    ///
    /// # Errors
    /// Same as [`BackEnd::compile`].
    pub fn compile_traced(&self, presc: &PresC) -> Result<(Compiled, BackendTrace), String> {
        let t = std::time::Instant::now();
        let full = plan::plan_presc_full(presc, &self.encoding, &self.opts)?;
        let stats = plan::PlanStats::of(&full);
        let plans = full.stubs;
        let plan_ns = step_ns(t);

        let t = std::time::Instant::now();
        let c_unit = emit_c::emit(presc, &plans, self);
        let emit_c_ns = step_ns(t);

        let t = std::time::Instant::now();
        let c_source = flick_cast::Printer::new().unit(&c_unit);
        let print_c_ns = step_ns(t);

        let t = std::time::Instant::now();
        let rust_source = emit_rust::emit(presc, &plans, self)?;
        let emit_rust_ns = step_ns(t);

        Ok((
            Compiled {
                c_unit,
                c_source,
                rust_source,
                plans,
            },
            BackendTrace {
                plan_ns,
                emit_c_ns,
                print_c_ns,
                emit_rust_ns,
                stats,
            },
        ))
    }
}

fn step_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-step wall times and optimizer decision counts from one
/// [`BackEnd::compile_traced`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendTrace {
    /// Time planning (PRES-C → marshal plans).
    pub plan_ns: u64,
    /// Time lowering plans to CAST.
    pub emit_c_ns: u64,
    /// Time pretty-printing the CAST to C source.
    pub print_c_ns: u64,
    /// Time emitting Rust stub source.
    pub emit_rust_ns: u64,
    /// What the optimizer decided.
    pub stats: plan::PlanStats,
}

/// The artifacts a back end produces for one presentation.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The generated C declarations and stub definitions.
    pub c_unit: flick_cast::CUnit,
    /// Pretty-printed C source.
    pub c_source: String,
    /// Rust stub source against `flick-runtime`.
    pub rust_source: String,
    /// The per-stub marshal plans (exposed for tests and the
    /// code-size accounting of Table 2).
    pub plans: Vec<plan::StubPlan>,
}
