//! Flick's optimizing back ends: PRES-C → stub implementations
//! (paper §2.3 and §3).
//!
//! A back end is specific to a message encoding and transport but
//! independent of the IDL and presentation rules that produced its
//! input.  All back ends here share one large optimization library —
//! exactly the structure the paper's Table 1 reports — organized as:
//!
//! * [`encoding`] — wire-format descriptions (XDR, CDR big/little
//!   endian, Mach 3 typed, Fluke IPC): primitive sizes, alignment,
//!   byte order, count prefixes, string conventions;
//! * [`layout`] — §3.1 storage classification: every message region is
//!   *fixed*, *variable but bounded*, or *unbounded*;
//! * [`mir`] — the marshal MIR, the IR on which the optimizations run;
//! * [`plan`] — PRES-C → naive MIR lowering (parallel across stubs)
//!   plus the `plan_presc` facade;
//! * [`passes`] — the §3 optimizations as named [`MirPass`]es run by a
//!   pass manager: buffer-check hoisting, chunk formation, `memcpy`
//!   run coalescing, marshal-code inlining, and the word-wise
//!   discriminator switches of §3.3;
//! * [`verify`] — the MIR verifier run between passes in debug/test
//!   builds;
//! * [`emit_c`] — MIR → CAST → C source (the paper's actual output);
//! * [`emit_rust`] — MIR → Rust source against `flick-runtime`,
//!   which the benchmark harness compiles and *executes*;
//! * [`opts`] — [`OptFlags`], individual toggles for each optimization
//!   (a thin facade over [`PassPipeline`]) so the ablation benchmarks
//!   can reproduce the paper's §3 claims.
//!
//! The entry point is [`BackEnd::compile`].

pub mod c_header;
pub mod cache;
pub mod emit_c;
pub mod emit_rust;
pub mod emit_transcode;
pub mod encoding;
pub mod layout;
pub mod mir;
pub mod opts;
pub mod passes;
pub mod plan;
pub mod transcode;
pub mod verify;

pub use c_header::C_RUNTIME_HEADER;
pub use cache::{CacheReport, CacheStats, ExplainEntry, PlanCache, StubKey};
pub use encoding::{Encoding, WirePrim};
pub use mir::{PlanStats, StubPlans};
pub use opts::OptFlags;
pub use passes::{MirDump, MirPass, PassPipeline, PassSpan, PASS_NAMES};
pub use plan::Parallelism;
pub use transcode::{TranscodePlan, TranscodePlans, XcOp, XcPart, XcStats};

use flick_pres::PresC;

/// Lowers `presc` into an encoding-pair rewrite (`src` → `dst`) and
/// emits the generated transcoder module — the `--transcode=SRC:DST`
/// path.  `fused` mirrors the `fuse-transcode` pass toggle; when off,
/// the primary rewrites are the naive slot-wise ones.
///
/// # Errors
/// Returns a message when an encoding or presentation construct cannot
/// be transcoded (typed-descriptor encodings, non-atomic scalars).
pub fn compile_transcode(
    presc: &PresC,
    src: &Encoding,
    dst: &Encoding,
    fused: bool,
) -> Result<String, String> {
    let plans = transcode::plan(presc, src, dst, fused)?;
    Ok(emit_transcode::emit(&plans))
}

/// Which transport family a back end serves (paper: CORBA IIOP/TCP,
/// ONC/XDR over TCP or UDP, Mach 3 typed messages, Fluke kernel IPC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// CORBA IIOP over TCP.
    IiopTcp,
    /// ONC RPC over TCP (record-marked).
    OncTcp,
    /// ONC RPC over UDP (datagrams).
    OncUdp,
    /// Mach 3 IPC between ports.
    Mach3,
    /// Fluke kernel IPC (register window).
    Fluke,
}

impl Transport {
    /// The natural encoding for this transport.
    #[must_use]
    pub fn default_encoding(self) -> Encoding {
        match self {
            Transport::IiopTcp => Encoding::cdr_native(),
            Transport::OncTcp | Transport::OncUdp => Encoding::xdr(),
            Transport::Mach3 => Encoding::mach3(),
            Transport::Fluke => Encoding::fluke(),
        }
    }

    /// Stable name used in generated-code banners and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Transport::IiopTcp => "iiop-tcp",
            Transport::OncTcp => "onc-tcp",
            Transport::OncUdp => "onc-udp",
            Transport::Mach3 => "mach3",
            Transport::Fluke => "fluke",
        }
    }
}

/// Which backend step failed — the finer-grained phase that
/// `CompileError` reports (`backend.plan`, `backend.emit-c`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendStep {
    /// Lowering + the MIR pass pipeline.
    Plan,
    /// MIR → CAST.
    EmitC,
    /// CAST → C source text.
    PrintC,
    /// MIR → Rust source.
    EmitRust,
}

impl BackendStep {
    /// The span/phase name of this step.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendStep::Plan => "backend.plan",
            BackendStep::EmitC => "backend.emit-c",
            BackendStep::PrintC => "backend.print-c",
            BackendStep::EmitRust => "backend.emit-rust",
        }
    }
}

/// A backend failure, tagged with the step that raised it.
#[derive(Clone, Debug)]
pub struct BackendError {
    /// The failing step.
    pub step: BackendStep,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BackendError {}

/// A configured back end: encoding + transport + optimization flags.
#[derive(Clone, Debug)]
pub struct BackEnd {
    /// Transport the stubs will speak.
    pub transport: Transport,
    /// Wire encoding (usually `transport.default_encoding()`).
    pub encoding: Encoding,
    /// Optimization toggles (facade over the pass pipeline).
    pub opts: OptFlags,
    /// Pass names removed from the pipeline (`flickc --disable-pass`).
    pub disabled_passes: Vec<String>,
    /// Run the MIR verifier between passes.  Defaults on in debug
    /// builds; stub regeneration turns it on explicitly.
    pub verify_mir: bool,
    /// Dump the MIR (after a named pass, or final) into
    /// [`BackendTrace::mir_dump`].
    pub dump_mir: Option<MirDump>,
    /// Per-pass decision budget (`flickc --pass-budget`): passes that
    /// exceed it report an overrun, and passes that can stop early do.
    pub pass_budget: Option<u64>,
    /// Per-pass wall-time budget in milliseconds
    /// (`flickc --pass-budget-ms`): passes running past the deadline
    /// report an ms overrun, and passes that can stop early do.
    pub pass_budget_ms: Option<u64>,
}

impl BackEnd {
    /// A back end for `transport` with its natural encoding and all
    /// optimizations enabled.
    #[must_use]
    pub fn new(transport: Transport) -> Self {
        BackEnd {
            transport,
            encoding: transport.default_encoding(),
            opts: OptFlags::all(),
            disabled_passes: Vec::new(),
            verify_mir: cfg!(debug_assertions),
            dump_mir: None,
            pass_budget: None,
            pass_budget_ms: None,
        }
    }

    /// Replaces the optimization flags.
    #[must_use]
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Compiles a presentation into stub implementations.
    ///
    /// # Errors
    /// Returns a message when the presentation uses a construct this
    /// back end cannot lower (see `emit_rust` for the Rust subset).
    pub fn compile(&self, presc: &PresC) -> Result<Compiled, String> {
        self.compile_traced(presc)
            .map(|(c, _)| c)
            .map_err(|e| e.message)
    }

    /// Like [`BackEnd::compile`], but also reports per-step and
    /// per-pass wall times and the optimizer's decision counts.
    ///
    /// # Errors
    /// Same as [`BackEnd::compile`], tagged with the failing step.
    pub fn compile_traced(&self, presc: &PresC) -> Result<(Compiled, BackendTrace), BackendError> {
        self.compile_traced_with(presc, None)
    }

    /// Like [`BackEnd::compile_traced`], optionally planning through a
    /// [`PlanCache`]: stubs whose content key is cached are restored
    /// instead of replanned.  A `--dump-mir` request forces the
    /// whole-module path (the dump is defined over one uncached run).
    ///
    /// # Errors
    /// Same as [`BackEnd::compile`], tagged with the failing step.
    pub fn compile_traced_with(
        &self,
        presc: &PresC,
        cache: Option<&mut PlanCache>,
    ) -> Result<(Compiled, BackendTrace), BackendError> {
        let plan_err = |message: String| BackendError {
            step: BackendStep::Plan,
            message,
        };

        let mut pipeline = PassPipeline::from_opts(&self.opts);
        pipeline.verify = self.verify_mir;
        pipeline.budget = self.pass_budget;
        pipeline.budget_ms = self.pass_budget_ms;
        for name in &self.disabled_passes {
            pipeline.disable(name).map_err(plan_err)?;
        }

        let t = std::time::Instant::now();
        let planned = match cache {
            Some(cache) if self.dump_mir.is_none() => self
                .plan_cached(presc, &pipeline, cache)
                .map_err(plan_err)?,
            _ => {
                let run =
                    passes::run_pipeline(presc, &self.encoding, &pipeline, self.dump_mir.as_ref())
                        .map_err(plan_err)?;
                Planned {
                    mir: run.mir,
                    passes: run.passes,
                    mir_dump: run.mir_dump,
                    overruns: run.overruns.iter().map(ToString::to_string).collect(),
                    overruns_ms: run
                        .overruns_ms
                        .iter()
                        .map(|&(n, ms)| (n.to_string(), ms))
                        .collect(),
                    cache: None,
                    cache_ns: 0,
                }
            }
        };
        let stats = plan::PlanStats::of(&planned.mir);
        let plan_ns = step_ns(t);

        let t = std::time::Instant::now();
        let c_unit = emit_c::emit(presc, &planned.mir, self);
        let emit_c_ns = step_ns(t);

        let t = std::time::Instant::now();
        let c_source = flick_cast::Printer::new().unit(&c_unit);
        let print_c_ns = step_ns(t);

        let t = std::time::Instant::now();
        let rust_source =
            emit_rust::emit(presc, &planned.mir, self).map_err(|message| BackendError {
                step: BackendStep::EmitRust,
                message,
            })?;
        let emit_rust_ns = step_ns(t);

        Ok((
            Compiled {
                c_unit,
                c_source,
                rust_source,
                plans: planned.mir,
            },
            BackendTrace {
                plan_ns,
                emit_c_ns,
                print_c_ns,
                emit_rust_ns,
                stats,
                passes: planned.passes,
                mir_dump: planned.mir_dump,
                overruns: planned.overruns,
                overruns_ms: planned.overruns_ms,
                cache: planned.cache,
                cache_ns: planned.cache_ns,
            },
        ))
    }

    /// The memoized planning path: per-stub lookup, replan of misses
    /// (in parallel when there are enough), merge in presentation
    /// order, then the module-wide demux decision over the whole set.
    fn plan_cached(
        &self,
        presc: &PresC,
        pipeline: &PassPipeline,
        cache: &mut PlanCache,
    ) -> Result<Planned, String> {
        use std::collections::BTreeMap;

        let enc_fp = self.encoding.fingerprint();
        let pipe_fp = pipeline.fingerprint();
        let mut cache_ns = 0u64;

        // Probe phase: restore every stub we can, list the misses.
        let mut report = CacheReport::default();
        let evictions_before = cache.stats().evictions;
        let mut units: Vec<Option<cache::PlanUnit>> = Vec::with_capacity(presc.stubs.len());
        let mut keys = Vec::with_capacity(presc.stubs.len());
        let mut misses: Vec<usize> = Vec::new();
        for (i, stub) in presc.stubs.iter().enumerate() {
            let key = StubKey {
                pres_hash: flick_pres::stub_hash(presc, stub),
                enc_fp,
                pipe_fp,
            };
            let t = std::time::Instant::now();
            let restored = cache.fetch(&key).and_then(|(text, source)| {
                // A stale or corrupt entry demotes to a miss.
                cache::deserialize_unit(presc, &self.encoding, stub, &text)
                    .ok()
                    .map(|unit| (unit, source))
            });
            cache_ns += step_ns(t);
            match restored {
                Some((unit, source)) => {
                    cache.record_hit();
                    report.hits += 1;
                    report.entries.push(ExplainEntry {
                        stub: stub.name.clone(),
                        hit: true,
                        detail: source.to_string(),
                    });
                    units.push(Some(unit));
                }
                None => {
                    cache.record_miss();
                    report.misses += 1;
                    report.entries.push(ExplainEntry {
                        stub: stub.name.clone(),
                        hit: false,
                        detail: cache.miss_reason(&stub.name, &key),
                    });
                    units.push(None);
                    misses.push(i);
                }
            }
            keys.push(key);
        }

        // Replan phase: only the misses run the per-stub pipeline.
        let mut spans: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut overruns: Vec<String> = Vec::new();
        let mut overruns_ms: Vec<(String, u64)> = Vec::new();
        let add_ms = |list: &mut Vec<(String, u64)>, name: &str, ms: u64| match list
            .iter_mut()
            .find(|(n, _)| n == name)
        {
            Some(e) => e.1 += ms,
            None => list.push((name.to_string(), ms)),
        };
        let computed = run_miss_units(presc, &self.encoding, pipeline, &misses)?;
        for (i, unit) in misses.iter().zip(computed) {
            for span in &unit.passes {
                let e = spans.entry(span.name).or_insert((0, 0));
                e.0 += span.ns;
                e.1 += span.decisions;
            }
            for name in &unit.overruns {
                if !overruns.iter().any(|o| o == name) {
                    overruns.push((*name).to_string());
                }
            }
            for (name, ms) in &unit.overruns_ms {
                add_ms(&mut overruns_ms, name, *ms);
            }
            let mut mir = unit.mir;
            let stub = &presc.stubs[*i];
            let plan = mir.stubs.remove(0);
            let t = std::time::Instant::now();
            // An uncacheable stub (expansion cap) is just not stored.
            if let Ok(text) = cache::serialize_unit(presc, stub, &plan, &mir.outlines) {
                cache.store(keys[*i], text);
            }
            cache_ns += step_ns(t);
            units[*i] = Some((plan, mir.outlines));
        }

        // Merge phase: presentation order, later outline registrations
        // winning — identical to one sequential whole-module lowering.
        let scheduled = pipeline.pass_names();
        let mut mir = StubPlans {
            stubs: Vec::with_capacity(presc.stubs.len()),
            outlines: std::collections::BTreeMap::new(),
            hoist: scheduled.contains(&"hoist-checks"),
            memcpy: scheduled.contains(&"coalesce-memcpy"),
            demux: mir::Demux::Linear,
        };
        for unit in units {
            let (plan, outlines) = unit.expect("every stub restored or replanned");
            mir.stubs.push(plan);
            mir.outlines.extend(outlines);
        }

        if pipeline.verify {
            verify::verify(&mir, presc, &self.encoding)
                .map_err(|e| format!("MIR verify after cached merge: {e}"))?;
        }

        // Module-wide phase: demux needs every stub's wire name at
        // once (and merge-prefix rewrites the trie demux builds), so
        // they run on the merged module even on a full hit.
        let mut module_spans: Vec<PassSpan> = Vec::new();
        let module_passes: [Box<dyn MirPass>; 2] =
            [Box::new(passes::DemuxSwitch), Box::new(passes::MergePrefix)];
        for pass in module_passes {
            let name = pass.name();
            if !scheduled.contains(&name) {
                continue;
            }
            let cx = passes::PassCx {
                presc,
                enc: &self.encoding,
            };
            let t = std::time::Instant::now();
            let budget = pipeline.pass_budget();
            let (decisions, overran) = pass
                .run_budgeted(&mut mir, &cx, &budget)
                .map_err(|e| format!("pass {name}: {e}"))?;
            let ns = step_ns(t);
            if overran && !overruns.iter().any(|o| o == name) {
                overruns.push(name.to_string());
            }
            if let Some(over) = passes::ms_overrun(pipeline.budget_ms, ns) {
                add_ms(&mut overruns_ms, name, over);
            }
            module_spans.push(PassSpan {
                name,
                ns,
                decisions,
            });
            if pipeline.verify {
                verify::verify(&mir, presc, &self.encoding)
                    .map_err(|e| format!("MIR verify after {name}: {e}"))?;
            }
        }

        // Span shape matches the uncached run: lowering first, then
        // each scheduled pass (zeros when everything hit).
        let mut pass_spans = vec![PassSpan {
            name: "lower",
            ns: spans.get("lower").map_or(0, |e| e.0),
            decisions: misses.len() as u64,
        }];
        for name in &scheduled {
            if passes::MODULE_WIDE_PASSES.contains(name) {
                continue;
            }
            let (ns, decisions) = spans.get(name).copied().unwrap_or((0, 0));
            pass_spans.push(PassSpan {
                name,
                ns,
                decisions,
            });
        }
        pass_spans.extend(module_spans);

        for (stub, key) in presc.stubs.iter().zip(&keys) {
            cache.remember(&stub.name, *key);
        }
        cache.persist();
        report.evictions = cache.stats().evictions - evictions_before;

        Ok(Planned {
            mir,
            passes: pass_spans,
            mir_dump: None,
            overruns,
            overruns_ms,
            cache: Some(report),
            cache_ns,
        })
    }
}

/// The outcome of the planning phase, whichever path produced it.
struct Planned {
    mir: StubPlans,
    passes: Vec<PassSpan>,
    mir_dump: Option<String>,
    overruns: Vec<String>,
    overruns_ms: Vec<(String, u64)>,
    cache: Option<CacheReport>,
    cache_ns: u64,
}

/// Runs the per-stub pipeline over every missed stub, in parallel when
/// the miss set is large enough to pay for the threads (same policy as
/// uncached lowering).
fn run_miss_units(
    presc: &PresC,
    enc: &Encoding,
    pipeline: &PassPipeline,
    misses: &[usize],
) -> Result<Vec<passes::StubUnit>, String> {
    let n = misses.len();
    let threads = match pipeline.parallel {
        Parallelism::Sequential => 1,
        Parallelism::Threads(t) => t.max(1),
        Parallelism::Auto if n >= plan::PARALLEL_MIN_STUBS => std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(8),
        Parallelism::Auto => 1,
    };
    if threads <= 1 || n <= 1 {
        return misses
            .iter()
            .map(|&i| passes::run_stub_pipeline(presc, enc, pipeline, &presc.stubs[i]))
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let per_chunk: Vec<Result<Vec<_>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = misses
            .chunks(chunk)
            .map(|idxs| {
                scope.spawn(move || {
                    idxs.iter()
                        .map(|&i| passes::run_stub_pipeline(presc, enc, pipeline, &presc.stubs[i]))
                        .collect::<Result<Vec<_>, String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("replan worker panicked".to_string()))
            })
            .collect()
    });
    let mut all = Vec::with_capacity(n);
    for res in per_chunk {
        all.extend(res?);
    }
    Ok(all)
}

fn step_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-step wall times and optimizer decision counts from one
/// [`BackEnd::compile_traced`] run.
#[derive(Clone, Debug, Default)]
pub struct BackendTrace {
    /// Time planning (PRES-C → MIR, including all passes).
    pub plan_ns: u64,
    /// Time lowering plans to CAST.
    pub emit_c_ns: u64,
    /// Time pretty-printing the CAST to C source.
    pub print_c_ns: u64,
    /// Time emitting Rust stub source.
    pub emit_rust_ns: u64,
    /// What the optimizer decided.
    pub stats: plan::PlanStats,
    /// Per-pass breakdown of `plan_ns` (lowering first, then each
    /// scheduled MIR pass in order).
    pub passes: Vec<PassSpan>,
    /// The `--dump-mir` rendering, if one was requested.
    pub mir_dump: Option<String>,
    /// Names of passes that overran the `--pass-budget`.
    pub overruns: Vec<String>,
    /// `(pass, ms over)` for passes that ran past the
    /// `--pass-budget-ms` wall-time budget.
    pub overruns_ms: Vec<(String, u64)>,
    /// What the plan cache did, when one was in use.
    pub cache: Option<CacheReport>,
    /// Time spent in cache lookup/restore/store bookkeeping.
    pub cache_ns: u64,
}

/// The artifacts a back end produces for one presentation.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The generated C declarations and stub definitions.
    pub c_unit: flick_cast::CUnit,
    /// Pretty-printed C source.
    pub c_source: String,
    /// Rust stub source against `flick-runtime`.
    pub rust_source: String,
    /// The optimized MIR (exposed for tests and the code-size
    /// accounting of Table 2).
    pub plans: StubPlans,
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    const IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); long get(in string k); };
    ";

    fn presc() -> PresC {
        let aoi = flick_frontend_corba::parse_str("t.idl", IDL);
        let mut d = Diagnostics::new();
        flick_presgen::corba_c(&aoi, "I", Side::Client, &mut d).expect("presentation")
    }

    #[test]
    fn cached_compiles_are_byte_identical_to_uncached() {
        let p = presc();
        let be = BackEnd::new(Transport::IiopTcp);
        let (cold, _) = be.compile_traced(&p).expect("uncached");
        let mut cache = PlanCache::in_memory();
        let (first, t1) = be
            .compile_traced_with(&p, Some(&mut cache))
            .expect("cold cached");
        let (warm, t2) = be
            .compile_traced_with(&p, Some(&mut cache))
            .expect("warm cached");
        assert_eq!(cold.c_source, first.c_source);
        assert_eq!(cold.rust_source, first.rust_source);
        assert_eq!(
            first.c_source, warm.c_source,
            "warm recompile must be byte-identical"
        );
        assert_eq!(first.rust_source, warm.rust_source);
        let r1 = t1.cache.expect("cold report");
        assert_eq!((r1.hits, r1.misses), (0, 2));
        assert!(r1.entries.iter().all(|e| e.detail == "first compile"));
        let r2 = t2.cache.expect("warm report");
        assert_eq!((r2.hits, r2.misses), (2, 0));
        assert!(r2.entries.iter().all(|e| e.hit && e.detail == "memory"));
        // The span shape stays the same as an uncached run, so the
        // telemetry pipeline sees a uniform pass list.
        let warm_names: Vec<_> = t2.passes.iter().map(|s| s.name).collect();
        let mut expect = vec!["lower"];
        expect.extend(PASS_NAMES);
        assert_eq!(warm_names, expect);
    }

    #[test]
    fn changing_the_pipeline_invalidates_every_stub() {
        let p = presc();
        let be = BackEnd::new(Transport::IiopTcp);
        let mut cache = PlanCache::in_memory();
        be.compile_traced_with(&p, Some(&mut cache)).expect("cold");
        let mut other = BackEnd::new(Transport::IiopTcp);
        other.opts.bounded_threshold += 64;
        let (_, t) = other
            .compile_traced_with(&p, Some(&mut cache))
            .expect("reconfigured");
        let r = t.cache.expect("report");
        assert_eq!((r.hits, r.misses), (0, 2));
        assert!(
            r.entries
                .iter()
                .all(|e| e.detail.starts_with("pass pipeline changed (fingerprint ")),
            "{:?}",
            r.entries
        );
    }
}
