//! Flick's optimizing back ends: PRES-C → stub implementations
//! (paper §2.3 and §3).
//!
//! A back end is specific to a message encoding and transport but
//! independent of the IDL and presentation rules that produced its
//! input.  All back ends here share one large optimization library —
//! exactly the structure the paper's Table 1 reports — organized as:
//!
//! * [`encoding`] — wire-format descriptions (XDR, CDR big/little
//!   endian, Mach 3 typed, Fluke IPC): primitive sizes, alignment,
//!   byte order, count prefixes, string conventions;
//! * [`layout`] — §3.1 storage classification: every message region is
//!   *fixed*, *variable but bounded*, or *unbounded*;
//! * [`mir`] — the marshal MIR, the IR on which the optimizations run;
//! * [`plan`] — PRES-C → naive MIR lowering (parallel across stubs)
//!   plus the `plan_presc` facade;
//! * [`passes`] — the §3 optimizations as named [`MirPass`]es run by a
//!   pass manager: buffer-check hoisting, chunk formation, `memcpy`
//!   run coalescing, marshal-code inlining, and the word-wise
//!   discriminator switches of §3.3;
//! * [`verify`] — the MIR verifier run between passes in debug/test
//!   builds;
//! * [`emit_c`] — MIR → CAST → C source (the paper's actual output);
//! * [`emit_rust`] — MIR → Rust source against `flick-runtime`,
//!   which the benchmark harness compiles and *executes*;
//! * [`opts`] — [`OptFlags`], individual toggles for each optimization
//!   (a thin facade over [`PassPipeline`]) so the ablation benchmarks
//!   can reproduce the paper's §3 claims.
//!
//! The entry point is [`BackEnd::compile`].

pub mod c_header;
pub mod emit_c;
pub mod emit_rust;
pub mod encoding;
pub mod layout;
pub mod mir;
pub mod opts;
pub mod passes;
pub mod plan;
pub mod verify;

pub use c_header::C_RUNTIME_HEADER;
pub use encoding::{Encoding, WirePrim};
pub use mir::{PlanStats, StubPlans};
pub use opts::OptFlags;
pub use passes::{MirDump, MirPass, PassPipeline, PassSpan, PASS_NAMES};
pub use plan::Parallelism;

use flick_pres::PresC;

/// Which transport family a back end serves (paper: CORBA IIOP/TCP,
/// ONC/XDR over TCP or UDP, Mach 3 typed messages, Fluke kernel IPC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// CORBA IIOP over TCP.
    IiopTcp,
    /// ONC RPC over TCP (record-marked).
    OncTcp,
    /// ONC RPC over UDP (datagrams).
    OncUdp,
    /// Mach 3 IPC between ports.
    Mach3,
    /// Fluke kernel IPC (register window).
    Fluke,
}

impl Transport {
    /// The natural encoding for this transport.
    #[must_use]
    pub fn default_encoding(self) -> Encoding {
        match self {
            Transport::IiopTcp => Encoding::cdr_native(),
            Transport::OncTcp | Transport::OncUdp => Encoding::xdr(),
            Transport::Mach3 => Encoding::mach3(),
            Transport::Fluke => Encoding::fluke(),
        }
    }

    /// Stable name used in generated-code banners and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Transport::IiopTcp => "iiop-tcp",
            Transport::OncTcp => "onc-tcp",
            Transport::OncUdp => "onc-udp",
            Transport::Mach3 => "mach3",
            Transport::Fluke => "fluke",
        }
    }
}

/// Which backend step failed — the finer-grained phase that
/// `CompileError` reports (`backend.plan`, `backend.emit-c`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendStep {
    /// Lowering + the MIR pass pipeline.
    Plan,
    /// MIR → CAST.
    EmitC,
    /// CAST → C source text.
    PrintC,
    /// MIR → Rust source.
    EmitRust,
}

impl BackendStep {
    /// The span/phase name of this step.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendStep::Plan => "backend.plan",
            BackendStep::EmitC => "backend.emit-c",
            BackendStep::PrintC => "backend.print-c",
            BackendStep::EmitRust => "backend.emit-rust",
        }
    }
}

/// A backend failure, tagged with the step that raised it.
#[derive(Clone, Debug)]
pub struct BackendError {
    /// The failing step.
    pub step: BackendStep,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BackendError {}

/// A configured back end: encoding + transport + optimization flags.
#[derive(Clone, Debug)]
pub struct BackEnd {
    /// Transport the stubs will speak.
    pub transport: Transport,
    /// Wire encoding (usually `transport.default_encoding()`).
    pub encoding: Encoding,
    /// Optimization toggles (facade over the pass pipeline).
    pub opts: OptFlags,
    /// Pass names removed from the pipeline (`flickc --disable-pass`).
    pub disabled_passes: Vec<String>,
    /// Run the MIR verifier between passes.  Defaults on in debug
    /// builds; stub regeneration turns it on explicitly.
    pub verify_mir: bool,
    /// Dump the MIR (after a named pass, or final) into
    /// [`BackendTrace::mir_dump`].
    pub dump_mir: Option<MirDump>,
}

impl BackEnd {
    /// A back end for `transport` with its natural encoding and all
    /// optimizations enabled.
    #[must_use]
    pub fn new(transport: Transport) -> Self {
        BackEnd {
            transport,
            encoding: transport.default_encoding(),
            opts: OptFlags::all(),
            disabled_passes: Vec::new(),
            verify_mir: cfg!(debug_assertions),
            dump_mir: None,
        }
    }

    /// Replaces the optimization flags.
    #[must_use]
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Compiles a presentation into stub implementations.
    ///
    /// # Errors
    /// Returns a message when the presentation uses a construct this
    /// back end cannot lower (see `emit_rust` for the Rust subset).
    pub fn compile(&self, presc: &PresC) -> Result<Compiled, String> {
        self.compile_traced(presc)
            .map(|(c, _)| c)
            .map_err(|e| e.message)
    }

    /// Like [`BackEnd::compile`], but also reports per-step and
    /// per-pass wall times and the optimizer's decision counts.
    ///
    /// # Errors
    /// Same as [`BackEnd::compile`], tagged with the failing step.
    pub fn compile_traced(&self, presc: &PresC) -> Result<(Compiled, BackendTrace), BackendError> {
        let plan_err = |message: String| BackendError {
            step: BackendStep::Plan,
            message,
        };

        let t = std::time::Instant::now();
        let mut pipeline = PassPipeline::from_opts(&self.opts);
        pipeline.verify = self.verify_mir;
        for name in &self.disabled_passes {
            pipeline.disable(name).map_err(plan_err)?;
        }
        let run = passes::run_pipeline(presc, &self.encoding, &pipeline, self.dump_mir.as_ref())
            .map_err(plan_err)?;
        let stats = plan::PlanStats::of(&run.mir);
        let plan_ns = step_ns(t);

        let t = std::time::Instant::now();
        let c_unit = emit_c::emit(presc, &run.mir, self);
        let emit_c_ns = step_ns(t);

        let t = std::time::Instant::now();
        let c_source = flick_cast::Printer::new().unit(&c_unit);
        let print_c_ns = step_ns(t);

        let t = std::time::Instant::now();
        let rust_source =
            emit_rust::emit(presc, &run.mir, self).map_err(|message| BackendError {
                step: BackendStep::EmitRust,
                message,
            })?;
        let emit_rust_ns = step_ns(t);

        Ok((
            Compiled {
                c_unit,
                c_source,
                rust_source,
                plans: run.mir,
            },
            BackendTrace {
                plan_ns,
                emit_c_ns,
                print_c_ns,
                emit_rust_ns,
                stats,
                passes: run.passes,
                mir_dump: run.mir_dump,
            },
        ))
    }
}

fn step_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-step wall times and optimizer decision counts from one
/// [`BackEnd::compile_traced`] run.
#[derive(Clone, Debug, Default)]
pub struct BackendTrace {
    /// Time planning (PRES-C → MIR, including all passes).
    pub plan_ns: u64,
    /// Time lowering plans to CAST.
    pub emit_c_ns: u64,
    /// Time pretty-printing the CAST to C source.
    pub print_c_ns: u64,
    /// Time emitting Rust stub source.
    pub emit_rust_ns: u64,
    /// What the optimizer decided.
    pub stats: plan::PlanStats,
    /// Per-pass breakdown of `plan_ns` (lowering first, then each
    /// scheduled MIR pass in order).
    pub passes: Vec<PassSpan>,
    /// The `--dump-mir` rendering, if one was requested.
    pub mir_dump: Option<String>,
}

/// The artifacts a back end produces for one presentation.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The generated C declarations and stub definitions.
    pub c_unit: flick_cast::CUnit,
    /// Pretty-printed C source.
    pub c_source: String,
    /// Rust stub source against `flick-runtime`.
    pub rust_source: String,
    /// The optimized MIR (exposed for tests and the code-size
    /// accounting of Table 2).
    pub plans: StubPlans,
}
