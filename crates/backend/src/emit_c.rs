//! The C stub emitter: marshal plans → CAST → C source.
//!
//! This is the output path the paper describes: the back end splices
//! optimized marshal statements into the CAST declarations produced by
//! the presentation generator and prints a `.c` translation unit.  The
//! generated code targets a small, self-contained runtime API
//! (`flick_ensure`, `flick_chunk`, `flick_put_*`) whose inline
//! definitions are emitted as a prelude, so the output is a complete,
//! compilable unit.
//!
//! The same [`PlanNode`] trees drive this emitter and the Rust one;
//! the chunked stores, hoisted checks, `memcpy` runs, and switch-based
//! demultiplexing are therefore structurally identical in both.

use flick_cast::{BinOp, CDecl, CExpr, CFunction, CParam, CStmt, CType, CUnit, SwitchCase};
use flick_pres::{PresC, StubKind};

use crate::encoding::{Order, StringWire, WirePrim};
use crate::layout::{PackedItem, SizeClass, ValPath};
use crate::plan::{PlanNode, StubPlan, StubPlans};
use crate::BackEnd;

/// Emits the C translation unit for the optimized MIR `full` under
/// `be`.
#[must_use]
pub fn emit(presc: &PresC, full: &StubPlans, be: &BackEnd) -> CUnit {
    let mut unit = CUnit::new();
    unit.push(CDecl::Comment(format!(
        "Flick-generated stubs: interface `{}`, presentation `{}`, transport `{}`, encoding `{}`. Do not edit.",
        presc.interface,
        presc.style,
        be.transport.name(),
        be.encoding.name
    )));
    unit.push(CDecl::Include("<string.h>".into()));
    unit.push(CDecl::Include("<stdlib.h>".into()));
    unit.push(CDecl::Include("\"flick_runtime.h\"".into()));

    // Presentation-level declarations (typedefs, structs) come from
    // the presentation generator's CAST, unchanged.
    for d in &presc.cast.decls {
        unit.push(d.clone());
    }

    let mut e = CEmitter {
        be,
        hoist: full.hoist,
        memcpy: full.memcpy,
        tmp: 0,
    };

    // Out-of-line marshal functions: prototypes first (they may call
    // one another in any order), then definitions.
    for (key, body) in &full.outlines {
        let mut f = e.outline_marshal(key, body);
        f.body = None;
        unit.push(CDecl::Function(f));
    }
    for (key, body) in &full.outlines {
        unit.push(CDecl::Function(e.outline_marshal(key, body)));
    }

    // Client stubs.
    for plan in &full.stubs {
        if plan.kind == StubKind::ServerWork {
            continue;
        }
        let Some(stub) = presc.stubs.iter().find(|s| s.name == plan.name) else {
            continue;
        };
        unit.push(CDecl::Function(e.client_stub(stub, plan)));
    }

    // Work-function prototypes the dispatch arms call, then the
    // dispatch function itself.
    for f in e.work_prototypes(presc, &full.stubs) {
        unit.push(CDecl::Function(f));
    }
    unit.push(CDecl::Function(e.dispatch(presc, &full.stubs)));
    unit
}

struct CEmitter<'a> {
    be: &'a BackEnd,
    /// Whether the `hoist-checks` pass ran (from [`StubPlans::hoist`]).
    hoist: bool,
    /// Whether the `coalesce-memcpy` pass ran.
    memcpy: bool,
    tmp: usize,
}

fn ident(s: &str) -> CExpr {
    CExpr::ident(s)
}

impl<'a> CEmitter<'a> {
    fn fresh(&mut self, p: &str) -> String {
        self.tmp += 1;
        format!("_{p}{}", self.tmp)
    }

    fn order_suffix(&self) -> &'static str {
        match self.be.encoding.order {
            Order::Big => "be",
            Order::Little => "le",
        }
    }

    /// `flick_put_u32_be(_buf, v)`-style call for a primitive.
    fn put_prim(&self, prim: WirePrim, v: CExpr) -> CStmt {
        let suffix = match prim.order {
            Order::Big => "be",
            Order::Little => "le",
        };
        let f = match (prim.slot, prim.float) {
            (_, true) if prim.size == 4 => format!("flick_put_f32_{suffix}"),
            (_, true) => format!("flick_put_f64_{suffix}"),
            (1, _) => "flick_put_u8".to_string(),
            (2, _) => format!("flick_put_u16_{suffix}"),
            (4, _) => format!("flick_put_u32_{suffix}"),
            _ => format!("flick_put_u64_{suffix}"),
        };
        CStmt::expr(CExpr::call(f, vec![ident("_buf"), v]))
    }

    /// A chunked store: `*(unsigned int *)(_chunk + off) = htonl(v);`
    /// expressed through the runtime's typed chunk helpers.
    fn chunk_put(&self, prim: WirePrim, off: u64, v: CExpr, chunk: &str) -> CStmt {
        let suffix = match prim.order {
            Order::Big => "be",
            Order::Little => "le",
        };
        let f = match (prim.slot, prim.float) {
            (_, true) if prim.size == 4 => format!("flick_chunk_put_f32_{suffix}"),
            (_, true) => format!("flick_chunk_put_f64_{suffix}"),
            (1, _) => "flick_chunk_put_u8".to_string(),
            (2, _) => format!("flick_chunk_put_u16_{suffix}"),
            (4, _) => format!("flick_chunk_put_u32_{suffix}"),
            _ => format!("flick_chunk_put_u64_{suffix}"),
        };
        CStmt::expr(CExpr::call(
            f,
            vec![ident(chunk).bin(BinOp::Add, CExpr::Int(off as i64)), v],
        ))
    }

    fn path_to_expr(base: CExpr, path: &ValPath) -> CExpr {
        match path {
            ValPath::Root => base,
            ValPath::Field(p, f) => Self::path_to_expr(base, p).member(f.clone()),
            ValPath::Index(p, i) => Self::path_to_expr(base, p).index(CExpr::Int(*i as i64)),
        }
    }

    /// Encode statements for one plan node; `v` is the C expression
    /// for the value (already dereferenced where needed).
    fn encode(&mut self, node: &PlanNode, v: CExpr, covered: bool, out: &mut Vec<CStmt>) {
        match node {
            PlanNode::Void => {}
            PlanNode::Prim { prim, .. }
            | PlanNode::Enum {
                prim: prim @ WirePrim { .. },
            } => {
                if !covered && self.hoist {
                    out.push(CStmt::expr(CExpr::call(
                        "flick_ensure",
                        vec![ident("_buf"), CExpr::Int(i64::from(prim.slot))],
                    )));
                }
                out.push(self.put_prim(*prim, v));
            }
            PlanNode::Packed { layout, .. } => {
                if !covered && self.hoist {
                    out.push(CStmt::Comment("fixed region: one space check".into()));
                    out.push(CStmt::expr(CExpr::call(
                        "flick_ensure",
                        vec![ident("_buf"), CExpr::Int(layout.size as i64)],
                    )));
                }
                let chunk = self.fresh("chunk");
                out.push(CStmt::Comment(
                    "chunk pointer: constant-offset stores (Flick chunking)".into(),
                ));
                out.push(CStmt::decl_init(
                    chunk.clone(),
                    CType::ptr(CType::Char),
                    CExpr::call(
                        "flick_chunk",
                        vec![ident("_buf"), CExpr::Int(layout.size as i64)],
                    ),
                ));
                for item in &layout.items {
                    match item {
                        PackedItem::Prim { offset, prim, path } => {
                            let e = Self::path_to_expr(v.clone(), path);
                            out.push(self.chunk_put(*prim, *offset, e, &chunk));
                        }
                        PackedItem::PrimRun {
                            offset,
                            prim,
                            count,
                            path,
                            ..
                        } => {
                            let e = Self::path_to_expr(v.clone(), path);
                            let bytes = count * u64::from(prim.size);
                            if self.memcpy && prim.memcpy_compatible(prim.size) {
                                out.push(CStmt::Comment("memcpy run".into()));
                                out.push(CStmt::expr(CExpr::call(
                                    "memcpy",
                                    vec![
                                        ident(&chunk).bin(BinOp::Add, CExpr::Int(*offset as i64)),
                                        e,
                                        CExpr::Int(bytes as i64),
                                    ],
                                )));
                            } else {
                                let i = self.fresh("i");
                                let body = [self.chunk_put(*prim, 0, e.index(ident(&i)), &chunk)];
                                // Rewrite offset into the loop body:
                                // chunk + offset + i*slot.
                                let body = vec![match &body[0] {
                                    CStmt::Expr(CExpr::Call { func, args }) => {
                                        let mut args = args.clone();
                                        args[0] = ident(&chunk)
                                            .bin(BinOp::Add, CExpr::Int(*offset as i64))
                                            .bin(
                                                BinOp::Add,
                                                ident(&i).bin(
                                                    BinOp::Mul,
                                                    CExpr::Int(i64::from(prim.slot)),
                                                ),
                                            );
                                        CStmt::Expr(CExpr::Call {
                                            func: func.clone(),
                                            args,
                                        })
                                    }
                                    other => other.clone(),
                                }];
                                out.push(CStmt::decl(i.clone(), CType::UInt));
                                out.push(CStmt::For {
                                    init: Some(ident(&i).assign(CExpr::Int(0))),
                                    cond: Some(ident(&i).bin(BinOp::Lt, CExpr::Int(*count as i64))),
                                    step: Some(CExpr::PostInc(Box::new(ident(&i)))),
                                    body,
                                });
                            }
                        }
                    }
                }
            }
            PlanNode::MemcpyArray {
                prim,
                fixed_len,
                counted,
                pad_unit,
                ..
            } => {
                let len: CExpr = match fixed_len {
                    Some(n) => CExpr::Int(*n as i64),
                    None => v.clone().member("_length"),
                };
                let data: CExpr = match fixed_len {
                    Some(_) => v.clone(),
                    None => v.clone().member("_buffer"),
                };
                if !covered && self.hoist {
                    out.push(CStmt::expr(CExpr::call(
                        "flick_ensure",
                        vec![
                            ident("_buf"),
                            CExpr::Int(8).bin(
                                BinOp::Add,
                                len.clone()
                                    .bin(BinOp::Mul, CExpr::Int(i64::from(prim.size))),
                            ),
                        ],
                    )));
                }
                if *counted {
                    out.push(CStmt::expr(CExpr::call(
                        format!("flick_put_u32_{}", self.order_suffix()),
                        vec![ident("_buf"), len.clone()],
                    )));
                }
                out.push(CStmt::Comment("memcpy run".into()));
                out.push(CStmt::expr(CExpr::call(
                    "flick_put_bytes",
                    vec![
                        ident("_buf"),
                        data,
                        len.bin(BinOp::Mul, CExpr::Int(i64::from(prim.size))),
                    ],
                )));
                if let Some(u) = pad_unit {
                    out.push(CStmt::expr(CExpr::call(
                        "flick_pad",
                        vec![ident("_buf"), CExpr::Int(i64::from(*u))],
                    )));
                }
            }
            PlanNode::String {
                style, pad_unit, ..
            } => {
                let len = self.fresh("len");
                out.push(CStmt::decl_init(
                    len.clone(),
                    CType::UInt,
                    CExpr::call("strlen", vec![v.clone()]),
                ));
                if !covered && self.hoist {
                    out.push(CStmt::expr(CExpr::call(
                        "flick_ensure",
                        vec![ident("_buf"), CExpr::Int(8).bin(BinOp::Add, ident(&len))],
                    )));
                }
                match style {
                    StringWire::CountedPadded => {
                        out.push(CStmt::expr(CExpr::call(
                            format!("flick_put_u32_{}", self.order_suffix()),
                            vec![ident("_buf"), ident(&len)],
                        )));
                        out.push(CStmt::expr(CExpr::call(
                            "flick_put_bytes",
                            vec![ident("_buf"), v, ident(&len)],
                        )));
                        if let Some(u) = pad_unit {
                            out.push(CStmt::expr(CExpr::call(
                                "flick_pad",
                                vec![ident("_buf"), CExpr::Int(i64::from(*u))],
                            )));
                        }
                    }
                    StringWire::CountedNul => {
                        out.push(CStmt::expr(CExpr::call(
                            format!("flick_put_u32_{}", self.order_suffix()),
                            vec![ident("_buf"), ident(&len).bin(BinOp::Add, CExpr::Int(1))],
                        )));
                        out.push(CStmt::expr(CExpr::call(
                            "flick_put_bytes",
                            vec![ident("_buf"), v, ident(&len).bin(BinOp::Add, CExpr::Int(1))],
                        )));
                    }
                }
            }
            PlanNode::CountedArray {
                elem,
                elem_class,
                fields,
                ..
            } => {
                let (len_f, _max_f, buf_f) = fields;
                let len = v.clone().member(len_f.clone());
                out.push(CStmt::expr(CExpr::call(
                    format!("flick_put_u32_{}", self.order_suffix()),
                    vec![ident("_buf"), len.clone()],
                )));
                let mut body_covered = covered;
                if let (true, SizeClass::Fixed(n)) = (self.hoist && !covered, *elem_class) {
                    out.push(CStmt::Comment("space check hoisted out of the loop".into()));
                    out.push(CStmt::expr(CExpr::call(
                        "flick_ensure",
                        vec![
                            ident("_buf"),
                            len.clone().bin(BinOp::Mul, CExpr::Int(n as i64)),
                        ],
                    )));
                    body_covered = true;
                }
                let i = self.fresh("i");
                let elem_v = v.member(buf_f.clone()).index(ident(&i));
                let mut body = Vec::new();
                self.encode(elem, elem_v, body_covered, &mut body);
                out.push(CStmt::decl(i.clone(), CType::UInt));
                out.push(CStmt::For {
                    init: Some(ident(&i).assign(CExpr::Int(0))),
                    cond: Some(ident(&i).bin(BinOp::Lt, len)),
                    step: Some(CExpr::PostInc(Box::new(ident(&i)))),
                    body,
                });
            }
            PlanNode::FixedArray { len, elem, .. } => {
                let i = self.fresh("i");
                let mut body = Vec::new();
                self.encode(elem, v.index(ident(&i)), covered, &mut body);
                out.push(CStmt::decl(i.clone(), CType::UInt));
                out.push(CStmt::For {
                    init: Some(ident(&i).assign(CExpr::Int(0))),
                    cond: Some(ident(&i).bin(BinOp::Lt, CExpr::Int(*len as i64))),
                    step: Some(CExpr::PostInc(Box::new(ident(&i)))),
                    body,
                });
            }
            PlanNode::Struct { fields, .. } => {
                for (name, f) in fields {
                    self.encode(f, v.clone().member(name.clone()), covered, out);
                }
            }
            PlanNode::Union {
                disc_prim,
                cases,
                default,
                ..
            } => {
                out.push(self.put_prim(*disc_prim, v.clone().member("_d")));
                let mut switch_cases = Vec::new();
                for (label, name, c) in cases {
                    let mut body = Vec::new();
                    self.encode(
                        c,
                        v.clone().member("_u").member(name.clone()),
                        covered,
                        &mut body,
                    );
                    switch_cases.push(SwitchCase {
                        values: vec![*label],
                        body,
                    });
                }
                if let Some((name, dflt)) = default {
                    let mut body = Vec::new();
                    self.encode(
                        dflt,
                        v.clone().member("_u").member(name.clone()),
                        covered,
                        &mut body,
                    );
                    switch_cases.push(SwitchCase {
                        values: vec![],
                        body,
                    });
                }
                out.push(CStmt::Switch {
                    scrutinee: v.member("_d"),
                    cases: switch_cases,
                });
            }
            PlanNode::Optional { elem, .. } => {
                let flag = self.be.encoding.prim_for_size(1, false);
                let mut then = vec![self.put_prim(flag, CExpr::Int(1))];
                self.encode(elem, v.clone().deref(), covered, &mut then);
                let els = vec![self.put_prim(flag, CExpr::Int(0))];
                out.push(CStmt::If {
                    cond: v.bin(BinOp::Ne, CExpr::Int(0)),
                    then,
                    els: Some(els),
                });
            }
            PlanNode::Outline { key } => {
                out.push(CStmt::expr(CExpr::call(
                    format!("flick_marshal_{key}"),
                    vec![ident("_buf"), v.addr_of()],
                )));
            }
        }
    }

    fn outline_marshal(&mut self, key: &str, body: &PlanNode) -> CFunction {
        let mut stmts = Vec::new();
        self.encode(body, ident("_v").deref(), false, &mut stmts);
        CFunction {
            name: format!("flick_marshal_{key}"),
            ret: CType::Void,
            params: vec![
                CParam {
                    name: "_buf".into(),
                    ty: CType::ptr(CType::named("FLICK_BUF")),
                },
                CParam {
                    name: "_v".into(),
                    ty: CType::ptr(CType::named(key)),
                },
            ],
            body: Some(stmts),
        }
    }

    /// The client-side call stub: marshal the request, invoke the
    /// transport, unmarshal the reply (reply unmarshal is delegated to
    /// the runtime's decode helpers to keep the C side compact — the
    /// Rust emitter carries the fully inlined decode path).
    fn client_stub(&mut self, stub: &flick_pres::Stub, plan: &StubPlan) -> CFunction {
        let mut body = Vec::new();
        body.push(CStmt::Comment(format!(
            "client stub for operation `{}` (request code {})",
            plan.op.name, plan.op.request_code
        )));
        body.push(CStmt::decl_init(
            "_buf",
            CType::ptr(CType::named("FLICK_BUF")),
            CExpr::call("flick_client_buf", vec![]),
        ));
        body.push(CStmt::expr(CExpr::call(
            "flick_buf_clear",
            vec![ident("_buf")],
        )));

        // §3.1 hoisted whole-message check (decided by `hoist-checks`;
        // the capped form, so fixed-but-huge messages do not
        // pre-reserve).
        let mut covered = false;
        if let Some(n) = plan.request.hoisted_capped {
            body.push(CStmt::Comment(match plan.request.class {
                SizeClass::Fixed(_) => "whole message is fixed-size: one check".into(),
                _ => "whole message is bounded: one check".into(),
            }));
            body.push(CStmt::expr(CExpr::call(
                "flick_ensure",
                vec![ident("_buf"), CExpr::Int(n as i64)],
            )));
            covered = true;
        }
        // Bind plan slots to presentation slots by name, not position:
        // the `dead-slot` pass may have removed plan slots that the
        // presentation still records (as `live: false` bindings).
        for slot in &plan.request.slots.clone() {
            if !slot.live {
                // Dead slot with the pass disabled: the wire still
                // carries the field, but no C parameter exists for it —
                // marshal a zero.
                body.push(CStmt::Comment(format!(
                    "dead slot `{}`: never presented, wire gets zero",
                    slot.name
                )));
                self.encode(&slot.node.clone(), CExpr::Int(0), covered, &mut body);
                continue;
            }
            let by_ref = stub
                .request
                .slots
                .iter()
                .find(|b| b.c_name == slot.name)
                .is_some_and(|b| b.by_ref);
            let base = if by_ref {
                ident(&slot.name).deref()
            } else {
                ident(&slot.name)
            };
            self.encode(&slot.node.clone(), base, covered, &mut body);
        }
        body.push(CStmt::expr(CExpr::call(
            "flick_call",
            vec![
                ident("_buf"),
                CExpr::UInt(plan.op.request_code),
                CExpr::Str(plan.op.wire_name.clone()),
            ],
        )));
        if !plan.op.oneway && !plan.reply.slots.is_empty() {
            body.push(CStmt::Comment("unmarshal reply values".into()));
            let mut ret_decl: Option<CType> = None;
            for (i, slot) in plan.reply.slots.iter().enumerate() {
                if !slot.live {
                    // Dead reply slot: decode into a scratch local and
                    // discard (no C location exists for it).
                    let scratch = format!("_dead{i}");
                    body.push(CStmt::Comment(format!(
                        "dead slot `{}`: decoded and discarded",
                        slot.name
                    )));
                    body.push(CStmt::decl(scratch.clone(), CType::Long));
                    body.push(CStmt::expr(CExpr::call(
                        "flick_decode_slot",
                        vec![ident("_buf"), ident(&scratch).addr_of()],
                    )));
                } else if slot.name == "_return" {
                    // Returned by value: decode into a local.
                    ret_decl = Some(stub.decl.ret.clone());
                    body.insert(1, CStmt::decl("_return", stub.decl.ret.clone()));
                    body.push(CStmt::expr(CExpr::call(
                        "flick_decode_slot",
                        vec![ident("_buf"), ident("_return").addr_of()],
                    )));
                } else {
                    // Out parameters are already pointers.
                    body.push(CStmt::expr(CExpr::call(
                        "flick_decode_slot",
                        vec![ident("_buf"), ident(&slot.name)],
                    )));
                }
            }
            if ret_decl.is_some() {
                body.push(CStmt::Return(Some(ident("_return"))));
            }
        }
        stub.decl.clone_with_body(body)
    }

    /// Prototypes for the user-implemented work functions the
    /// dispatch arms call.
    fn work_prototypes(&mut self, presc: &PresC, plans: &[StubPlan]) -> Vec<CFunction> {
        let mut out = Vec::new();
        for plan in plans {
            if plan.kind == StubKind::ServerWork {
                continue;
            }
            let Some(stub) = presc.stubs.iter().find(|s| s.name == plan.name) else {
                continue;
            };
            let params: Vec<CParam> = plan
                .request
                .slots
                .iter()
                .filter(|slot| slot.live)
                .map(|slot| CParam {
                    name: slot.name.clone(),
                    ty: stub
                        .decl
                        .params
                        .iter()
                        .find(|p| p.name == slot.name)
                        .map_or(CType::Int, |p| p.ty.clone()),
                })
                .collect();
            out.push(CFunction {
                name: format!(
                    "{}_work",
                    crate::emit_c::sanitize_c(&format!(
                        "{}_{}",
                        presc.interface.replace("::", "_"),
                        plan.op.name
                    ))
                ),
                ret: CType::Void,
                params,
                body: None,
            });
        }
        out
    }

    /// The server dispatch function: a `switch` over the request code
    /// with per-operation unmarshal + work-call + reply marshal inlined
    /// into each arm (§3.3).
    ///
    /// `reply-alias` is deliberately a no-op on this path: the C
    /// dispatch delegates reply marshaling to the work function, so
    /// there are no reply bytes here to alias back to the request and
    /// no place to surface the copy-on-write `Echoed` contract the
    /// Rust server trait carries (a C work function would need an
    /// out-parameter protocol — `*changed` flag plus value — to
    /// declare mutation).  The Rust emitter carries the optimization;
    /// the same applies to `reuse-slots` arena residence, which in C
    /// would map to receive-buffer pointers the work signature cannot
    /// express without that protocol.
    fn dispatch(&mut self, presc: &PresC, plans: &[StubPlan]) -> CFunction {
        let mut cases = Vec::new();
        for plan in plans {
            if plan.kind == StubKind::ServerWork {
                continue;
            }
            let Some(stub) = presc.stubs.iter().find(|s| s.name == plan.name) else {
                continue;
            };
            let mut body = Vec::new();
            body.push(CStmt::Comment(format!(
                "inlined unmarshal + dispatch for `{}`",
                plan.op.name
            )));
            let mut args = Vec::new();
            for (i, slot) in plan.request.slots.iter().enumerate() {
                let var = format!("_arg{i}");
                if !slot.live {
                    // Dead slot with the pass disabled: the wire still
                    // carries the field, so decode it into a scratch
                    // local the work call never sees.
                    body.push(CStmt::Comment(format!(
                        "dead slot `{}`: decoded and discarded",
                        slot.name
                    )));
                    body.push(CStmt::decl(var.clone(), CType::Long));
                    body.push(CStmt::expr(CExpr::call(
                        "flick_decode_slot",
                        vec![ident("_msg"), ident(&var).addr_of()],
                    )));
                    continue;
                }
                // Bind presentation slots by name, not position: the
                // `dead-slot` pass may have removed earlier plan slots.
                let by_ref = stub
                    .request
                    .slots
                    .iter()
                    .find(|b| b.c_name == slot.name)
                    .is_some_and(|b| b.by_ref);
                // Declare a local of the parameter's value type (one
                // pointer stripped for by-ref parameters).
                let param_ty = stub
                    .decl
                    .params
                    .iter()
                    .find(|p| p.name == slot.name)
                    .map_or(CType::Int, |p| p.ty.clone());
                let (local_ty, pass_by_ref) = match (&param_ty, by_ref) {
                    (CType::Pointer(inner), true) => ((**inner).clone(), true),
                    _ => (param_ty.clone(), false),
                };
                body.push(CStmt::decl(var.clone(), local_ty));
                body.push(CStmt::expr(CExpr::call(
                    "flick_decode_slot",
                    vec![ident("_msg"), ident(&var).addr_of()],
                )));
                args.push(if pass_by_ref {
                    ident(&var).addr_of()
                } else {
                    ident(&var)
                });
            }
            let work = format!(
                "{}_work",
                crate::emit_c::sanitize_c(&format!(
                    "{}_{}",
                    presc.interface.replace("::", "_"),
                    plan.op.name
                ))
            );
            body.push(CStmt::expr(CExpr::call(work, args)));
            body.push(CStmt::Return(Some(CExpr::Int(0))));
            // Scope the arm's locals: each case body becomes a block.
            cases.push(SwitchCase {
                values: vec![plan.op.request_code as i64],
                body: vec![CStmt::Block(body)],
            });
        }
        cases.push(SwitchCase {
            values: vec![],
            body: vec![CStmt::Return(Some(CExpr::Int(-1)))],
        });
        CFunction {
            name: format!("{}_dispatch", presc.interface.replace("::", "_")),
            ret: CType::Int,
            params: vec![
                CParam {
                    name: "_proc".into(),
                    ty: CType::UInt,
                },
                CParam {
                    name: "_msg".into(),
                    ty: CType::ptr(CType::named("FLICK_BUF")),
                },
            ],
            body: Some(vec![CStmt::Switch {
                scrutinee: ident("_proc"),
                cases,
            }]),
        }
    }
}

/// Replaces non-identifier characters for C names.
#[must_use]
pub fn sanitize_c(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

trait CloneWithBody {
    fn clone_with_body(&self, body: Vec<CStmt>) -> CFunction;
}

impl CloneWithBody for CFunction {
    fn clone_with_body(&self, body: Vec<CStmt>) -> CFunction {
        CFunction {
            name: self.name.clone(),
            ret: self.ret.clone(),
            params: self.params.clone(),
            body: Some(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transport;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn c_for(idl: &str, iface: &str, t: Transport) -> String {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation");
        BackEnd::new(t).compile(&p).expect("compiles").c_source
    }

    #[test]
    fn mail_stub_has_expected_signature_and_marshal() {
        let src = c_for(
            "interface Mail { void send(in string msg); };",
            "Mail",
            Transport::OncTcp,
        );
        assert!(
            src.contains("void Mail_send(Mail obj, char *msg, CORBA_Environment *ev)"),
            "{src}"
        );
        assert!(src.contains("strlen(msg)"), "{src}");
        assert!(src.contains("flick_put_bytes(_buf, msg"), "{src}");
        assert!(src.contains("Mail_dispatch"), "{src}");
    }

    #[test]
    fn rect_stub_uses_chunk_pointer() {
        let src = c_for(
            r"
            struct Point { long x; long y; };
            struct Rect { Point min; Point max; };
            typedef sequence<Rect> RectSeq;
            interface I { void put(in RectSeq rs); };
            ",
            "I",
            Transport::OncTcp,
        );
        assert!(src.contains("flick_chunk(_buf, 16)"), "{src}");
        assert!(src.contains("_chunk"), "{src}");
        // Constant offsets through the chunk pointer.
        assert!(src.contains(" + 12"), "{src}");
        // Hoisted loop check.
        assert!(src.contains("space check hoisted out of the loop"), "{src}");
    }

    #[test]
    fn int_array_memcpy_in_native_cdr() {
        let src = c_for(
            "typedef sequence<long> Ints; interface I { void put(in Ints v); };",
            "I",
            Transport::IiopTcp,
        );
        assert!(src.contains("memcpy run"), "{src}");
        assert!(src.contains("flick_put_bytes"), "{src}");
    }

    #[test]
    fn dispatch_switches_on_request_code() {
        let src = c_for(
            "interface I { void a(); void b(); };",
            "I",
            Transport::OncTcp,
        );
        assert!(src.contains("switch (_proc)"), "{src}");
        assert!(src.contains("case 1:"), "{src}");
        assert!(src.contains("case 2:"), "{src}");
        assert!(src.contains("default:"), "{src}");
    }
}
