//! §3.1 storage classification and fixed-region packing.
//!
//! Flick analyzes the storage requirements of every message by
//! traversing its MINT/PRES representation, classifying each region as
//! *fixed*, *variable but bounded*, or *variable and unbounded*
//! ([`SizeClass`]).  For fixed regions it computes a *packed layout* —
//! exact offsets for every atomic component ([`Packed`]) — which is
//! what both the single hoisted space check and the §3.2 chunk pointer
//! are built from.

use flick_pres::{PresC, PresId, PresNode};

use crate::encoding::{Encoding, WirePrim};

/// A language-neutral path to a value inside a stub (the bridge from
/// packed offsets back to C lvalues / Rust expressions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValPath {
    /// The root value a plan node describes.
    Root,
    /// A struct member of the inner path.
    Field(Box<ValPath>, String),
    /// A constant-index element of a fixed array.
    Index(Box<ValPath>, u64),
}

impl ValPath {
    /// `self.field`
    #[must_use]
    pub fn field(self, name: &str) -> ValPath {
        ValPath::Field(Box::new(self), name.to_string())
    }

    /// `self[i]`
    #[must_use]
    pub fn index(self, i: u64) -> ValPath {
        ValPath::Index(Box::new(self), i)
    }
}

/// How big a message region is (§3.1's three storage classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// Exactly this many encoded bytes.
    Fixed(u64),
    /// Variable, but never more than this many bytes.
    Bounded(u64),
    /// No static bound.
    Unbounded,
}

impl SizeClass {
    /// Sequential composition of two regions.
    #[must_use]
    pub fn then(self, other: SizeClass) -> SizeClass {
        use SizeClass::{Bounded, Fixed, Unbounded};
        match (self, other) {
            (Unbounded, _) | (_, Unbounded) => Unbounded,
            (Fixed(a), Fixed(b)) => Fixed(a + b),
            (Fixed(a) | Bounded(a), Fixed(b) | Bounded(b)) => Bounded(a + b),
        }
    }

    /// The static upper bound, if any.
    #[must_use]
    pub fn bound(self) -> Option<u64> {
        match self {
            SizeClass::Fixed(n) | SizeClass::Bounded(n) => Some(n),
            SizeClass::Unbounded => None,
        }
    }
}

/// One atomic component of a packed region.
#[derive(Clone, Debug, PartialEq)]
pub enum PackedItem {
    /// A single scalar at a constant offset.
    Prim {
        /// Offset from the chunk base.
        offset: u64,
        /// Wire form.
        prim: WirePrim,
        /// Where the value lives.
        path: ValPath,
    },
    /// A run of `count` layout-identical scalars — block-copied when
    /// the `memcpy` optimization is on, or loop-stored when off.
    PrimRun {
        /// Offset from the chunk base.
        offset: u64,
        /// Wire form of one element.
        prim: WirePrim,
        /// Element count.
        count: u64,
        /// The array value.
        path: ValPath,
        /// Trailing pad bytes after the run (XDR opaque padding).
        pad: u64,
    },
}

impl PackedItem {
    /// Offset of the item's first byte.
    #[must_use]
    pub fn offset(&self) -> u64 {
        match self {
            PackedItem::Prim { offset, .. } | PackedItem::PrimRun { offset, .. } => *offset,
        }
    }
}

/// A fixed-layout region: exact size plus every component's offset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Packed {
    /// Total encoded size in bytes (including internal padding).
    pub size: u64,
    /// Largest alignment of any component.
    pub align: u64,
    /// Components in marshal order.
    pub items: Vec<PackedItem>,
}

/// Attempts to pack the subtree at `pres` into a fixed layout starting
/// at a `base`-aligned offset.  Returns `None` when the region is
/// variable-size (or when the encoding interleaves type descriptors,
/// which defeat cross-field chunking).
#[must_use]
pub fn pack(presc: &PresC, enc: &Encoding, pres: PresId) -> Option<Packed> {
    if enc.typed_descriptors {
        // Mach-style encodings put a descriptor before every item;
        // only a single primitive run can be chunked, handled by the
        // planner directly.
        return None;
    }
    let mut p = Packed::default();
    pack_into(presc, enc, pres, ValPath::Root, &mut p)?;
    Some(p)
}

fn pack_into(
    presc: &PresC,
    enc: &Encoding,
    pres: PresId,
    path: ValPath,
    out: &mut Packed,
) -> Option<()> {
    match presc.pres.get(pres) {
        PresNode::Void => Some(()),
        PresNode::Direct { mint, .. } => {
            let prim = enc.prim(&presc.mint, *mint);
            push_prim(out, prim, path);
            Some(())
        }
        PresNode::EnumMap { .. } => {
            let prim = enc.prim_for_size(4, false);
            push_prim(out, prim, path);
            Some(())
        }
        PresNode::FixedArray { elem, len, .. } => {
            // A fixed array of directly-mapped scalars becomes one run;
            // anything else unrolls element by element.
            if let PresNode::Direct { mint, .. } = presc.pres.get(*elem) {
                let prim = enc.elem_prim(&presc.mint, *mint);
                push_run(out, prim, *len, path, enc);
                Some(())
            } else {
                for i in 0..*len {
                    pack_into(presc, enc, *elem, path.clone().index(i), out)?;
                }
                Some(())
            }
        }
        PresNode::StructMap { fields, .. } => {
            for (name, f) in fields {
                pack_into(presc, enc, *f, path.clone().field(name), out)?;
            }
            Some(())
        }
        // Everything else is variable-size.
        PresNode::OptPtr { .. }
        | PresNode::TerminatedString { .. }
        | PresNode::CountedSeq { .. }
        | PresNode::UnionMap { .. }
        | PresNode::OptionalPtr { .. } => None,
    }
}

/// Offset bookkeeping shared by [`pack`] and the emitters' decode
/// walks, so both sides compute identical layouts by construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayoutCursor {
    /// Bytes consumed so far (next free offset before alignment).
    pub size: u64,
    /// Largest alignment seen.
    pub align: u64,
}

impl LayoutCursor {
    /// Places one scalar slot; returns its offset.
    pub fn place_prim(&mut self, prim: WirePrim) -> u64 {
        let align = u64::from(prim.align);
        let offset = align_up(self.size, align);
        self.size = offset + u64::from(prim.slot);
        self.align = self.align.max(align.max(1));
        offset
    }

    /// Places a contiguous run of `count` scalars (requires
    /// `slot == size`); returns `(offset, trailing_pad)`.
    pub fn place_run(&mut self, prim: WirePrim, count: u64, enc: &Encoding) -> (u64, u64) {
        debug_assert_eq!(prim.slot, prim.size, "runs must tile exactly");
        let align = u64::from(prim.align);
        let offset = align_up(self.size, align);
        let data = count * u64::from(prim.size);
        let pad = match enc.pad_unit {
            Some(u) => align_up(data, u64::from(u)) - data,
            None => 0,
        };
        self.size = offset + data + pad;
        self.align = self.align.max(align.max(1));
        (offset, pad)
    }
}

fn push_prim(out: &mut Packed, prim: WirePrim, path: ValPath) {
    let mut cur = LayoutCursor {
        size: out.size,
        align: out.align,
    };
    let offset = cur.place_prim(prim);
    out.items.push(PackedItem::Prim { offset, prim, path });
    out.size = cur.size;
    out.align = cur.align;
}

fn push_run(out: &mut Packed, prim: WirePrim, count: u64, path: ValPath, enc: &Encoding) {
    // A run only works when elements tile without per-element padding
    // (slot == size); otherwise unroll into slots.
    if prim.slot == prim.size {
        let mut cur = LayoutCursor {
            size: out.size,
            align: out.align,
        };
        let (offset, pad) = cur.place_run(prim, count, enc);
        out.items.push(PackedItem::PrimRun {
            offset,
            prim,
            count,
            path,
            pad,
        });
        out.size = cur.size;
        out.align = cur.align;
    } else {
        for i in 0..count {
            push_prim(out, prim, path.clone().index(i));
        }
    }
}

/// Rounds `n` up to a multiple of `align`.
#[must_use]
pub fn align_up(n: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

/// Classifies the encoded size of the subtree at `pres` (§3.1).
///
/// Cycles (recursive types) classify as [`SizeClass::Unbounded`].
#[must_use]
pub fn size_class(presc: &PresC, enc: &Encoding, pres: PresId) -> SizeClass {
    size_class_inner(presc, enc, pres, &mut Vec::new())
}

fn size_class_inner(
    presc: &PresC,
    enc: &Encoding,
    pres: PresId,
    on_path: &mut Vec<PresId>,
) -> SizeClass {
    if on_path.contains(&pres) {
        return SizeClass::Unbounded;
    }
    on_path.push(pres);
    let r = match presc.pres.get(pres) {
        PresNode::Void => SizeClass::Fixed(0),
        PresNode::Direct { mint, .. } => {
            let p = enc.prim(&presc.mint, *mint);
            SizeClass::Fixed(u64::from(p.slot) + enc.descriptor_bytes(1))
        }
        PresNode::EnumMap { .. } => SizeClass::Fixed(4 + enc.descriptor_bytes(1)),
        PresNode::FixedArray { elem, len, .. }
            if matches!(presc.pres.get(*elem), PresNode::Direct { .. }) =>
        {
            let PresNode::Direct { mint, .. } = presc.pres.get(*elem) else {
                unreachable!()
            };
            let p = enc.elem_prim(&presc.mint, *mint);
            let data = u64::from(p.slot) * len;
            let pad = match enc.pad_unit {
                Some(u) => align_up(data, u64::from(u)) - data,
                None => 0,
            };
            SizeClass::Fixed(data + pad + enc.descriptor_bytes(*len))
        }
        PresNode::FixedArray { elem, len, .. } => {
            match size_class_inner(presc, enc, *elem, on_path) {
                SizeClass::Fixed(n) => {
                    // Descriptor counted once per array, not per element.
                    let elem_data = n - enc.descriptor_bytes(1);
                    let data = elem_data * len;
                    let pad = match enc.pad_unit {
                        Some(u) => align_up(data, u64::from(u)) - data,
                        None => 0,
                    };
                    SizeClass::Fixed(data + pad + enc.descriptor_bytes(*len))
                }
                SizeClass::Bounded(n) => SizeClass::Bounded(n * len),
                SizeClass::Unbounded => SizeClass::Unbounded,
            }
        }
        PresNode::TerminatedString { mint, .. } => {
            let bound = match presc.mint.get(*mint) {
                flick_mint::MintNode::Array { len, .. } => len.max,
                _ => None,
            };
            match bound {
                Some(b) => {
                    // Count prefix + bytes (+ NUL) + padding, worst case.
                    let body = b + u64::from(matches!(
                        enc.string_wire,
                        crate::encoding::StringWire::CountedNul
                    ));
                    let padded = match enc.pad_unit {
                        Some(u) => align_up(body, u64::from(u)),
                        None => body,
                    };
                    SizeClass::Bounded(4 + padded + enc.descriptor_bytes(b))
                }
                None => SizeClass::Unbounded,
            }
        }
        PresNode::OptPtr { mint, elem, .. } | PresNode::CountedSeq { mint, elem, .. } => {
            let bound = match presc.mint.get(*mint) {
                flick_mint::MintNode::Array { len, .. } => len.max,
                _ => None,
            };
            let elem_class = if let PresNode::Direct { mint: em, .. } = presc.pres.get(*elem) {
                SizeClass::Fixed(u64::from(enc.elem_prim(&presc.mint, *em).slot))
            } else {
                size_class_inner(presc, enc, *elem, on_path)
            };
            match (bound, elem_class) {
                (Some(b), SizeClass::Fixed(n) | SizeClass::Bounded(n)) => {
                    SizeClass::Bounded(4 + n * b + enc.descriptor_bytes(b))
                }
                _ => SizeClass::Unbounded,
            }
        }
        PresNode::StructMap { fields, .. } => {
            let mut acc = SizeClass::Fixed(0);
            for (_, f) in fields {
                acc = acc.then(size_class_inner(presc, enc, *f, on_path));
            }
            // Struct-internal alignment padding: bound by a pack() when
            // the struct is fully fixed.
            if let SizeClass::Fixed(_) = acc {
                if let Some(p) = pack(presc, enc, pres) {
                    acc = SizeClass::Fixed(p.size);
                }
            }
            acc
        }
        PresNode::UnionMap {
            discrim,
            cases,
            default,
            ..
        } => {
            let mut worst: u64 = 0;
            let mut any_unbounded = false;
            for (_, _, c) in cases {
                match size_class_inner(presc, enc, *c, on_path) {
                    SizeClass::Fixed(n) | SizeClass::Bounded(n) => worst = worst.max(n),
                    SizeClass::Unbounded => any_unbounded = true,
                }
            }
            if let Some((_, d)) = default {
                match size_class_inner(presc, enc, *d, on_path) {
                    SizeClass::Fixed(n) | SizeClass::Bounded(n) => worst = worst.max(n),
                    SizeClass::Unbounded => any_unbounded = true,
                }
            }
            let d = size_class_inner(presc, enc, *discrim, on_path);
            if any_unbounded {
                SizeClass::Unbounded
            } else {
                match d {
                    SizeClass::Fixed(n) | SizeClass::Bounded(n) => SizeClass::Bounded(n + worst),
                    SizeClass::Unbounded => SizeClass::Unbounded,
                }
            }
        }
        PresNode::OptionalPtr { elem, .. } => match size_class_inner(presc, enc, *elem, on_path) {
            SizeClass::Fixed(n) | SizeClass::Bounded(n) => SizeClass::Bounded(4 + n),
            SizeClass::Unbounded => SizeClass::Unbounded,
        },
    };
    on_path.pop();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn presc_for(idl: &str, iface: &str) -> PresC {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation")
    }

    /// The rectangle structure from §4: two points of two longs.
    const RECT_IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        interface I { void put(in Rect r); };
    ";

    #[test]
    fn rect_packs_to_16_bytes() {
        let p = presc_for(RECT_IDL, "I");
        let stub = &p.stubs[0];
        let enc = Encoding::xdr();
        let packed = pack(&p, &enc, stub.request.slots[0].pres).expect("rect is fixed");
        assert_eq!(packed.size, 16);
        assert_eq!(packed.items.len(), 4);
        let offsets: Vec<u64> = packed.items.iter().map(PackedItem::offset).collect();
        assert_eq!(offsets, [0, 4, 8, 12]);
        // Paths dig through the nested structs.
        match &packed.items[3] {
            PackedItem::Prim { path, .. } => {
                assert_eq!(*path, ValPath::Root.field("max").field("y"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fixed_char_array_becomes_run() {
        // The 16-byte tag inside the paper's stat-like struct.
        let p = presc_for(
            r"
            struct Stat { long fields[30]; char tag[16]; };
            interface I { void put(in Stat s); };
            ",
            "I",
        );
        let enc = Encoding::cdr_be();
        let packed = pack(&p, &enc, p.stubs[0].request.slots[0].pres).expect("fixed");
        // 30 longs (one run) + 16 chars (one run) = 2 items, 136 bytes.
        assert_eq!(packed.items.len(), 2);
        assert_eq!(packed.size, 136);
        match &packed.items[1] {
            PackedItem::PrimRun { offset, count, .. } => {
                assert_eq!(*offset, 120);
                assert_eq!(*count, 16);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn xdr_char_array_packs_as_bytes() {
        // XDR packs byte-wide array elements contiguously (opaque
        // convention), padding the run to a 4-byte boundary: char[5]
        // occupies 8 bytes as one run.
        let p = presc_for(
            "struct T { char tag[5]; }; interface I { void put(in T t); };",
            "I",
        );
        let enc = Encoding::xdr();
        let packed = pack(&p, &enc, p.stubs[0].request.slots[0].pres).expect("fixed");
        assert_eq!(packed.items.len(), 1);
        assert_eq!(packed.size, 8);
        match &packed.items[0] {
            PackedItem::PrimRun {
                count: 5, pad: 3, ..
            } => {}
            other => panic!("expected padded byte run, got {other:?}"),
        }
    }

    #[test]
    fn paper_dirent_stat_is_136_bytes_under_xdr() {
        // §4: 30 4-byte integers + one 16-byte character array = 136
        // bytes of encoded data.
        let p = presc_for(
            "struct Stat { long fields[30]; char tag[16]; }; interface I { void put(in Stat s); };",
            "I",
        );
        let packed = pack(&p, &Encoding::xdr(), p.stubs[0].request.slots[0].pres).unwrap();
        assert_eq!(packed.size, 136);
        assert_eq!(packed.items.len(), 2);
    }

    #[test]
    fn string_defeats_packing() {
        let p = presc_for(
            "struct D { string name; long n; }; interface I { void put(in D d); };",
            "I",
        );
        assert!(pack(&p, &Encoding::xdr(), p.stubs[0].request.slots[0].pres).is_none());
    }

    #[test]
    fn cdr_alignment_padding_counted() {
        // char + double: CDR aligns the double to 8 → size 16.
        let p = presc_for(
            "struct M { char c; double d; }; interface I { void put(in M m); };",
            "I",
        );
        let packed = pack(&p, &Encoding::cdr_be(), p.stubs[0].request.slots[0].pres).unwrap();
        assert_eq!(packed.size, 16);
        assert_eq!(packed.items[1].offset(), 8);
        assert_eq!(packed.align, 8);
        // XDR widens the char instead: 4 + pad4 + 8 = 12? No: XDR
        // aligns the 8-byte slot to 4 only.
        let packed_xdr = pack(&p, &Encoding::xdr(), p.stubs[0].request.slots[0].pres).unwrap();
        assert_eq!(packed_xdr.size, 12);
    }

    #[test]
    fn size_classes() {
        let p = presc_for(
            r"
            struct Fixed { long a; long b; };
            typedef sequence<long, 16> Bounded;
            typedef sequence<long> Unbounded;
            interface I {
                void f(in Fixed x);
                void g(in Bounded x);
                void h(in Unbounded x);
                void s(in string<10> x);
                void u(in string x);
            };
            ",
            "I",
        );
        let enc = Encoding::xdr();
        let class_of = |op: &str| {
            let stub = p
                .stubs
                .iter()
                .find(|s| s.op.name == op)
                .unwrap_or_else(|| panic!("stub {op}"));
            size_class(&p, &enc, stub.request.slots[0].pres)
        };
        assert_eq!(class_of("f"), SizeClass::Fixed(8));
        assert_eq!(class_of("g"), SizeClass::Bounded(4 + 16 * 4));
        assert_eq!(class_of("h"), SizeClass::Unbounded);
        // string<10>: 4 + 12 (10 padded to 12) = 16.
        assert_eq!(class_of("s"), SizeClass::Bounded(16));
        assert_eq!(class_of("u"), SizeClass::Unbounded);
    }

    #[test]
    fn recursive_type_is_unbounded() {
        let aoi = flick_frontend_onc::parse_str(
            "l.x",
            r"
            struct node { int v; node *next; };
            program L { version V { void put(node n) = 1; } = 1; } = 9;
            ",
        );
        let mut d = Diagnostics::new();
        let p = flick_presgen::rpcgen_c(&aoi, "L", Side::Client, &mut d).unwrap();
        let enc = Encoding::xdr();
        assert_eq!(
            size_class(&p, &enc, p.stubs[0].request.slots[0].pres),
            SizeClass::Unbounded
        );
    }

    #[test]
    fn size_class_composition() {
        use SizeClass::{Bounded, Fixed, Unbounded};
        assert_eq!(Fixed(4).then(Fixed(8)), Fixed(12));
        assert_eq!(Fixed(4).then(Bounded(8)), Bounded(12));
        assert_eq!(Bounded(4).then(Fixed(8)), Bounded(12));
        assert_eq!(Fixed(4).then(Unbounded), Unbounded);
        assert_eq!(Unbounded.then(Fixed(1)), Unbounded);
        assert_eq!(Fixed(9).bound(), Some(9));
        assert_eq!(Unbounded.bound(), None);
    }

    #[test]
    fn mach_descriptors_defeat_packing() {
        let p = presc_for(RECT_IDL, "I");
        assert!(pack(&p, &Encoding::mach3(), p.stubs[0].request.slots[0].pres).is_none());
    }
}
