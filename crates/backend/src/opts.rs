//! Optimization toggles.
//!
//! Each flag corresponds to one of the paper's §3 techniques; the
//! ablation benchmarks flip them individually to reproduce the quoted
//! improvements (12% buffer management, 14% chunking, 60–70% string
//! `memcpy`, 60% inlining).

/// Individual switches for the back-end optimizations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptFlags {
    /// §3.1 marshal-buffer management: hoist space checks to cover
    /// whole fixed/bounded regions.  Off ⇒ one check per atomic datum.
    pub hoist_checks: bool,
    /// §3.2 chunking: address fixed-layout regions via constant
    /// offsets from a chunk pointer.  Off ⇒ bump a cursor per datum.
    pub chunking: bool,
    /// §3.2 `memcpy` runs for atomic arrays whose encoded and
    /// presented layouts coincide.
    pub memcpy: bool,
    /// §3.3 inline marshal/unmarshal code into the stubs.  Off ⇒ emit
    /// one out-of-line function per named aggregate type and call it
    /// per datum (the shape traditional IDL compilers produce).
    pub inline_marshal: bool,
    /// §3.1 parameter management: allow stack/in-place presentation of
    /// server `in` parameters (Rust: borrow from the receive buffer).
    pub param_mgmt: bool,
    /// §3.1 dead-slot elimination: drop marshal/unmarshal work (and
    /// wire bytes) for slots the PRES mapping never surfaces in the
    /// presented signature.  Off ⇒ zero-fill on encode, discard on
    /// decode.
    pub dead_slot: bool,
    /// §3.1 reuse analysis: classify slots whose whole conversion tree
    /// can be presented out of per-call pooled storage as
    /// arena-resident, so the server path decodes without per-call
    /// heap allocation.  Off ⇒ every slot presents into owned storage.
    pub reuse_slots: bool,
    /// §3.4 common-prefix merging: decode the unmarshal prefix shared
    /// by every dispatch arm once, above the demux switch.
    pub merge_prefix: bool,
    /// §3.2 reply copy-avoidance: reply slots byte-identical to
    /// request storage reuse the request bytes (one coalesced copy)
    /// instead of re-marshaling.
    pub reply_alias: bool,
    /// Gateway transcode fusion: encoding-pair rewrites collapse runs
    /// whose source and target layouts agree into bulk copies.  Off ⇒
    /// the generated transcoder re-reads and re-writes slot by slot
    /// (decode-to-presentation-then-re-encode shape).  No effect on
    /// endpoint stubs.
    pub fuse_transcode: bool,
    /// Variable-but-bounded threshold (bytes): bounded regions no
    /// larger than this get a single hoisted check (paper: 8 KB).
    pub bounded_threshold: u64,
}

impl OptFlags {
    /// Every optimization on — the Flick configuration.
    #[must_use]
    pub fn all() -> Self {
        OptFlags {
            hoist_checks: true,
            chunking: true,
            memcpy: true,
            inline_marshal: true,
            param_mgmt: true,
            dead_slot: true,
            reuse_slots: true,
            merge_prefix: true,
            reply_alias: true,
            fuse_transcode: true,
            bounded_threshold: 8 * 1024,
        }
    }

    /// Every optimization off — the shape of traditional stub code.
    #[must_use]
    pub fn none() -> Self {
        OptFlags {
            hoist_checks: false,
            chunking: false,
            memcpy: false,
            inline_marshal: false,
            param_mgmt: false,
            dead_slot: false,
            reuse_slots: false,
            merge_prefix: false,
            reply_alias: false,
            fuse_transcode: false,
            bounded_threshold: 8 * 1024,
        }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let a = OptFlags::all();
        assert!(a.hoist_checks && a.chunking && a.memcpy && a.inline_marshal && a.param_mgmt);
        assert!(a.dead_slot && a.reuse_slots && a.merge_prefix && a.reply_alias);
        assert!(a.fuse_transcode);
        let n = OptFlags::none();
        assert!(!(n.hoist_checks || n.chunking || n.memcpy || n.inline_marshal || n.param_mgmt));
        assert!(!(n.dead_slot || n.reuse_slots || n.merge_prefix || n.reply_alias));
        assert!(!n.fuse_transcode);
        assert_eq!(OptFlags::default(), OptFlags::all());
    }
}
