//! The per-stub plan cache: content-addressed memoization of lowering
//! and optimization.
//!
//! Every pass except `demux-switch` reads only the stub it rewrites,
//! so the expensive part of the backend — lower, verify, optimize —
//! can be memoized per stub, keyed by content:
//!
//! * [`StubKey::pres_hash`] — [`flick_pres::stub_hash`], a structural
//!   digest of everything the lowerer reads for the stub;
//! * [`StubKey::enc_fp`] — the wire-encoding fingerprint;
//! * [`StubKey::pipe_fp`] — the pass-pipeline fingerprint (pass list,
//!   order, per-pass configuration, lowering options, budget).
//!
//! Entries are held in a bounded LRU in memory and, when a cache
//! directory is configured, mirrored to disk so warm state survives
//! across processes.
//!
//! ## Serialization and `PresId` portability
//!
//! A cached [`StubPlan`] refers back into the presentation through
//! `PresId`s, which are arena indices — meaningless in another
//! process (or after an unrelated edit shifts the arena).  Entries
//! therefore serialize `PresId`s as positions in a *structural
//! expansion* of the stub's slot trees: a preorder walk that records
//! every visit (repeats of shared nodes included) and cuts only at
//! cycles.  That sequence is a function of the stub's structure alone
//! — the same structure covered by `pres_hash` — so position `i`
//! denotes the structurally-same node in any presentation with the
//! same hash, regardless of how its arena shares subtrees.  Packed
//! layouts are not stored at all; they are recomputed from the
//! presentation on load, exactly as the verifier would check them.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::{Path, PathBuf};

use flick_pres::{PresC, PresId, PresNode, Stub, StubKind};

use crate::encoding::{Encoding, Order, StringWire, WirePrim};
use crate::layout::{pack, SizeClass};
use crate::mir::{MsgPlan, PlanNode, PlanResult, SlotPlan, SlotStorage, StubPlan};

/// Version header of serialized entries; bump when the format or the
/// MIR it describes changes shape.
const CACHE_FORMAT: &str = "flick-plan-cache v2";

/// Guard against pathological structural expansions (deeply shared
/// DAGs expand multiplicatively).  Hitting the cap makes the stub
/// uncacheable, never incorrect.
const MAX_EXPANSION: usize = 1 << 20;

/// The content key one cached stub plan is filed under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StubKey {
    /// Structural digest of the stub's PRES/MINT inputs.
    pub pres_hash: u64,
    /// Encoding fingerprint.
    pub enc_fp: u64,
    /// Pass-pipeline fingerprint.
    pub pipe_fp: u64,
}

impl StubKey {
    /// On-disk file name for this key (48 hex digits).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}{:016x}{:016x}.plan",
            self.pres_hash, self.enc_fp, self.pipe_fp
        )
    }
}

/// Cumulative counters over a cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to a real compile.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
}

/// One stub's outcome in a compile, for `--explain-cache`.
#[derive(Clone, Debug)]
pub struct ExplainEntry {
    /// Stub name.
    pub stub: String,
    /// Whether the plan was served from cache.
    pub hit: bool,
    /// For hits: the tier (`memory`/`disk`).  For misses: why the key
    /// changed (`first compile`, `presentation changed`, …).
    pub detail: String,
}

/// What the cache did during one compile.
#[derive(Clone, Debug, Default)]
pub struct CacheReport {
    /// Stubs served from cache this compile.
    pub hits: u64,
    /// Stubs replanned this compile.
    pub misses: u64,
    /// Evictions triggered this compile.
    pub evictions: u64,
    /// Per-stub outcomes, in presentation order.
    pub entries: Vec<ExplainEntry>,
}

/// A bounded, optionally disk-backed store of optimized stub plans.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<StubKey, String>,
    order: VecDeque<StubKey>,
    dir: Option<PathBuf>,
    stats: CacheStats,
    /// Last-seen key per stub name — the basis for explain reasons.
    prev: HashMap<String, StubKey>,
}

impl PlanCache {
    /// An in-memory cache with the default capacity.
    #[must_use]
    pub fn in_memory() -> PlanCache {
        PlanCache::with_capacity(1024)
    }

    /// An in-memory cache bounded to `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: VecDeque::new(),
            dir: None,
            stats: CacheStats::default(),
            prev: HashMap::new(),
        }
    }

    /// A disk-backed cache rooted at `dir` (created if absent).  The
    /// persisted key index is loaded so cross-process recompiles can
    /// still explain *why* a stub missed.
    ///
    /// # Errors
    /// Returns a message if the directory cannot be created.
    pub fn with_dir(dir: &Path) -> Result<PlanCache, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("cache dir {}: {e}", dir.display()))?;
        let mut cache = PlanCache::in_memory();
        if let Ok(index) = std::fs::read_to_string(dir.join("index.tsv")) {
            for line in index.lines() {
                let mut cols = line.split('\t');
                let (Some(name), Some(p), Some(e), Some(f)) =
                    (cols.next(), cols.next(), cols.next(), cols.next())
                else {
                    continue;
                };
                let (Ok(pres_hash), Ok(enc_fp), Ok(pipe_fp)) = (
                    u64::from_str_radix(p, 16),
                    u64::from_str_radix(e, 16),
                    u64::from_str_radix(f, 16),
                ) else {
                    continue;
                };
                cache.prev.insert(
                    name.to_string(),
                    StubKey {
                        pres_hash,
                        enc_fp,
                        pipe_fp,
                    },
                );
            }
        }
        cache.dir = Some(dir.to_path_buf());
        Ok(cache)
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently held in memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetches the serialized entry for `key`, memory tier first, then
    /// disk (promoting into memory).  Does not touch hit/miss stats —
    /// the caller records the outcome once deserialization succeeds.
    pub(crate) fn fetch(&mut self, key: &StubKey) -> Option<(String, &'static str)> {
        if let Some(text) = self.entries.get(key) {
            let text = text.clone();
            self.touch(key);
            return Some((text, "memory"));
        }
        let path = self.dir.as_ref()?.join(key.file_name());
        let text = std::fs::read_to_string(path).ok()?;
        if !text.starts_with(CACHE_FORMAT) {
            return None;
        }
        self.insert_mem(*key, text.clone());
        Some((text, "disk"))
    }

    /// Stores a freshly compiled entry under `key` (and on disk, when
    /// a cache directory is configured — best effort).
    pub(crate) fn store(&mut self, key: StubKey, text: String) {
        if let Some(dir) = &self.dir {
            // A torn write must never be read back as a valid entry:
            // write to a temp name, then rename into place.
            let tmp = dir.join(format!("{}.tmp", key.file_name()));
            let path = dir.join(key.file_name());
            if std::fs::write(&tmp, &text).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        self.insert_mem(key, text);
    }

    pub(crate) fn record_hit(&mut self) {
        self.stats.hits += 1;
    }

    pub(crate) fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Why `stub`'s lookup under `key` missed, given what we last saw.
    pub(crate) fn miss_reason(&self, stub: &str, key: &StubKey) -> String {
        match self.prev.get(stub) {
            None => "first compile".to_string(),
            Some(prev) if prev.pres_hash != key.pres_hash => "presentation changed".to_string(),
            Some(prev) if prev.enc_fp != key.enc_fp => "encoding changed".to_string(),
            Some(prev) if prev.pipe_fp != key.pipe_fp => format!(
                "pass pipeline changed (fingerprint {:016x} -> {:016x})",
                prev.pipe_fp, key.pipe_fp
            ),
            Some(_) => "evicted or cold cache".to_string(),
        }
    }

    /// Records `stub`'s key for the next compile's explain output.
    pub(crate) fn remember(&mut self, stub: &str, key: StubKey) {
        self.prev.insert(stub.to_string(), key);
    }

    /// Writes the key index to disk so a later process can explain
    /// misses.  No-op for purely in-memory caches; best effort.
    pub(crate) fn persist(&self) {
        let Some(dir) = &self.dir else { return };
        let mut names: Vec<&String> = self.prev.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            let k = &self.prev[name];
            out.push_str(&format!(
                "{name}\t{:016x}\t{:016x}\t{:016x}\n",
                k.pres_hash, k.enc_fp, k.pipe_fp
            ));
        }
        let _ = std::fs::write(dir.join("index.tsv"), out);
    }

    fn insert_mem(&mut self, key: StubKey, text: String) {
        if self.entries.insert(key, text).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if self.entries.remove(&old).is_some() {
                self.stats.evictions += 1;
            }
        }
    }

    fn touch(&mut self, key: &StubKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            self.order.push_back(*key);
        }
    }
}

// ---------------------------------------------------------------------------
// PresId <-> structural position
// ---------------------------------------------------------------------------

/// The structural expansion of one stub's slot trees: `to_id[i]` is
/// the node at structural position `i`; `to_index` maps each node to
/// its *first* position.
struct PresIndex {
    to_id: Vec<PresId>,
    to_index: HashMap<PresId, u32>,
}

fn enumerate(presc: &PresC, stub: &Stub) -> Result<PresIndex, String> {
    let mut idx = PresIndex {
        to_id: Vec::new(),
        to_index: HashMap::new(),
    };
    let mut stack = Vec::new();
    for msg in [&stub.request, &stub.reply] {
        for slot in &msg.slots {
            expand(presc, slot.pres, &mut idx, &mut stack)?;
        }
    }
    Ok(idx)
}

fn expand(
    presc: &PresC,
    id: PresId,
    idx: &mut PresIndex,
    stack: &mut Vec<PresId>,
) -> Result<(), String> {
    // Cut only at cycles, not at sharing: repeats of a shared subtree
    // re-enumerate so positions depend on structure alone.
    if stack.contains(&id) {
        return Ok(());
    }
    if idx.to_id.len() >= MAX_EXPANSION {
        return Err(format!(
            "presentation expansion exceeds {MAX_EXPANSION} nodes"
        ));
    }
    let pos = idx.to_id.len() as u32;
    idx.to_id.push(id);
    idx.to_index.entry(id).or_insert(pos);
    stack.push(id);
    match presc.pres.get(id) {
        PresNode::Void
        | PresNode::Direct { .. }
        | PresNode::EnumMap { .. }
        | PresNode::TerminatedString { .. } => {}
        PresNode::FixedArray { elem, .. }
        | PresNode::OptPtr { elem, .. }
        | PresNode::CountedSeq { elem, .. }
        | PresNode::OptionalPtr { elem, .. } => expand(presc, *elem, idx, stack)?,
        PresNode::StructMap { fields, .. } => {
            for (_, f) in fields {
                expand(presc, *f, idx, stack)?;
            }
        }
        PresNode::UnionMap {
            discrim,
            cases,
            default,
            ..
        } => {
            expand(presc, *discrim, idx, stack)?;
            for (_, _, c) in cases {
                expand(presc, *c, idx, stack)?;
            }
            if let Some((_, d)) = default {
                expand(presc, *d, idx, stack)?;
            }
        }
    }
    stack.pop();
    Ok(())
}

// ---------------------------------------------------------------------------
// Token writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    out: String,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            out: format!("{CACHE_FORMAT}\n"),
        }
    }

    fn word(&mut self, tok: impl std::fmt::Display) {
        if !self.out.ends_with('\n') {
            self.out.push(' ');
        }
        self.out.push_str(&tok.to_string());
    }

    fn string(&mut self, s: &str) {
        let mut q = String::with_capacity(s.len() + 2);
        q.push('"');
        for c in s.chars() {
            match c {
                '"' => q.push_str("\\\""),
                '\\' => q.push_str("\\\\"),
                '\n' => q.push_str("\\n"),
                c => q.push(c),
            }
        }
        q.push('"');
        self.word(q);
    }

    fn opt_string(&mut self, s: Option<&str>) {
        match s {
            None => self.word("-"),
            Some(s) => self.string(s),
        }
    }

    fn opt_num(&mut self, v: Option<impl std::fmt::Display>) {
        match v {
            None => self.word("-"),
            Some(v) => self.word(v),
        }
    }

    fn boolean(&mut self, v: bool) {
        self.word(u8::from(v));
    }

    fn prim(&mut self, p: &WirePrim) {
        self.word(format!(
            "w{}:{}:{}:{}:{}:{}",
            p.size,
            p.slot,
            p.align,
            match p.order {
                Order::Big => 'B',
                Order::Little => 'L',
            },
            if p.signed { 's' } else { 'u' },
            if p.float { 'f' } else { 'i' },
        ));
    }

    fn class(&mut self, c: SizeClass) {
        match c {
            SizeClass::Unbounded => self.word("U"),
            SizeClass::Fixed(n) => self.word(format!("F{n}")),
            SizeClass::Bounded(n) => self.word(format!("B{n}")),
        }
    }
}

enum Tok {
    Word(String),
    Str(String),
}

struct Reader {
    toks: Vec<Tok>,
    pos: usize,
}

impl Reader {
    fn new(body: &str) -> Result<Reader, String> {
        let mut toks = Vec::new();
        let mut chars = body.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            if c == '"' {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated string".to_string()),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => return Err(format!("bad escape {other:?}")),
                        },
                        Some(ch) => s.push(ch),
                    }
                }
                toks.push(Tok::Str(s));
            } else {
                let mut w = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() {
                        break;
                    }
                    w.push(ch);
                    chars.next();
                }
                toks.push(Tok::Word(w));
            }
        }
        Ok(Reader { toks, pos: 0 })
    }

    fn next(&mut self) -> Result<&Tok, String> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| "unexpected end of entry".to_string())?;
        self.pos += 1;
        Ok(t)
    }

    fn word(&mut self) -> Result<&str, String> {
        match self.next()? {
            Tok::Word(w) => Ok(w),
            Tok::Str(_) => Err("expected word, found string".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Str(s) => Ok(s.clone()),
            Tok::Word(w) => Err(format!("expected string, found `{w}`")),
        }
    }

    fn num<T: std::str::FromStr>(&mut self) -> Result<T, String> {
        let w = self.word()?;
        w.parse().map_err(|_| format!("bad number `{w}`"))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        match self.word()? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(format!("bad bool `{other}`")),
        }
    }

    fn is_dash(&mut self) -> bool {
        if matches!(self.toks.get(self.pos), Some(Tok::Word(w)) if w == "-") {
            self.pos += 1;
            return true;
        }
        false
    }

    fn opt_num<T: std::str::FromStr>(&mut self) -> Result<Option<T>, String> {
        if self.is_dash() {
            return Ok(None);
        }
        self.num().map(Some)
    }

    fn opt_string(&mut self) -> Result<Option<String>, String> {
        if self.is_dash() {
            return Ok(None);
        }
        self.string().map(Some)
    }

    fn prim(&mut self) -> Result<WirePrim, String> {
        let w = self.word()?;
        let body = w
            .strip_prefix('w')
            .ok_or_else(|| format!("bad prim `{w}`"))?;
        let parts: Vec<&str> = body.split(':').collect();
        let [size, slot, align, order, signed, float] = parts.as_slice() else {
            return Err(format!("bad prim `{w}`"));
        };
        Ok(WirePrim {
            size: size.parse().map_err(|_| format!("bad prim `{w}`"))?,
            slot: slot.parse().map_err(|_| format!("bad prim `{w}`"))?,
            align: align.parse().map_err(|_| format!("bad prim `{w}`"))?,
            order: match *order {
                "B" => Order::Big,
                "L" => Order::Little,
                _ => return Err(format!("bad prim `{w}`")),
            },
            signed: *signed == "s",
            float: *float == "f",
        })
    }

    fn class(&mut self) -> Result<SizeClass, String> {
        let w = self.word()?;
        if w == "U" {
            return Ok(SizeClass::Unbounded);
        }
        let (kind, n) = w.split_at(1);
        let n: u64 = n.parse().map_err(|_| format!("bad class `{w}`"))?;
        match kind {
            "F" => Ok(SizeClass::Fixed(n)),
            "B" => Ok(SizeClass::Bounded(n)),
            _ => Err(format!("bad class `{w}`")),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

// ---------------------------------------------------------------------------
// Entry serialization
// ---------------------------------------------------------------------------

/// Serializes one optimized stub (plan + the outline bodies it needs)
/// into the portable cache text.
///
/// # Errors
/// Returns a message if the stub's structural expansion exceeds the
/// cap or a plan node references a presentation node outside it —
/// both mean "don't cache this stub", never a wrong entry.
pub(crate) fn serialize_unit(
    presc: &PresC,
    stub: &Stub,
    plan: &StubPlan,
    outlines: &BTreeMap<String, PlanNode>,
) -> Result<String, String> {
    let idx = enumerate(presc, stub)?;
    let mut w = Writer::new();
    w.string(&plan.name);
    w.word(match plan.kind {
        StubKind::ClientCall => 0,
        StubKind::ServerDispatch => 1,
        StubKind::ServerWork => 2,
        StubKind::OnewaySend => 3,
    });
    w.string(&plan.op.name);
    w.word(plan.op.request_code);
    w.string(&plan.op.wire_name);
    w.boolean(plan.op.oneway);
    write_msg(&mut w, &plan.request, &idx)?;
    write_msg(&mut w, &plan.reply, &idx)?;
    w.word(outlines.len());
    for (key, body) in outlines {
        w.string(key);
        write_node(&mut w, body, &idx)?;
    }
    Ok(w.out)
}

/// Reconstructs a cached stub plan against the *current* presentation
/// (whose stub must have the same content hash the entry was filed
/// under).
///
/// # Errors
/// Returns a message on any malformed or out-of-range token — the
/// caller demotes the lookup to a miss and replans.
pub(crate) fn deserialize_unit(
    presc: &PresC,
    enc: &Encoding,
    stub: &Stub,
    text: &str,
) -> Result<(StubPlan, BTreeMap<String, PlanNode>), String> {
    let body = text
        .strip_prefix(CACHE_FORMAT)
        .ok_or_else(|| "bad cache entry header".to_string())?;
    let idx = enumerate(presc, stub)?;
    let mut r = Reader::new(body)?;
    let name = r.string()?;
    let kind = match r.num::<u8>()? {
        0 => StubKind::ClientCall,
        1 => StubKind::ServerDispatch,
        2 => StubKind::ServerWork,
        3 => StubKind::OnewaySend,
        other => return Err(format!("bad stub kind {other}")),
    };
    let op = flick_pres::OpInfo {
        name: r.string()?,
        request_code: r.num()?,
        wire_name: r.string()?,
        oneway: r.boolean()?,
    };
    let request = read_msg(&mut r, presc, enc, &idx)?;
    let reply = read_msg(&mut r, presc, enc, &idx)?;
    let n: u64 = r.num()?;
    let mut outlines = BTreeMap::new();
    for _ in 0..n {
        let key = r.string()?;
        let body = read_node(&mut r, presc, enc, &idx)?;
        outlines.insert(key, body);
    }
    if !r.done() {
        return Err("trailing tokens in cache entry".to_string());
    }
    Ok((
        StubPlan {
            name,
            kind,
            op,
            request,
            reply,
        },
        outlines,
    ))
}

fn write_pres(w: &mut Writer, idx: &PresIndex, id: PresId) -> Result<(), String> {
    let pos = idx
        .to_index
        .get(&id)
        .ok_or("plan references a presentation node outside the stub")?;
    w.word(pos);
    Ok(())
}

fn read_pres(r: &mut Reader, idx: &PresIndex) -> Result<PresId, String> {
    let pos: u32 = r.num()?;
    idx.to_id
        .get(pos as usize)
        .copied()
        .ok_or_else(|| format!("presentation position {pos} out of range"))
}

fn write_msg(w: &mut Writer, msg: &MsgPlan, idx: &PresIndex) -> Result<(), String> {
    w.class(msg.class);
    w.opt_num(msg.hoisted);
    w.opt_num(msg.hoisted_capped);
    w.word(msg.slots.len());
    for slot in &msg.slots {
        w.string(&slot.name);
        w.boolean(slot.by_ref);
        w.boolean(slot.live);
        w.opt_num(slot.alias);
        w.boolean(slot.storage == SlotStorage::Arena);
        write_pres(w, idx, slot.pres)?;
        write_node(w, &slot.node, idx)?;
    }
    Ok(())
}

fn read_msg(
    r: &mut Reader,
    presc: &PresC,
    enc: &Encoding,
    idx: &PresIndex,
) -> Result<MsgPlan, String> {
    let class = r.class()?;
    let hoisted = r.opt_num()?;
    let hoisted_capped = r.opt_num()?;
    let n: u64 = r.num()?;
    let mut slots = Vec::new();
    for _ in 0..n {
        let name = r.string()?;
        let by_ref = r.boolean()?;
        let live = r.boolean()?;
        let alias = r.opt_num()?;
        let storage = if r.boolean()? {
            SlotStorage::Arena
        } else {
            SlotStorage::Owned
        };
        let pres = read_pres(r, idx)?;
        let node = read_node(r, presc, enc, idx)?;
        slots.push(SlotPlan {
            name,
            by_ref,
            live,
            alias,
            storage,
            pres,
            node,
        });
    }
    Ok(MsgPlan {
        class,
        hoisted,
        hoisted_capped,
        slots,
    })
}

fn write_node(w: &mut Writer, node: &PlanNode, idx: &PresIndex) -> Result<(), String> {
    match node {
        PlanNode::Void => w.word("void"),
        PlanNode::Prim { prim, descriptor } => {
            w.word("prim");
            w.prim(prim);
            w.opt_num(*descriptor);
        }
        PlanNode::Enum { prim } => {
            w.word("enum");
            w.prim(prim);
        }
        PlanNode::Packed {
            type_name, pres, ..
        } => {
            // The layout is a pure function of (presentation,
            // encoding); recompute on load rather than trusting bytes.
            w.word("packed");
            w.opt_string(type_name.as_deref());
            write_pres(w, idx, *pres)?;
        }
        PlanNode::MemcpyArray {
            prim,
            fixed_len,
            bound,
            counted,
            pad_unit,
            descriptor,
        } => {
            w.word("memcpy");
            w.prim(prim);
            w.opt_num(*fixed_len);
            w.opt_num(*bound);
            w.boolean(*counted);
            w.opt_num(*pad_unit);
            w.opt_num(*descriptor);
        }
        PlanNode::String {
            bound,
            style,
            pad_unit,
            borrow_ok,
            descriptor,
        } => {
            w.word("string");
            w.opt_num(*bound);
            w.word(match style {
                StringWire::CountedPadded => "CP",
                StringWire::CountedNul => "CN",
            });
            w.opt_num(*pad_unit);
            w.boolean(*borrow_ok);
            w.opt_num(*descriptor);
        }
        PlanNode::CountedArray {
            bound,
            elem,
            elem_class,
            elem_pres,
            elem_type,
            type_name,
            fields,
        } => {
            w.word("carray");
            w.opt_num(*bound);
            w.class(*elem_class);
            write_pres(w, idx, *elem_pres)?;
            w.string(elem_type);
            w.string(type_name);
            w.string(&fields.0);
            w.string(&fields.1);
            w.string(&fields.2);
            write_node(w, elem, idx)?;
        }
        PlanNode::FixedArray {
            len,
            elem,
            elem_pres,
            pres,
            elem_type,
        } => {
            w.word("farray");
            w.word(*len);
            write_pres(w, idx, *elem_pres)?;
            write_pres(w, idx, *pres)?;
            w.string(elem_type);
            write_node(w, elem, idx)?;
        }
        PlanNode::Struct {
            type_name,
            pres,
            fields,
        } => {
            w.word("struct");
            w.string(type_name);
            write_pres(w, idx, *pres)?;
            w.word(fields.len());
            for (name, f) in fields {
                w.string(name);
                write_node(w, f, idx)?;
            }
        }
        PlanNode::Union {
            type_name,
            disc_prim,
            cases,
            default,
        } => {
            w.word("union");
            w.string(type_name);
            w.prim(disc_prim);
            w.word(cases.len());
            for (v, name, c) in cases {
                w.word(*v);
                w.string(name);
                write_node(w, c, idx)?;
            }
            match default {
                None => w.word("-"),
                Some((name, d)) => {
                    w.word("+");
                    w.string(name);
                    write_node(w, d, idx)?;
                }
            }
        }
        PlanNode::Optional { elem, elem_type } => {
            w.word("optional");
            w.string(elem_type);
            write_node(w, elem, idx)?;
        }
        PlanNode::Outline { key } => {
            w.word("outline");
            w.string(key);
        }
    }
    Ok(())
}

fn read_node(
    r: &mut Reader,
    presc: &PresC,
    enc: &Encoding,
    idx: &PresIndex,
) -> Result<PlanNode, String> {
    let tag = r.word()?.to_string();
    Ok(match tag.as_str() {
        "void" => PlanNode::Void,
        "prim" => PlanNode::Prim {
            prim: r.prim()?,
            descriptor: r.opt_num()?,
        },
        "enum" => PlanNode::Enum { prim: r.prim()? },
        "packed" => {
            let type_name = r.opt_string()?;
            let pres = read_pres(r, idx)?;
            let layout = pack(presc, enc, pres)
                .ok_or("cached packed chunk no longer packs under this presentation")?;
            PlanNode::Packed {
                layout,
                type_name,
                pres,
            }
        }
        "memcpy" => PlanNode::MemcpyArray {
            prim: r.prim()?,
            fixed_len: r.opt_num()?,
            bound: r.opt_num()?,
            counted: r.boolean()?,
            pad_unit: r.opt_num()?,
            descriptor: r.opt_num()?,
        },
        "string" => PlanNode::String {
            bound: r.opt_num()?,
            style: match r.word()? {
                "CP" => StringWire::CountedPadded,
                "CN" => StringWire::CountedNul,
                other => return Err(format!("bad string style `{other}`")),
            },
            pad_unit: r.opt_num()?,
            borrow_ok: r.boolean()?,
            descriptor: r.opt_num()?,
        },
        "carray" => {
            let bound = r.opt_num()?;
            let elem_class = r.class()?;
            let elem_pres = read_pres(r, idx)?;
            let elem_type = r.string()?;
            let type_name = r.string()?;
            let fields = (r.string()?, r.string()?, r.string()?);
            let elem = Box::new(read_node(r, presc, enc, idx)?);
            PlanNode::CountedArray {
                bound,
                elem,
                elem_class,
                elem_pres,
                elem_type,
                type_name,
                fields,
            }
        }
        "farray" => {
            let len = r.num()?;
            let elem_pres = read_pres(r, idx)?;
            let pres = read_pres(r, idx)?;
            let elem_type = r.string()?;
            let elem = Box::new(read_node(r, presc, enc, idx)?);
            PlanNode::FixedArray {
                len,
                elem,
                elem_pres,
                pres,
                elem_type,
            }
        }
        "struct" => {
            let type_name = r.string()?;
            let pres = read_pres(r, idx)?;
            let n: u64 = r.num()?;
            let mut fields = Vec::new();
            for _ in 0..n {
                let name = r.string()?;
                fields.push((name, read_node(r, presc, enc, idx)?));
            }
            PlanNode::Struct {
                type_name,
                pres,
                fields,
            }
        }
        "union" => {
            let type_name = r.string()?;
            let disc_prim = r.prim()?;
            let n: u64 = r.num()?;
            let mut cases = Vec::new();
            for _ in 0..n {
                let v = r.num()?;
                let name = r.string()?;
                cases.push((v, name, read_node(r, presc, enc, idx)?));
            }
            let default = match r.word()? {
                "-" => None,
                "+" => {
                    let name = r.string()?;
                    Some((name, Box::new(read_node(r, presc, enc, idx)?)))
                }
                other => return Err(format!("bad union default marker `{other}`")),
            };
            PlanNode::Union {
                type_name,
                disc_prim,
                cases,
                default,
            }
        }
        "optional" => {
            let elem_type = r.string()?;
            PlanNode::Optional {
                elem: Box::new(read_node(r, presc, enc, idx)?),
                elem_type,
            }
        }
        "outline" => PlanNode::Outline { key: r.string()? },
        other => return Err(format!("bad plan node tag `{other}`")),
    })
}

/// Serialization helpers the backend uses around a cached compile.
pub(crate) type PlanUnit = (StubPlan, BTreeMap<String, PlanNode>);

/// Round-trips one optimized stub unit through the cache text format.
/// Exposed for the backend's miss path (serialize-then-store) and the
/// hit path (fetch-then-deserialize).
#[allow(dead_code)]
pub(crate) fn roundtrip_check(
    presc: &PresC,
    enc: &Encoding,
    stub: &Stub,
    plan: &StubPlan,
    outlines: &BTreeMap<String, PlanNode>,
) -> PlanResult<PlanUnit> {
    let text = serialize_unit(presc, stub, plan, outlines)?;
    deserialize_unit(presc, enc, stub, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::OptFlags;
    use crate::passes::{run_stub_pipeline, PassPipeline};
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn corba(idl: &str, iface: &str) -> PresC {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation")
    }

    fn unit_for(p: &PresC, enc: &Encoding, opts: &OptFlags) -> PlanUnit {
        let pipe = PassPipeline::from_opts(opts);
        let u = run_stub_pipeline(p, enc, &pipe, &p.stubs[0]).expect("pipeline");
        let mut stubs = u.mir.stubs;
        (stubs.remove(0), u.mir.outlines)
    }

    const IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        union U switch (long) { case 1: Point p; default: string s; };
        interface I { void put(in RectSeq rs, in U u, in string note); };
    ";

    #[test]
    fn roundtrip_preserves_optimized_plans() {
        let p = corba(IDL, "I");
        for (enc, opts) in [
            (Encoding::xdr(), OptFlags::all()),
            (Encoding::cdr_be(), OptFlags::all()),
            (Encoding::xdr(), OptFlags::none()),
            (Encoding::mach3(), OptFlags::all()),
        ] {
            let (plan, outlines) = unit_for(&p, &enc, &opts);
            let back = roundtrip_check(&p, &enc, &p.stubs[0], &plan, &outlines)
                .unwrap_or_else(|e| panic!("{} roundtrip: {e}", enc.name));
            assert_eq!(
                format!("{:?}", (&plan, &outlines)),
                format!("{:?}", (&back.0, &back.1)),
                "{} plans must survive the cache format",
                enc.name
            );
        }
    }

    #[test]
    fn roundtrip_preserves_recursive_outlines() {
        let aoi = flick_frontend_onc::parse_str(
            "l.x",
            r"
            struct node { int v; node *next; };
            program L { version V { void put(node n) = 1; } = 1; } = 9;
            ",
        );
        let mut d = Diagnostics::new();
        let p = flick_presgen::rpcgen_c(&aoi, "L", Side::Client, &mut d).unwrap();
        let stub = p
            .stubs
            .iter()
            .find(|s| !s.request.slots.is_empty())
            .expect("a stub with arguments");
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        let u = run_stub_pipeline(&p, &Encoding::xdr(), &pipe, stub).expect("pipeline");
        let plan = &u.mir.stubs[0];
        assert!(
            u.mir.outlines.contains_key("node"),
            "recursive body stays out of line"
        );
        let back = roundtrip_check(&p, &Encoding::xdr(), stub, plan, &u.mir.outlines).unwrap();
        assert_eq!(
            format!("{:?}", (plan, &u.mir.outlines)),
            format!("{:?}", (&back.0, &back.1))
        );
    }

    #[test]
    fn corrupt_entries_are_rejected_not_trusted() {
        let p = corba(IDL, "I");
        let enc = Encoding::xdr();
        let (plan, outlines) = unit_for(&p, &enc, &OptFlags::all());
        let text = serialize_unit(&p, &p.stubs[0], &plan, &outlines).unwrap();
        assert!(deserialize_unit(&p, &enc, &p.stubs[0], "garbage").is_err());
        let truncated = &text[..text.len() / 2];
        assert!(deserialize_unit(&p, &enc, &p.stubs[0], truncated).is_err());
        let mut trailing = text.clone();
        trailing.push_str(" 42");
        assert!(deserialize_unit(&p, &enc, &p.stubs[0], &trailing).is_err());
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let mut cache = PlanCache::with_capacity(2);
        let key = |i: u64| StubKey {
            pres_hash: i,
            enc_fp: 0,
            pipe_fp: 0,
        };
        cache.store(key(1), "one".into());
        cache.store(key(2), "two".into());
        assert!(cache.fetch(&key(1)).is_some()); // touch 1: now 2 is oldest
        cache.store(key(3), "three".into());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.fetch(&key(2)).is_none(), "2 was LRU");
        assert!(cache.fetch(&key(1)).is_some());
        assert!(cache.fetch(&key(3)).is_some());
    }

    #[test]
    fn disk_tier_survives_a_new_cache_and_explains_misses() {
        let dir = std::env::temp_dir().join(format!("flick-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = StubKey {
            pres_hash: 7,
            enc_fp: 8,
            pipe_fp: 9,
        };
        {
            let mut cache = PlanCache::with_dir(&dir).unwrap();
            cache.store(key, format!("{CACHE_FORMAT}\npayload"));
            cache.remember("I_put", key);
            cache.persist();
        }
        let mut fresh = PlanCache::with_dir(&dir).unwrap();
        let (text, source) = fresh.fetch(&key).expect("disk hit");
        assert_eq!(source, "disk");
        assert!(text.ends_with("payload"));
        // The persisted index lets a new process name the change.
        let changed = StubKey {
            pres_hash: 1,
            ..key
        };
        assert_eq!(fresh.miss_reason("I_put", &changed), "presentation changed");
        let repipe = StubKey { pipe_fp: 1, ..key };
        let reason = fresh.miss_reason("I_put", &repipe);
        assert!(reason.starts_with("pass pipeline changed"), "{reason}");
        assert!(
            reason.contains("0000000000000009 -> 0000000000000001"),
            "old and new fingerprints must be printed: {reason}"
        );
        assert_eq!(fresh.miss_reason("other", &key), "first compile");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn structural_positions_ignore_arena_numbering() {
        // Two presentations of the same IDL have identical expansions;
        // serialize against one, deserialize against the other.
        let a = corba(IDL, "I");
        let b = corba(IDL, "I");
        let enc = Encoding::xdr();
        let (plan, outlines) = unit_for(&a, &enc, &OptFlags::all());
        let text = serialize_unit(&a, &a.stubs[0], &plan, &outlines).unwrap();
        let (back, back_out) = deserialize_unit(&b, &enc, &b.stubs[0], &text).unwrap();
        let (direct, direct_out) = unit_for(&b, &enc, &OptFlags::all());
        assert_eq!(
            format!("{:?}", (&direct, &direct_out)),
            format!("{:?}", (&back, &back_out)),
            "a cached plan must be usable against a fresh equivalent presentation"
        );
    }
}
