//! MIR verifier: structural invariants the emitters rely on.
//!
//! Run between passes in debug/test builds (and wherever
//! `BackEnd::verify_mir` is set, e.g. stub regeneration), so a broken
//! rewrite fails at the pass that introduced it rather than as
//! garbled generated code.  Checks:
//!
//! * every `Outline` call site resolves to a registered body;
//! * every `Packed` layout matches a fresh re-pack of its PRES node
//!   (cursor discipline), its items are in offset order, non-
//!   overlapping, and within the chunk size;
//! * `MemcpyArray` shape consistency (fixed XOR counted, element
//!   actually block-copyable);
//! * hoisted message checks agree with the message's size class, and
//!   the capped form never exceeds the uncapped one.

use flick_pres::PresC;

use crate::encoding::Encoding;
use crate::layout::pack;
use crate::mir::{PlanNode, StubPlans};

/// Checks every invariant over `mir`.
///
/// # Errors
/// Returns a description of the first violated invariant.
pub fn verify(mir: &StubPlans, presc: &PresC, enc: &Encoding) -> Result<(), String> {
    for stub in &mir.stubs {
        for (dir, msg) in [("request", &stub.request), ("reply", &stub.reply)] {
            let at = |what: &str| format!("stub {} {dir}: {what}", stub.name);
            if let Some(n) = msg.hoisted {
                match msg.class.bound() {
                    Some(b) if b == n => {}
                    other => {
                        return Err(at(&format!(
                            "hoisted check of {n} bytes disagrees with class bound {other:?}"
                        )))
                    }
                }
            }
            if let Some(n) = msg.hoisted_capped {
                if msg.hoisted != Some(n) {
                    return Err(at(&format!(
                        "capped hoist {n} without matching uncapped hoist {:?}",
                        msg.hoisted
                    )));
                }
            }
            for slot in &msg.slots {
                verify_node(&slot.node, mir, presc, enc)
                    .map_err(|e| at(&format!("slot {}: {e}", slot.name)))?;
            }
        }
    }
    for (key, body) in &mir.outlines {
        verify_node(body, mir, presc, enc).map_err(|e| format!("outline {key}: {e}"))?;
    }
    Ok(())
}

fn verify_node(
    node: &PlanNode,
    mir: &StubPlans,
    presc: &PresC,
    enc: &Encoding,
) -> Result<(), String> {
    match node {
        PlanNode::Outline { key } if !mir.outlines.contains_key(key) => {
            return Err(format!("outline call `{key}` has no registered body"));
        }
        PlanNode::Packed { layout, pres, .. } => {
            match pack(presc, enc, *pres) {
                Some(fresh) if fresh == *layout => {}
                Some(_) => {
                    return Err(format!(
                        "packed chunk layout went stale (re-pack of its PRES node differs): \
                         size {} align {}",
                        layout.size, layout.align
                    ))
                }
                None => return Err("packed chunk over a PRES node that no longer packs".into()),
            }
            let mut end = 0u64;
            for item in &layout.items {
                let off = item.offset();
                if off < end {
                    return Err(format!(
                        "packed items overlap: item at offset {off} begins before {end}"
                    ));
                }
                end = off
                    + match item {
                        crate::layout::PackedItem::Prim { prim, .. } => u64::from(prim.size),
                        crate::layout::PackedItem::PrimRun {
                            prim, count, pad, ..
                        } => u64::from(prim.size) * *count + *pad,
                    };
            }
            if end > layout.size {
                return Err(format!(
                    "packed items end at {end}, past the chunk size {}",
                    layout.size
                ));
            }
        }
        PlanNode::MemcpyArray {
            prim,
            fixed_len,
            counted,
            ..
        } => {
            if fixed_len.is_some() == *counted {
                return Err(format!(
                    "memcpy array must be fixed xor counted (fixed_len {fixed_len:?}, \
                     counted {counted})"
                ));
            }
            if !prim.memcpy_compatible(prim.size) {
                return Err(format!("memcpy array over non-copyable element {prim:?}"));
            }
        }
        _ => {}
    }
    let mut result = Ok(());
    // Recurse manually so the first error wins.
    match node {
        PlanNode::Struct { fields, .. } => {
            for (name, f) in fields {
                result = verify_node(f, mir, presc, enc).map_err(|e| format!("field {name}: {e}"));
                if result.is_err() {
                    break;
                }
            }
        }
        PlanNode::Union { cases, default, .. } => {
            for (_, name, c) in cases {
                verify_node(c, mir, presc, enc).map_err(|e| format!("case {name}: {e}"))?;
            }
            if let Some((name, d)) = default {
                result =
                    verify_node(d, mir, presc, enc).map_err(|e| format!("default {name}: {e}"));
            }
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => {
            result = verify_node(elem, mir, presc, enc).map_err(|e| format!("element: {e}"));
        }
        _ => {}
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::OptFlags;
    use crate::plan::plan_presc_full;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn full(idl: &str, iface: &str) -> (StubPlans, PresC) {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation");
        let mir = plan_presc_full(&p, &Encoding::xdr(), &OptFlags::all()).expect("plans");
        (mir, p)
    }

    const IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); };
    ";

    #[test]
    fn optimized_plans_verify_clean() {
        let (mir, p) = full(IDL, "I");
        verify(&mir, &p, &Encoding::xdr()).expect("valid MIR");
    }

    #[test]
    fn corrupted_mir_is_rejected() {
        let (mir, p) = full(IDL, "I");
        let enc = Encoding::xdr();

        // Dangling outline call.
        let mut bad = mir.clone();
        bad.stubs[0].request.slots[0].node = PlanNode::Outline {
            key: "NoSuchBody".into(),
        };
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("no registered body"));

        // Hoist that disagrees with the size class.
        let mut bad = mir.clone();
        bad.stubs[0].request.hoisted = Some(3);
        assert!(verify(&bad, &p, &enc).unwrap_err().contains("disagrees"));

        // Stale packed layout: shrink the chunk under its items.
        let mut bad = mir;
        fn break_packed(n: &mut PlanNode) -> bool {
            match n {
                PlanNode::Packed { layout, .. } => {
                    layout.size = 1;
                    true
                }
                PlanNode::CountedArray { elem, .. }
                | PlanNode::FixedArray { elem, .. }
                | PlanNode::Optional { elem, .. } => break_packed(elem),
                _ => false,
            }
        }
        assert!(break_packed(&mut bad.stubs[0].request.slots[0].node));
        assert!(verify(&bad, &p, &enc).is_err());
    }
}
