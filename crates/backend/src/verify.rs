//! MIR verifier: structural invariants the emitters rely on.
//!
//! Run between passes in debug/test builds (and wherever
//! `BackEnd::verify_mir` is set, e.g. stub regeneration), so a broken
//! rewrite fails at the pass that introduced it rather than as
//! garbled generated code.  Checks:
//!
//! * every `Outline` call site resolves to a registered body;
//! * every `Packed` layout matches a fresh re-pack of its PRES node
//!   (cursor discipline), its items are in offset order, non-
//!   overlapping, and within the chunk size;
//! * `MemcpyArray` shape consistency (fixed XOR counted, element
//!   actually block-copyable);
//! * hoisted message checks agree with the message's size class, and
//!   the capped form never exceeds the uncapped one;
//! * slot liveness: a message's plan slots are an ordered subsequence
//!   of the presentation's bindings, dropping only *dead* bindings
//!   (only `dead-slot` may remove work, and only work the PRES
//!   mapping never surfaces);
//! * alias safety: a `reply-alias` mark points at a live request slot
//!   whose plan is still *structurally identical* to the reply slot's,
//!   of fixed wire size, under a position-independent encoding — so a
//!   later pass that mutates either side's plan invalidates the mark
//!   and fails verification instead of emitting a stale byte reuse;
//! * prefix safety: a `merge-prefix` hoist on a demux-trie node
//!   promises that every operation reachable below leads with the
//!   hoisted count, hoists never nest, and typed-descriptor encodings
//!   carry none;
//! * storage safety: a `reuse-slots` arena mark promises the slot's
//!   whole plan presents without owned storage; an arena-classified
//!   reply slot must carry an alias mark (otherwise its value would
//!   escape the call's receive buffer), and an aliased reply must stay
//!   arena-classified (the copy-on-write `Echoed` contract answers
//!   `Unchanged` from the request buffer — owned storage there would
//!   mean a mutation without a copy).

use flick_pres::PresC;

use crate::encoding::Encoding;
use crate::layout::pack;
use crate::mir::{
    Demux, DemuxArm, DemuxNode, MsgPlan, PlanNode, PrefixStep, SlotStorage, StubPlan, StubPlans,
};
use crate::passes::reply_alias_position_independent;
use crate::passes::reuse::arena_presentable_slot;

/// Checks every invariant over `mir`.
///
/// # Errors
/// Returns a description of the first violated invariant.
pub fn verify(mir: &StubPlans, presc: &PresC, enc: &Encoding) -> Result<(), String> {
    for stub in &mir.stubs {
        for (dir, msg) in [("request", &stub.request), ("reply", &stub.reply)] {
            let at = |what: &str| format!("stub {} {dir}: {what}", stub.name);
            if let Some(n) = msg.hoisted {
                match msg.class.bound() {
                    Some(b) if b == n => {}
                    other => {
                        return Err(at(&format!(
                            "hoisted check of {n} bytes disagrees with class bound {other:?}"
                        )))
                    }
                }
            }
            if let Some(n) = msg.hoisted_capped {
                if msg.hoisted != Some(n) {
                    return Err(at(&format!(
                        "capped hoist {n} without matching uncapped hoist {:?}",
                        msg.hoisted
                    )));
                }
            }
            for slot in &msg.slots {
                verify_node(&slot.node, mir, presc, enc)
                    .map_err(|e| at(&format!("slot {}: {e}", slot.name)))?;
            }
            if let Some(src) = presc.stubs.iter().find(|s| s.name == stub.name) {
                let bindings = if dir == "request" {
                    &src.request.slots
                } else {
                    &src.reply.slots
                };
                verify_liveness(msg, bindings).map_err(|e| at(&e))?;
            }
        }
        verify_aliases(stub, enc)?;
        verify_storage(stub, mir)?;
    }
    for (key, body) in &mir.outlines {
        verify_node(body, mir, presc, enc).map_err(|e| format!("outline {key}: {e}"))?;
    }
    if let Demux::Trie(root) = &mir.demux {
        verify_prefixes(root, false, mir, enc)?;
    }
    Ok(())
}

/// Hoisted demux prefixes (`merge-prefix` marks): a prefix promises
/// that *every* operation reachable below decodes exactly those steps
/// first, so the dispatcher may read them once above the word switch.
/// Re-checked after every pass, like alias marks: a later rewrite
/// that changes an arm's leading slot must fail here, not emit a
/// dispatcher that hands a stale count to a slot that never asked.
fn verify_prefixes(
    node: &DemuxNode,
    hoisted_above: bool,
    mir: &StubPlans,
    enc: &Encoding,
) -> Result<(), String> {
    let hoisted_here = !node.prefix.is_empty();
    if hoisted_here {
        if enc.typed_descriptors {
            return Err(format!(
                "demux trie word {}: hoisted prefix under typed-descriptor encoding {}",
                node.word, enc.name
            ));
        }
        if hoisted_above {
            return Err(format!(
                "demux trie word {}: nested hoisted prefixes (an arm would \
                 consume the shared count twice)",
                node.word
            ));
        }
        for step in &node.prefix {
            match step {
                PrefixStep::LenU32 => {}
            }
        }
        verify_arms_lead_with_count(node, mir)?;
    }
    for (_, arm) in &node.arms {
        if let DemuxArm::Descend(child) = arm {
            verify_prefixes(child, hoisted_above || hoisted_here, mir, enc)?;
        }
    }
    Ok(())
}

fn verify_arms_lead_with_count(node: &DemuxNode, mir: &StubPlans) -> Result<(), String> {
    for (_, arm) in &node.arms {
        match arm {
            DemuxArm::Op(name) => {
                let Some(stub) = mir.stubs.iter().find(|s| &s.op.name == name) else {
                    return Err(format!(
                        "demux trie arm dispatches unknown operation `{name}`"
                    ));
                };
                if !crate::passes::merge_prefix::leads_with_len_u32(stub) {
                    return Err(format!(
                        "hoisted prefix above `{name}`, whose request does not \
                         begin with an aligned u32 count",
                    ));
                }
            }
            DemuxArm::Descend(child) => verify_arms_lead_with_count(child, mir)?,
        }
    }
    Ok(())
}

/// Slot liveness: plan slots must be an ordered subsequence of the
/// presentation's bindings, every *live* binding must still have
/// exactly one slot, and each surviving slot's liveness flag must
/// match its binding's.
fn verify_liveness(msg: &MsgPlan, bindings: &[flick_pres::ParamBinding]) -> Result<(), String> {
    let mut next = 0usize;
    for slot in &msg.slots {
        let found = bindings[next..]
            .iter()
            .position(|b| b.c_name == slot.name)
            .map(|off| next + off);
        let Some(i) = found else {
            return Err(format!(
                "slot {} has no binding (or slots are out of binding order)",
                slot.name
            ));
        };
        for skipped in &bindings[next..i] {
            if skipped.live {
                return Err(format!(
                    "live binding {} lost its slot (only dead slots may be removed)",
                    skipped.c_name
                ));
            }
        }
        if slot.live != bindings[i].live {
            return Err(format!(
                "slot {} liveness flag ({}) disagrees with its binding ({})",
                slot.name, slot.live, bindings[i].live
            ));
        }
        next = i + 1;
    }
    for rest in &bindings[next..] {
        if rest.live {
            return Err(format!(
                "live binding {} lost its slot (only dead slots may be removed)",
                rest.c_name
            ));
        }
    }
    Ok(())
}

/// Storage safety for `reuse-slots` marks (see module docs).
fn verify_storage(stub: &StubPlan, mir: &StubPlans) -> Result<(), String> {
    let at = |what: &str| format!("stub {}: {what}", stub.name);
    for slot in &stub.request.slots {
        if slot.storage == SlotStorage::Arena && !arena_presentable_slot(&slot.node, &mir.outlines)
        {
            return Err(at(&format!(
                "request slot {} is arena-classified but its plan cannot \
                 live in the call arena (a decode step must allocate)",
                slot.name
            )));
        }
    }
    for slot in &stub.reply.slots {
        if slot.storage == SlotStorage::Arena && slot.alias.is_none() {
            return Err(at(&format!(
                "reply slot {} is arena-classified without an alias mark: \
                 its value would escape the call's receive buffer",
                slot.name
            )));
        }
        if slot.alias.is_some() && slot.storage != SlotStorage::Arena {
            return Err(at(&format!(
                "aliased reply slot {} lost its arena classification — the \
                 copy-on-write contract would mutate through owned storage \
                 without a copy",
                slot.name
            )));
        }
    }
    Ok(())
}

/// Alias safety for `reply-alias` marks (see module docs).
fn verify_aliases(stub: &crate::mir::StubPlan, enc: &Encoding) -> Result<(), String> {
    let at = |what: &str| format!("stub {}: {what}", stub.name);
    for slot in &stub.request.slots {
        if slot.alias.is_some() {
            return Err(at(&format!(
                "request slot {} carries an alias mark",
                slot.name
            )));
        }
    }
    for slot in &stub.reply.slots {
        let Some(i) = slot.alias else { continue };
        if stub.reply.slots.iter().filter(|s| s.live).count() != 1 {
            return Err(at(&format!(
                "reply slot {} aliased in a multi-slot reply (the Echoed \
                 contract replaces the operation's sole reply value)",
                slot.name
            )));
        }
        if !reply_alias_position_independent(enc) {
            return Err(at(&format!(
                "reply slot {} aliased under position-dependent encoding {}",
                slot.name, enc.name
            )));
        }
        let Some(req) = stub.request.slots.get(i) else {
            return Err(at(&format!(
                "reply slot {} aliases out-of-range request slot {i}",
                slot.name
            )));
        };
        if !slot.live || !req.live {
            return Err(at(&format!(
                "reply slot {} aliases through a dead slot",
                slot.name
            )));
        }
        if !matches!(
            slot.node,
            PlanNode::Prim { .. } | PlanNode::Enum { .. } | PlanNode::Packed { .. }
        ) {
            return Err(at(&format!(
                "reply slot {} aliased with a variable-size plan",
                slot.name
            )));
        }
        if slot.node != req.node {
            return Err(at(&format!(
                "reply slot {} no longer structurally matches request slot {} \
                 (a later pass mutated one side after reply-alias ran)",
                slot.name, req.name
            )));
        }
    }
    Ok(())
}

fn verify_node(
    node: &PlanNode,
    mir: &StubPlans,
    presc: &PresC,
    enc: &Encoding,
) -> Result<(), String> {
    match node {
        PlanNode::Outline { key } if !mir.outlines.contains_key(key) => {
            return Err(format!("outline call `{key}` has no registered body"));
        }
        PlanNode::Packed { layout, pres, .. } => {
            match pack(presc, enc, *pres) {
                Some(fresh) if fresh == *layout => {}
                Some(_) => {
                    return Err(format!(
                        "packed chunk layout went stale (re-pack of its PRES node differs): \
                         size {} align {}",
                        layout.size, layout.align
                    ))
                }
                None => return Err("packed chunk over a PRES node that no longer packs".into()),
            }
            let mut end = 0u64;
            for item in &layout.items {
                let off = item.offset();
                if off < end {
                    return Err(format!(
                        "packed items overlap: item at offset {off} begins before {end}"
                    ));
                }
                end = off
                    + match item {
                        crate::layout::PackedItem::Prim { prim, .. } => u64::from(prim.size),
                        crate::layout::PackedItem::PrimRun {
                            prim, count, pad, ..
                        } => u64::from(prim.size) * *count + *pad,
                    };
            }
            if end > layout.size {
                return Err(format!(
                    "packed items end at {end}, past the chunk size {}",
                    layout.size
                ));
            }
        }
        PlanNode::MemcpyArray {
            prim,
            fixed_len,
            counted,
            ..
        } => {
            if fixed_len.is_some() == *counted {
                return Err(format!(
                    "memcpy array must be fixed xor counted (fixed_len {fixed_len:?}, \
                     counted {counted})"
                ));
            }
            if !prim.memcpy_compatible(prim.size) {
                return Err(format!("memcpy array over non-copyable element {prim:?}"));
            }
        }
        _ => {}
    }
    let mut result = Ok(());
    // Recurse manually so the first error wins.
    match node {
        PlanNode::Struct { fields, .. } => {
            for (name, f) in fields {
                result = verify_node(f, mir, presc, enc).map_err(|e| format!("field {name}: {e}"));
                if result.is_err() {
                    break;
                }
            }
        }
        PlanNode::Union { cases, default, .. } => {
            for (_, name, c) in cases {
                verify_node(c, mir, presc, enc).map_err(|e| format!("case {name}: {e}"))?;
            }
            if let Some((name, d)) = default {
                result =
                    verify_node(d, mir, presc, enc).map_err(|e| format!("default {name}: {e}"));
            }
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => {
            result = verify_node(elem, mir, presc, enc).map_err(|e| format!("element: {e}"));
        }
        _ => {}
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::OptFlags;
    use crate::plan::plan_presc_full;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn full(idl: &str, iface: &str) -> (StubPlans, PresC) {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        let p = flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation");
        let mir = plan_presc_full(&p, &Encoding::xdr(), &OptFlags::all()).expect("plans");
        (mir, p)
    }

    const IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); };
    ";

    #[test]
    fn optimized_plans_verify_clean() {
        let (mir, p) = full(IDL, "I");
        verify(&mir, &p, &Encoding::xdr()).expect("valid MIR");
    }

    #[test]
    fn corrupted_mir_is_rejected() {
        let (mir, p) = full(IDL, "I");
        let enc = Encoding::xdr();

        // Dangling outline call.
        let mut bad = mir.clone();
        bad.stubs[0].request.slots[0].node = PlanNode::Outline {
            key: "NoSuchBody".into(),
        };
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("no registered body"));

        // Hoist that disagrees with the size class.
        let mut bad = mir.clone();
        bad.stubs[0].request.hoisted = Some(3);
        assert!(verify(&bad, &p, &enc).unwrap_err().contains("disagrees"));

        // Stale packed layout: shrink the chunk under its items.
        let mut bad = mir;
        fn break_packed(n: &mut PlanNode) -> bool {
            match n {
                PlanNode::Packed { layout, .. } => {
                    layout.size = 1;
                    true
                }
                PlanNode::CountedArray { elem, .. }
                | PlanNode::FixedArray { elem, .. }
                | PlanNode::Optional { elem, .. } => break_packed(elem),
                _ => false,
            }
        }
        assert!(break_packed(&mut bad.stubs[0].request.slots[0].node));
        assert!(verify(&bad, &p, &enc).is_err());
    }

    // One `long` parameter, so `_return` has exactly one structural
    // match and `reply-alias` can pair them unambiguously.
    const ECHO_IDL: &str = "interface E { long echo(in long v, in string tag); };";

    #[test]
    fn dropping_a_live_slot_is_rejected() {
        let (mir, p) = full(ECHO_IDL, "E");
        let enc = Encoding::xdr();

        // Only `dead-slot` may remove a slot, and only a dead one.
        let mut bad = mir.clone();
        bad.stubs[0].request.slots.remove(0);
        assert!(
            verify(&bad, &p, &enc)
                .unwrap_err()
                .contains("lost its slot"),
            "a vanished live slot must fail liveness"
        );

        // A surviving slot must agree with its binding about liveness.
        let mut bad = mir;
        bad.stubs[0].request.slots[0].live = false;
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("disagrees with its binding"));
    }

    #[test]
    fn corrupted_alias_marks_are_rejected() {
        let (mir, p) = full(ECHO_IDL, "E");
        let enc = Encoding::xdr();
        verify(&mir, &p, &enc).expect("clean plans verify");
        let aliased = mir
            .stubs
            .iter()
            .any(|s| s.reply.slots.iter().any(|r| r.alias.is_some()));
        assert!(aliased, "reply-alias marks `_return` on an echo under XDR");

        // Alias mark on the request side is never legal.
        let mut bad = mir.clone();
        bad.stubs[0].request.slots[0].alias = Some(0);
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("carries an alias mark"));

        // Out-of-range request index.
        let mut bad = mir.clone();
        for s in &mut bad.stubs {
            for r in &mut s.reply.slots {
                if r.alias.is_some() {
                    r.alias = Some(99);
                }
            }
        }
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("out-of-range request slot"));

        // A later pass mutating one side of the pair goes stale.
        let mut bad = mir.clone();
        for s in &mut bad.stubs {
            let Some(i) = s.reply.slots.iter().find_map(|r| r.alias) else {
                continue;
            };
            if let PlanNode::Prim { prim, .. } = &mut s.request.slots[i].node {
                prim.size = 8;
            }
        }
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("no longer structurally matches"));

        // Position-dependent encodings may never alias.
        let mut cdr = enc.clone();
        cdr.widen_to_word = false;
        assert!(verify(&mir, &p, &cdr)
            .unwrap_err()
            .contains("position-dependent encoding"));
    }

    #[test]
    fn corrupted_storage_marks_are_rejected() {
        let (mir, p) = full(ECHO_IDL, "E");
        let enc = Encoding::xdr();
        verify(&mir, &p, &enc).expect("clean plans verify");
        // reuse-slots classifies the scalar request slot arena, and
        // reply-alias classifies the aliased `_return`.
        assert!(
            mir.stubs[0]
                .request
                .slots
                .iter()
                .any(|s| s.storage == SlotStorage::Arena),
            "reuse-slots marks the scalar request slot"
        );

        // An arena mark over a plan that must own storage (here the
        // client-side string, which may not borrow) cannot present in
        // the call arena.
        let mut bad = mir.clone();
        for s in &mut bad.stubs[0].request.slots {
            if matches!(s.node, PlanNode::String { .. }) {
                s.storage = SlotStorage::Arena;
            }
        }
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("cannot live in the call arena"));

        // An arena-classified reply slot whose alias mark vanished
        // would escape its call scope.
        let mut bad = mir.clone();
        for s in &mut bad.stubs {
            for r in &mut s.reply.slots {
                r.alias = None;
            }
        }
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("escape the call's receive buffer"));

        // An aliased reply downgraded to owned storage breaks the
        // copy-on-write contract (a mutation without a copy).
        let mut bad = mir.clone();
        for s in &mut bad.stubs {
            for r in &mut s.reply.slots {
                if r.alias.is_some() {
                    r.storage = SlotStorage::Owned;
                }
            }
        }
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("without a copy"));
    }

    #[test]
    fn alias_in_multi_slot_reply_is_rejected() {
        // Two live reply slots (`_return` and the out parameter): the
        // pass must not mark, and a corrupted mark must not verify.
        let idl = "interface E2 { long pair(in long v, out long w); };";
        let (mir, p) = full(idl, "E2");
        let enc = Encoding::xdr();
        verify(&mir, &p, &enc).expect("clean plans verify");
        assert!(
            mir.stubs[0].reply.slots.iter().all(|r| r.alias.is_none()),
            "reply-alias must skip multi-slot replies"
        );

        let mut bad = mir.clone();
        let slot = &mut bad.stubs[0].reply.slots[0];
        slot.alias = Some(0);
        slot.storage = SlotStorage::Arena;
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("multi-slot reply"));
    }

    #[test]
    fn corrupted_prefix_marks_are_rejected() {
        use crate::mir::{Demux, DemuxArm, DemuxNode, PrefixStep};

        // Both operations lead with a counted array, so merge-prefix
        // hoists their shared count at the root of the demux trie.
        let idl = r"
            typedef sequence<long> Ints;
            interface S { void put_a(in Ints a); void put_b(in Ints b); };
        ";
        let (mir, p) = full(idl, "S");
        let enc = Encoding::xdr();
        verify(&mir, &p, &enc).expect("clean plans verify");
        let Demux::Trie(root) = &mir.demux else {
            panic!("word-wise demux expected");
        };
        assert_eq!(
            root.prefix,
            vec![PrefixStep::LenU32],
            "merge-prefix hoists the shared count at the root"
        );

        // Nesting: a descendant repeating the hoist would make every
        // arm below consume the count twice.
        let mut bad = mir.clone();
        fn mark_first_descendant(n: &mut DemuxNode) -> bool {
            for (_, arm) in &mut n.arms {
                if let DemuxArm::Descend(child) = arm {
                    child.prefix = vec![PrefixStep::LenU32];
                    return true;
                }
            }
            false
        }
        let Demux::Trie(root) = &mut bad.demux else {
            unreachable!()
        };
        assert!(mark_first_descendant(root), "put_* share a word prefix");
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("nested hoisted prefixes"));

        // Typed-descriptor encodings interleave descriptors with the
        // data, so no shared count ever leads the body.
        assert!(verify(&mir, &p, &Encoding::mach3())
            .unwrap_err()
            .contains("typed-descriptor encoding"));

        // A hoist above an operation that does not lead with a count
        // (here: a later rewrite replaced the leading counted array).
        let mut bad = mir.clone();
        bad.stubs[0].request.slots[0].node = PlanNode::Prim {
            prim: crate::encoding::WirePrim {
                size: 4,
                slot: 4,
                align: 4,
                order: crate::encoding::Order::Big,
                signed: true,
                float: false,
            },
            descriptor: None,
        };
        assert!(verify(&bad, &p, &enc)
            .unwrap_err()
            .contains("does not begin with an aligned u32 count"));
    }
}
