//! Wire-format descriptions.
//!
//! An [`Encoding`] is the table a back end consults to learn how a
//! MINT atom travels: its encoded size, alignment, byte order, and how
//! counted data is framed.  The layout analysis and plan construction
//! are generic over this table — that is what lets one optimization
//! library serve the IIOP, ONC, Mach, and Fluke back ends.

use flick_mint::{MintGraph, MintId, MintNode, ScalarKind};

/// Byte order of encoded multi-byte primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Big-endian.
    Big,
    /// Little-endian.
    Little,
}

impl Order {
    /// The host's native order.
    #[must_use]
    pub fn native() -> Self {
        if cfg!(target_endian = "little") {
            Order::Little
        } else {
            Order::Big
        }
    }

    /// True when this is the host's native order (a `memcpy`
    /// precondition for multi-byte scalars).
    #[must_use]
    pub fn is_native(self) -> bool {
        self == Self::native()
    }
}

/// How one primitive value is encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WirePrim {
    /// Bytes of payload actually carrying the value.
    pub size: u8,
    /// Encoded slot size (XDR widens sub-word scalars to 4 bytes).
    pub slot: u8,
    /// Alignment of the slot relative to the stream start.
    pub align: u8,
    /// Byte order.
    pub order: Order,
    /// Signedness matters only for widening (sign- vs zero-extend).
    pub signed: bool,
    /// True for IEEE-754 values (changes the presented Rust/C type,
    /// not the byte layout).
    pub float: bool,
}

impl WirePrim {
    /// True when an in-memory array of `elem_size`-byte values can be
    /// block-copied to/from the wire: sizes match (no widening, no
    /// padding) and multi-byte values are in native order.
    #[must_use]
    pub fn memcpy_compatible(&self, elem_size: u8) -> bool {
        self.size == elem_size
            && self.slot == self.size
            && (self.size == 1 || self.order.is_native())
    }
}

/// How strings travel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StringWire {
    /// XDR: u32 byte count, bytes, zero padding to a 4-byte boundary.
    CountedPadded,
    /// CDR: u32 count *including* a NUL terminator, bytes, NUL.
    CountedNul,
}

/// A complete wire-format description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Encoding {
    /// Stable name (`"xdr"`, `"cdr-be"`, `"cdr-le"`, `"mach3"`,
    /// `"fluke"`).
    pub name: &'static str,
    /// Byte order of multi-byte primitives.
    pub order: Order,
    /// Whether sub-word scalars widen to 4-byte slots (XDR) or pack at
    /// natural size and alignment (CDR).
    pub widen_to_word: bool,
    /// String framing.
    pub string_wire: StringWire,
    /// Whether variable data is padded to 4-byte units (XDR).
    pub pad_unit: Option<u8>,
    /// Whether each data item is preceded by a Mach-style type
    /// descriptor word.
    pub typed_descriptors: bool,
}

impl Encoding {
    /// ONC RPC's XDR: big-endian 4-byte units.
    #[must_use]
    pub fn xdr() -> Self {
        Encoding {
            name: "xdr",
            order: Order::Big,
            widen_to_word: true,
            string_wire: StringWire::CountedPadded,
            pad_unit: Some(4),
            typed_descriptors: false,
        }
    }

    /// CDR in forced big-endian order.
    #[must_use]
    pub fn cdr_be() -> Self {
        Encoding {
            name: "cdr-be",
            order: Order::Big,
            widen_to_word: false,
            string_wire: StringWire::CountedNul,
            pad_unit: None,
            typed_descriptors: false,
        }
    }

    /// CDR in forced little-endian order.
    #[must_use]
    pub fn cdr_le() -> Self {
        Encoding {
            name: "cdr-le",
            order: Order::Little,
            widen_to_word: false,
            string_wire: StringWire::CountedNul,
            pad_unit: None,
            typed_descriptors: false,
        }
    }

    /// CDR in the sender's native order (GIOP lets the sender choose —
    /// the configuration that makes `memcpy` runs valid on any host).
    #[must_use]
    pub fn cdr_native() -> Self {
        match Order::native() {
            Order::Big => Self::cdr_be(),
            Order::Little => Self::cdr_le(),
        }
    }

    /// Mach 3 typed messages: native order, per-item descriptors.
    #[must_use]
    pub fn mach3() -> Self {
        Encoding {
            name: "mach3",
            order: Order::native(),
            widen_to_word: false,
            string_wire: StringWire::CountedPadded,
            pad_unit: Some(4),
            typed_descriptors: true,
        }
    }

    /// Fluke IPC: native-order words (the register window is modeled
    /// in the transport; the byte encoding is word-oriented).
    #[must_use]
    pub fn fluke() -> Self {
        Encoding {
            name: "fluke",
            order: Order::native(),
            widen_to_word: true,
            string_wire: StringWire::CountedPadded,
            pad_unit: Some(4),
            typed_descriptors: false,
        }
    }

    /// Looks an encoding up by its stable name (the `--transcode=SRC:DST`
    /// vocabulary; `"cdr-native"` resolves to the host's order).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "xdr" => Self::xdr(),
            "cdr-be" => Self::cdr_be(),
            "cdr-le" => Self::cdr_le(),
            "cdr-native" => Self::cdr_native(),
            "mach3" => Self::mach3(),
            "fluke" => Self::fluke(),
            _ => return None,
        })
    }

    /// The wire form of a MINT atom.
    ///
    /// # Panics
    /// Panics if `id` is not an atomic node.
    #[must_use]
    pub fn prim(&self, mint: &MintGraph, id: MintId) -> WirePrim {
        let (size, signed): (u8, bool) = match mint.get(id) {
            MintNode::Integer { min, range } => {
                let signed = *min < 0;
                let bytes = match range {
                    r if *r <= u64::from(u8::MAX) => 1,
                    r if *r <= u64::from(u16::MAX) => 2,
                    r if *r <= u64::from(u32::MAX) => 4,
                    _ => 8,
                };
                (bytes, signed)
            }
            MintNode::Scalar(ScalarKind::Bool) => (1, false),
            MintNode::Scalar(ScalarKind::Char8) => (1, false),
            MintNode::Scalar(ScalarKind::Float32) => (4, false),
            MintNode::Scalar(ScalarKind::Float64) => (8, false),
            other => panic!("prim() on non-atomic MINT node {other:?}"),
        };
        let mut p = self.prim_for_size(size, signed);
        p.float = matches!(
            mint.get(id),
            MintNode::Scalar(ScalarKind::Float32 | ScalarKind::Float64)
        );
        p
    }

    /// The wire form for a raw scalar of `size` bytes.
    #[must_use]
    pub fn prim_for_size(&self, size: u8, signed: bool) -> WirePrim {
        let slot = if self.widen_to_word && size < 4 {
            4
        } else {
            size
        };
        WirePrim {
            size,
            slot,
            align: if self.widen_to_word { 4 } else { slot },
            order: self.order,
            signed,
            float: false,
        }
    }

    /// The wire form of a MINT atom *as an array element*.
    ///
    /// Word-oriented encodings widen standalone sub-word scalars, but
    /// byte-wide array elements pack contiguously (XDR `opaque` and
    /// `string`; the paper's 136-byte dirent packs its 16-byte char
    /// array), with trailing padding handled at the array level.
    ///
    /// # Panics
    /// Panics if `id` is not an atomic node.
    #[must_use]
    pub fn elem_prim(&self, mint: &MintGraph, id: MintId) -> WirePrim {
        let mut p = self.prim(mint, id);
        if p.size == 1 {
            p.slot = 1;
            p.align = 1;
        }
        p
    }

    /// Stable digest of every field that shapes generated plans — one
    /// component of the per-stub cache key.  Covers all fields, so two
    /// encodings that plan identically but differ anywhere still get
    /// distinct keys (correct, merely conservative).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use flick_stablehash::{StableHash, StableHasher};
        let mut h = StableHasher::new();
        h.write_str(self.name);
        h.write_tag(match self.order {
            Order::Big => 0,
            Order::Little => 1,
        });
        h.write_bool(self.widen_to_word);
        h.write_tag(match self.string_wire {
            StringWire::CountedPadded => 0,
            StringWire::CountedNul => 1,
        });
        self.pad_unit.stable_hash(&mut h);
        h.write_bool(self.typed_descriptors);
        h.finish()
    }

    /// The count prefix for variable arrays/strings.
    #[must_use]
    pub fn len_prefix(&self) -> WirePrim {
        self.prim_for_size(4, false)
    }

    /// Bytes a Mach-style descriptor adds before an item of `count`
    /// elements (0 for non-typed encodings).
    #[must_use]
    pub fn descriptor_bytes(&self, count: u64) -> u64 {
        if !self.typed_descriptors {
            0
        } else if count <= u64::from(flick_runtime_short_form_max()) {
            4
        } else {
            12
        }
    }
}

/// Mirror of `flick_runtime::mach::SHORT_FORM_MAX` without the
/// dependency (backend does not link the runtime).
const fn flick_runtime_short_form_max() -> u32 {
    0x0fff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xdr_widens_subword_scalars() {
        let x = Encoding::xdr();
        let mut g = MintGraph::new();
        let c = g.char8();
        let p = x.prim(&g, c);
        assert_eq!((p.size, p.slot, p.align), (1, 4, 4));
        let s = g.i16();
        let p = x.prim(&g, s);
        assert_eq!((p.size, p.slot), (2, 4));
        assert!(p.signed);
    }

    #[test]
    fn cdr_packs_naturally() {
        let c = Encoding::cdr_be();
        let mut g = MintGraph::new();
        let ch = g.char8();
        let p = c.prim(&g, ch);
        assert_eq!((p.size, p.slot, p.align), (1, 1, 1));
        let d = g.f64();
        let p = c.prim(&g, d);
        assert_eq!((p.size, p.slot, p.align), (8, 8, 8));
    }

    #[test]
    fn memcpy_compatibility() {
        // Bytes are always block-copyable.
        let xdr_char = Encoding::cdr_be().prim_for_size(1, false);
        assert!(xdr_char.memcpy_compatible(1));
        // XDR-widened chars are not (1-byte values in 4-byte slots).
        let widened = Encoding::xdr().prim_for_size(1, false);
        assert!(!widened.memcpy_compatible(1));
        // Multi-byte scalars need native order.
        let be32 = Encoding::cdr_be().prim_for_size(4, true);
        let le32 = Encoding::cdr_le().prim_for_size(4, true);
        let native32 = Encoding::cdr_native().prim_for_size(4, true);
        assert!(native32.memcpy_compatible(4));
        if cfg!(target_endian = "little") {
            assert!(!be32.memcpy_compatible(4));
            assert!(le32.memcpy_compatible(4));
        } else {
            assert!(be32.memcpy_compatible(4));
            assert!(!le32.memcpy_compatible(4));
        }
    }

    #[test]
    fn integer_width_from_range() {
        let mut g = MintGraph::new();
        let x = Encoding::xdr();
        let (u8m, i16m, i32m, u32m, u64m) = (g.u8(), g.i16(), g.i32(), g.u32(), g.u64());
        assert_eq!(x.prim(&g, u8m).size, 1);
        assert_eq!(x.prim(&g, i16m).size, 2);
        assert_eq!(x.prim(&g, i32m).size, 4);
        assert_eq!(x.prim(&g, u64m).size, 8);
        assert!(x.prim(&g, i32m).signed);
        assert!(!x.prim(&g, u32m).signed);
    }

    #[test]
    fn mach_descriptor_sizes() {
        let m = Encoding::mach3();
        assert_eq!(m.descriptor_bytes(16), 4);
        assert_eq!(m.descriptor_bytes(0x0fff), 4);
        assert_eq!(m.descriptor_bytes(0x1000), 12);
        assert_eq!(Encoding::xdr().descriptor_bytes(1_000_000), 0);
    }

    #[test]
    fn fingerprints_distinguish_encodings() {
        let all = [
            Encoding::xdr(),
            Encoding::cdr_be(),
            Encoding::cdr_le(),
            Encoding::mach3(),
            Encoding::fluke(),
        ];
        let mut fps: Vec<u64> = all.iter().map(Encoding::fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 5, "the five base encodings must key apart");
        assert_eq!(Encoding::xdr().fingerprint(), Encoding::xdr().fingerprint());
    }

    #[test]
    fn native_cdr_matches_host() {
        assert_eq!(Encoding::cdr_native().order, Order::native());
        assert!(Order::native().is_native());
    }
}
