//! The marshal MIR: the IR on which Flick's optimizations run.
//!
//! Lowering (`crate::plan`) turns each stub's PRES trees into naive
//! [`PlanNode`] trees; the pass pipeline (`crate::passes`) then
//! rewrites them so that the *shape records the optimization
//! decisions*:
//!
//! * a fixed-layout region that packs becomes one [`PlanNode::Packed`]
//!   chunk (§3.2 chunking — constant-offset accesses, one space
//!   decision);
//! * an atomic array whose wire and memory layouts coincide becomes a
//!   [`PlanNode::MemcpyArray`] (§3.2 data copying);
//! * whole-message and per-region space requirements are classified
//!   (§3.1) so emitters hoist their buffer checks;
//! * recursion — and, when the inline pass is off, every named
//!   aggregate — is routed through an out-of-line function
//!   ([`PlanNode::Outline`], §3.3).
//!
//! Emitters walk these trees twice per stub, once in the encode
//! direction and once in decode.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use flick_pres::{OpInfo, PresC, PresId, StubKind};

use crate::encoding::{StringWire, WirePrim};
use crate::layout::{Packed, SizeClass};

/// A planned conversion for one value.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    /// Nothing to marshal.
    Void,
    /// A single scalar.
    Prim {
        /// Wire form.
        prim: WirePrim,
        /// Mach-style descriptor to emit first, if the encoding is typed.
        descriptor: Option<u32>,
    },
    /// An enum, wire-encoded as u32.
    Enum {
        /// Wire form of the discriminating integer.
        prim: WirePrim,
    },
    /// A packed fixed-layout region accessed through a chunk pointer.
    Packed {
        /// The computed layout.
        layout: Packed,
        /// Name of the presented aggregate type (for emitters).
        type_name: Option<String>,
        /// The PRES node the layout was packed from (emitters walk it
        /// to reconstruct values on the decode side).
        pres: PresId,
    },
    /// A counted array of layout-identical scalars: block copy.
    MemcpyArray {
        /// Element wire form.
        prim: WirePrim,
        /// Static element count for fixed arrays; `None` for counted.
        fixed_len: Option<u64>,
        /// Declared bound for counted arrays.
        bound: Option<u64>,
        /// Whether a count prefix travels before the data.
        counted: bool,
        /// Trailing padding unit, if the encoding pads.
        pad_unit: Option<u8>,
        /// Mach-style descriptor name, if the encoding is typed.
        descriptor: Option<u8>,
    },
    /// A string (counted char data).
    String {
        /// Declared bound, if any.
        bound: Option<u64>,
        /// Wire convention.
        style: StringWire,
        /// Padding unit, if any.
        pad_unit: Option<u8>,
        /// Whether the receive side may borrow from the buffer (§3.1
        /// parameter management; set only for server `in` data with
        /// `param_mgmt` on).
        borrow_ok: bool,
        /// Mach-style descriptor name, if the encoding is typed.
        descriptor: Option<u8>,
    },
    /// A counted array marshaled element by element.
    CountedArray {
        /// Declared bound, if any.
        bound: Option<u64>,
        /// Per-element plan.
        elem: Box<PlanNode>,
        /// Size class of one element (drives check hoisting: a fixed
        /// element lets the emitter `ensure(count * size)` once).
        elem_class: SizeClass,
        /// Element PRES node (passes requery the presentation here).
        elem_pres: PresId,
        /// Rust/C element type name.
        elem_type: String,
        /// Presented sequence type name.
        type_name: String,
        /// Field names of the counted representation (C emission).
        fields: (String, String, String),
    },
    /// A fixed array marshaled element by element (used when the
    /// element is variable-size, or when chunking is disabled).
    FixedArray {
        /// Element count.
        len: u64,
        /// Per-element plan.
        elem: Box<PlanNode>,
        /// Element PRES node.
        elem_pres: PresId,
        /// This array's own PRES node (the chunking pass re-packs it).
        pres: PresId,
        /// Element type name.
        elem_type: String,
    },
    /// A struct marshaled member by member (variable-size members, or
    /// chunking disabled).
    Struct {
        /// Presented type name.
        type_name: String,
        /// This struct's PRES node (the chunking pass re-packs it).
        pres: PresId,
        /// `(member name, plan)` in order.
        fields: Vec<(String, PlanNode)>,
    },
    /// A discriminated union.
    Union {
        /// Presented type name.
        type_name: String,
        /// Discriminator wire form.
        disc_prim: WirePrim,
        /// `(label, member name, plan)` arms.
        cases: Vec<(i64, String, PlanNode)>,
        /// Default arm.
        default: Option<(String, Box<PlanNode>)>,
    },
    /// ONC optional data: a presence flag then the value.
    Optional {
        /// Pointee plan.
        elem: Box<PlanNode>,
        /// Pointee type name.
        elem_type: String,
    },
    /// Marshal via an out-of-line function (recursion, or inlining
    /// disabled).
    Outline {
        /// Key into [`StubPlans::outlines`].
        key: String,
    },
}

/// Plan for one message direction of one stub.
#[derive(Clone, Debug)]
pub struct MsgPlan {
    /// Whole-message size class (§3.1) — includes the operation
    /// discriminator and every slot, excludes transport headers.
    /// Computed by the `classify-storage` pass.
    pub class: SizeClass,
    /// Whole-message space check hoisted by the `hoist-checks` pass:
    /// `Some(n)` means the sender performs one `ensure(n)` up front
    /// (fixed messages always hoist; bounded ones only under the
    /// threshold).
    pub hoisted: Option<u64>,
    /// Like [`MsgPlan::hoisted`] but capped at the bounded threshold
    /// even for fixed messages — the conservative form used where a
    /// fixed-but-huge message must not pre-reserve (client stubs and
    /// dispatch replies).
    pub hoisted_capped: Option<u64>,
    /// Per-slot plans, in marshal order.
    pub slots: Vec<SlotPlan>,
}

/// Where a slot's decoded presentation lives relative to the call.
///
/// Lowering marks everything [`SlotStorage::Owned`]; the `reuse-slots`
/// pass upgrades slots whose whole conversion tree can be presented
/// out of per-call pooled storage (request slots presented in the
/// receive buffer, aliased reply slots answered from request bytes) to
/// [`SlotStorage::Arena`].  Emitters key their zero-allocation forms
/// (borrowed bindings, request-byte replies) off this class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SlotStorage {
    /// The presented value owns heap storage that outlives the call.
    #[default]
    Owned,
    /// The presented value lives in per-call arena storage (the
    /// receive buffer or the pooled reply buffer) and must not escape
    /// the call.
    Arena,
}

/// Plan for one bound value of a message.
#[derive(Clone, Debug)]
pub struct SlotPlan {
    /// The C/Rust-level name the slot binds to.
    pub name: String,
    /// Whether the C stub receives it through a pointer.
    pub by_ref: bool,
    /// The PRES node this slot marshals (passes requery storage
    /// classes from the presentation).
    pub pres: PresId,
    /// False when the presentation never surfaces this slot in the
    /// generated signature.  Lowering copies the binding's liveness;
    /// the `dead-slot` pass removes dead slots (emitters encode a
    /// zero fill / decode-and-discard while the pass is off).
    pub live: bool,
    /// `Some(i)` when the `reply-alias` pass proved this *reply* slot
    /// byte-identical to request slot `i` whenever the server echoes
    /// the value unchanged: the server declares mutation through the
    /// `Echoed` copy-on-write contract and the emitter answers
    /// `Unchanged` with the request's own bytes — no re-marshal, no
    /// runtime compare.
    pub alias: Option<usize>,
    /// Storage class assigned by the `reuse-slots` pass.
    pub storage: SlotStorage,
    /// The conversion tree.
    pub node: PlanNode,
}

/// The full plan for one stub.
#[derive(Clone, Debug)]
pub struct StubPlan {
    /// Stub (function) name.
    pub name: String,
    /// Stub role.
    pub kind: StubKind,
    /// Operation metadata (request code, wire name, oneway).
    pub op: OpInfo,
    /// Request-direction plan.
    pub request: MsgPlan,
    /// Reply-direction plan.
    pub reply: MsgPlan,
}

/// The server-side string demultiplexing strategy, built by the
/// `demux-switch` pass (§3.4): either a per-name comparison chain or a
/// word-wise discrimination trie.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Demux {
    /// Compare the whole operation name per stub, in stub order.
    Linear,
    /// Switch on 4-byte words of the operation name.
    Trie(DemuxNode),
}

/// One word-switch level of the demux trie.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemuxNode {
    /// Which 4-byte word of the name this level switches on.
    pub word: usize,
    /// `(word value, arm)` in ascending word-value order.
    pub arms: Vec<(u32, DemuxArm)>,
    /// Unmarshal steps common to *every* operation reachable from this
    /// node, hoisted by the `merge-prefix` pass so the dispatcher
    /// decodes the shared bytes once instead of per arm.
    pub prefix: Vec<PrefixStep>,
}

/// One hoisted unmarshal step of a merged dispatch prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefixStep {
    /// An aligned u32 length/count word (the count prefix of a counted
    /// array, memcpy run, or string) — every arm's first slot starts
    /// with one, so the switch reads it once and hands it down.
    LenU32,
}

/// What a matched word leads to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DemuxArm {
    /// A unique operation (wire name) — dispatch after a length check.
    Op(String),
    /// More than one name shares this prefix: switch on the next word.
    Descend(DemuxNode),
}

/// Plans for every stub of a presentation, plus shared out-of-line
/// marshal functions and the module-wide decisions the pass pipeline
/// made.
#[derive(Clone, Debug)]
pub struct StubPlans {
    /// Per-stub plans in presentation order.
    pub stubs: Vec<StubPlan>,
    /// Out-of-line marshal bodies by key (type name).
    pub outlines: BTreeMap<String, PlanNode>,
    /// Whether the `hoist-checks` pass ran (emitters fall back to
    /// per-datum space checks when false).
    pub hoist: bool,
    /// Whether the `coalesce-memcpy` pass ran (also governs block
    /// copies inside packed chunks).
    pub memcpy: bool,
    /// String-demux strategy chosen by the `demux-switch` pass.
    pub demux: Demux,
}

/// Optimizer decision counts for one presentation's plans — the §3
/// choices, tallied so `flickc --stats` can show what the optimizer
/// actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Stubs planned.
    pub stubs: u64,
    /// Total plan nodes across all stubs and outlines.
    pub plan_nodes: u64,
    /// Fixed-layout regions turned into chunks (§3.2 chunking).
    pub packed_chunks: u64,
    /// Scalar runs turned into block copies (§3.2 data copying).
    pub memcpy_runs: u64,
    /// `Outline` call sites (recursion, or inlining disabled).
    pub outline_calls: u64,
    /// Distinct out-of-line marshal bodies.
    pub outline_fns: u64,
    /// Messages whose space check hoists to one `ensure` (§3.1 —
    /// whole-message size class is fixed or bounded).
    pub hoisted_checks: u64,
    /// Deepest inlined aggregate nesting in any plan tree.
    pub max_inline_depth: u64,
    /// Reply slots aliased to request storage (`reply-alias`).
    pub aliased_replies: u64,
    /// Unmarshal steps hoisted into demux-trie nodes (`merge-prefix`).
    pub merged_prefix_steps: u64,
    /// Slots classified arena-resident by the `reuse-slots` pass.
    pub arena_slots: u64,
}

impl PlanStats {
    /// Tallies the decisions recorded in `plans`.
    #[must_use]
    pub fn of(plans: &StubPlans) -> PlanStats {
        let mut s = PlanStats {
            stubs: plans.stubs.len() as u64,
            ..PlanStats::default()
        };
        s.outline_fns = plans.outlines.len() as u64;
        for stub in &plans.stubs {
            for msg in [&stub.request, &stub.reply] {
                if !matches!(msg.class, SizeClass::Unbounded) {
                    s.hoisted_checks += 1;
                }
                for slot in &msg.slots {
                    s.walk(&slot.node, 0);
                    if slot.storage == SlotStorage::Arena {
                        s.arena_slots += 1;
                    }
                }
            }
            s.aliased_replies += stub
                .reply
                .slots
                .iter()
                .filter(|s| s.alias.is_some())
                .count() as u64;
        }
        for body in plans.outlines.values() {
            s.walk(body, 0);
        }
        if let Demux::Trie(root) = &plans.demux {
            s.count_prefix(root);
        }
        s
    }

    fn count_prefix(&mut self, node: &DemuxNode) {
        self.merged_prefix_steps += node.prefix.len() as u64;
        for (_, arm) in &node.arms {
            if let DemuxArm::Descend(child) = arm {
                self.count_prefix(child);
            }
        }
    }

    fn walk(&mut self, node: &PlanNode, depth: u64) {
        self.plan_nodes += 1;
        self.max_inline_depth = self.max_inline_depth.max(depth);
        match node {
            PlanNode::Packed { .. } => self.packed_chunks += 1,
            PlanNode::MemcpyArray { .. } => self.memcpy_runs += 1,
            PlanNode::Outline { .. } => self.outline_calls += 1,
            PlanNode::Struct { fields, .. } => {
                for (_, f) in fields {
                    self.walk(f, depth + 1);
                }
            }
            PlanNode::Union { cases, default, .. } => {
                for (_, _, c) in cases {
                    self.walk(c, depth + 1);
                }
                if let Some((_, d)) = default {
                    self.walk(d, depth + 1);
                }
            }
            PlanNode::CountedArray { elem, .. }
            | PlanNode::FixedArray { elem, .. }
            | PlanNode::Optional { elem, .. } => self.walk(elem, depth + 1),
            _ => {}
        }
    }
}

pub(crate) type PlanResult<T> = Result<T, String>;

/// True if `plan` contains an `Outline` referencing `key` (detects
/// recursive self-references that force the out-of-line form).
pub(crate) fn plan_references_outline(plan: &PlanNode, key: &str) -> bool {
    match plan {
        PlanNode::Outline { key: k } => k == key,
        PlanNode::Struct { fields, .. } => {
            fields.iter().any(|(_, f)| plan_references_outline(f, key))
        }
        PlanNode::Union { cases, default, .. } => {
            cases
                .iter()
                .any(|(_, _, c)| plan_references_outline(c, key))
                || default
                    .as_ref()
                    .is_some_and(|(_, d)| plan_references_outline(d, key))
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => plan_references_outline(elem, key),
        _ => false,
    }
}

/// The presented type name of `pres`, if it maps to a named C type.
pub(crate) fn type_name_of(presc: &PresC, pres: PresId) -> Option<String> {
    match presc.pres.get(pres).ctype() {
        Some(flick_cast::CType::Named(n)) => Some(n.clone()),
        _ => None,
    }
}

/// Applies `f` to every direct child plan of `node` (passes use this
/// to recurse without re-listing the aggregate arms each time).
pub(crate) fn for_each_child(node: &mut PlanNode, mut f: impl FnMut(&mut PlanNode)) {
    match node {
        PlanNode::Struct { fields, .. } => {
            for (_, c) in fields {
                f(c);
            }
        }
        PlanNode::Union { cases, default, .. } => {
            for (_, _, c) in cases {
                f(c);
            }
            if let Some((_, d)) = default {
                f(d);
            }
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => f(elem),
        _ => {}
    }
}

/// Applies `f` to every root plan tree of `mir`: each slot of each
/// message, then each outline body.
pub(crate) fn for_each_root(mir: &mut StubPlans, mut f: impl FnMut(&mut PlanNode)) {
    for stub in &mut mir.stubs {
        for msg in [&mut stub.request, &mut stub.reply] {
            for slot in &mut msg.slots {
                f(&mut slot.node);
            }
        }
    }
    for body in mir.outlines.values_mut() {
        f(body);
    }
}

/// The Rust spelling of a presented scalar C type (shared between the
/// planner and the Rust emitter).
#[must_use]
pub fn rust_prim_name(c: &flick_cast::CType) -> &'static str {
    use flick_cast::CType;
    match c {
        CType::Char => "u8",
        CType::SChar => "i8",
        CType::UChar => "u8",
        CType::Short => "i16",
        CType::UShort => "u16",
        CType::Int => "i32",
        CType::UInt => "u32",
        CType::Long => "i64",
        CType::ULong => "u64",
        CType::LongLong => "i64",
        CType::ULongLong => "u64",
        CType::Float => "f32",
        CType::Double => "f64",
        _ => "u8",
    }
}

/// A human-readable rendering of the MIR for `--dump-mir`.
#[must_use]
pub fn dump(mir: &StubPlans) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mir {{ stubs: {}, outlines: {}, hoist: {}, memcpy: {}, demux: {} }}",
        mir.stubs.len(),
        mir.outlines.len(),
        mir.hoist,
        mir.memcpy,
        match mir.demux {
            Demux::Linear => "linear",
            Demux::Trie(_) => "trie",
        }
    );
    for stub in &mir.stubs {
        let _ = writeln!(
            out,
            "stub {} ({:?}, op {} \"{}\"):",
            stub.name, stub.kind, stub.op.request_code, stub.op.wire_name
        );
        for (dir, msg) in [("request", &stub.request), ("reply", &stub.reply)] {
            let _ = writeln!(
                out,
                "  {dir} class={:?} hoisted={:?} capped={:?}",
                msg.class, msg.hoisted, msg.hoisted_capped
            );
            for slot in &msg.slots {
                let mut marks = String::new();
                if slot.by_ref {
                    marks.push_str(" (by ref)");
                }
                if !slot.live {
                    marks.push_str(" (dead)");
                }
                if let Some(i) = slot.alias {
                    let _ = write!(marks, " (alias request[{i}])");
                }
                if slot.storage == SlotStorage::Arena {
                    marks.push_str(" (arena)");
                }
                let _ = writeln!(out, "    slot {}{}:", slot.name, marks);
                dump_node(&mut out, &slot.node, 3);
            }
        }
    }
    if let Demux::Trie(root) = &mir.demux {
        dump_trie(&mut out, root, 0);
    }
    for (key, body) in &mir.outlines {
        let _ = writeln!(out, "outline {key}:");
        dump_node(&mut out, body, 1);
    }
    out
}

fn dump_trie(out: &mut String, node: &DemuxNode, depth: usize) {
    let pad = "  ".repeat(depth);
    let prefix = if node.prefix.is_empty() {
        String::new()
    } else {
        format!(
            " prefix=[{}]",
            node.prefix
                .iter()
                .map(|s| match s {
                    PrefixStep::LenU32 => "len-u32",
                })
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let _ = writeln!(out, "{pad}trie word {}{prefix}:", node.word);
    for (value, arm) in &node.arms {
        match arm {
            DemuxArm::Op(name) => {
                let _ = writeln!(out, "{pad}  0x{value:08x} -> op \"{name}\"");
            }
            DemuxArm::Descend(child) => {
                let _ = writeln!(out, "{pad}  0x{value:08x} ->");
                dump_trie(out, child, depth + 2);
            }
        }
    }
}

fn dump_node(out: &mut String, node: &PlanNode, depth: usize) {
    let pad = "  ".repeat(depth);
    let line: String = match node {
        PlanNode::Void => "void".into(),
        PlanNode::Prim { prim, descriptor } => match descriptor {
            Some(d) => format!("prim {prim:?} descriptor={d}"),
            None => format!("prim {prim:?}"),
        },
        PlanNode::Enum { prim } => format!("enum {prim:?}"),
        PlanNode::Packed {
            layout, type_name, ..
        } => format!(
            "packed size={} align={} items={} type={}",
            layout.size,
            layout.align,
            layout.items.len(),
            type_name.as_deref().unwrap_or("<anon>")
        ),
        PlanNode::MemcpyArray {
            prim,
            fixed_len,
            bound,
            counted,
            ..
        } => format!(
            "memcpy-array elem={prim:?} fixed_len={fixed_len:?} bound={bound:?} counted={counted}"
        ),
        PlanNode::String {
            bound,
            style,
            borrow_ok,
            ..
        } => {
            format!("string bound={bound:?} style={style:?} borrow_ok={borrow_ok}")
        }
        PlanNode::CountedArray {
            bound,
            elem_class,
            elem_type,
            ..
        } => format!("counted-array bound={bound:?} elem_class={elem_class:?} elem={elem_type}"),
        PlanNode::FixedArray { len, elem_type, .. } => {
            format!("fixed-array len={len} elem={elem_type}")
        }
        PlanNode::Struct {
            type_name, fields, ..
        } => {
            format!("struct {type_name} fields={}", fields.len())
        }
        PlanNode::Union {
            type_name,
            cases,
            default,
            ..
        } => format!(
            "union {type_name} cases={} default={}",
            cases.len(),
            default.is_some()
        ),
        PlanNode::Optional { elem_type, .. } => format!("optional elem={elem_type}"),
        PlanNode::Outline { key } => format!("outline-call {key}"),
    };
    let _ = writeln!(out, "{pad}{line}");
    match node {
        PlanNode::Struct { fields, .. } => {
            for (name, f) in fields {
                let _ = writeln!(out, "{pad}  .{name}:");
                dump_node(out, f, depth + 2);
            }
        }
        PlanNode::Union { cases, default, .. } => {
            for (v, name, c) in cases {
                let _ = writeln!(out, "{pad}  case {v} ({name}):");
                dump_node(out, c, depth + 2);
            }
            if let Some((name, d)) = default {
                let _ = writeln!(out, "{pad}  default ({name}):");
                dump_node(out, d, depth + 2);
            }
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => dump_node(out, elem, depth + 1),
        _ => {}
    }
}
