//! `reply-alias` (§3.2 copy avoidance): reuse request bytes for
//! echoed replies.
//!
//! An inout scalar the server leaves untouched, or a return value that
//! echoes an argument (handle-style protocols), re-marshals bytes that
//! already sit — fully decoded and validated — in the request buffer.
//! This pass marks such reply slots with the request slot they alias;
//! the dispatch emitter then changes the server contract to the
//! copy-on-write `Echoed` type: the work function *declares* whether
//! it changed the echoed value.  `Unchanged` answers with a single
//! coalesced `memcpy` of the request byte range; `Changed(v)` takes
//! the normal encode path.  Earlier versions instead snapshotted the
//! decoded value and guarded the byte reuse with a runtime `==` — a
//! clone and a compare per call that cost more than the re-marshal
//! they avoided whenever the value was small and cache-hot.
//!
//! Safety conditions, all re-checked by the MIR verifier after every
//! later pass (so no subsequent rewrite can invalidate a mark):
//!
//! * the wire bytes of the value are position-independent — word
//!   oriented encodings without typed descriptors (XDR, Fluke), where
//!   every slot starts 4-aligned and carries no stream-relative state;
//! * the reply slot's plan is *structurally identical* to the request
//!   slot's plan, and of fixed wire size (`Prim`, `Enum`, `Packed`),
//!   so request and reply byte ranges have identical length and
//!   meaning;
//! * the pairing is unambiguous: same binding name (an inout
//!   parameter), or a `_return` slot with exactly one structurally
//!   equal request slot;
//! * the aliased slot is the *only* live reply slot, so the whole
//!   reply body reduces to one `Echoed` return value (the CoW
//!   contract is per-operation, not per-slot);
//! * the marked slot is classified [`SlotStorage::Arena`] — an
//!   `Unchanged` reply lives in the request's receive buffer for the
//!   duration of the call and never owns storage.

use crate::mir::{PlanNode, PlanResult, SlotStorage, StubPlans};
use crate::passes::{MirPass, PassBudget, PassCx};

pub struct ReplyAlias;

/// Nodes whose wire form has a fixed byte length and no interior
/// stream-position dependence.
fn fixed_wire(node: &PlanNode) -> bool {
    matches!(
        node,
        PlanNode::Prim { .. } | PlanNode::Enum { .. } | PlanNode::Packed { .. }
    )
}

/// True when raw wire bytes of a value can be replayed at a different
/// stream offset: every item 4-aligned from the start (XDR/Fluke
/// word-orientation) and no per-item type descriptors.
pub(crate) fn position_independent(enc: &crate::encoding::Encoding) -> bool {
    enc.widen_to_word && !enc.typed_descriptors
}

impl MirPass for ReplyAlias {
    fn name(&self) -> &'static str {
        "reply-alias"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        self.run_budgeted(mir, cx, &PassBudget::default())
            .map(|(d, _)| d)
    }

    fn run_budgeted(
        &self,
        mir: &mut StubPlans,
        cx: &PassCx,
        budget: &PassBudget,
    ) -> PlanResult<(u64, bool)> {
        if !position_independent(cx.enc) {
            return Ok((0, false));
        }
        let mut decisions = 0;
        let mut stopped = false;
        for stub in &mut mir.stubs {
            if stub.op.oneway {
                continue;
            }
            // The CoW contract replaces the operation's whole reply
            // with one `Echoed` value, so only sole-live-reply-slot
            // stubs can carry a mark.
            if stub.reply.slots.iter().filter(|s| s.live).count() != 1 {
                continue;
            }
            let request: Vec<(usize, String, PlanNode)> = stub
                .request
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.live)
                .map(|(i, s)| (i, s.name.clone(), s.node.clone()))
                .collect();
            for slot in &mut stub.reply.slots {
                if !slot.live || slot.alias.is_some() || !fixed_wire(&slot.node) {
                    continue;
                }
                if stopped || budget.spent(decisions) {
                    // Unmarked slots simply keep the re-marshal path.
                    stopped = true;
                    break;
                }
                let target = if slot.name == "_return" {
                    // A return value aliases only when exactly one
                    // request slot could have produced it.
                    let mut matches = request.iter().filter(|(_, _, n)| *n == slot.node);
                    match (matches.next(), matches.next()) {
                        (Some((i, _, _)), None) => Some(*i),
                        _ => None,
                    }
                } else {
                    // An inout parameter aliases its own request slot.
                    request
                        .iter()
                        .find(|(_, name, n)| *name == slot.name && *n == slot.node)
                        .map(|(i, _, _)| *i)
                };
                if let Some(i) = target {
                    slot.alias = Some(i);
                    // An `Unchanged` reply is answered from the
                    // request's receive buffer: arena residence.
                    slot.storage = SlotStorage::Arena;
                    decisions += 1;
                }
            }
        }
        Ok((decisions, stopped))
    }
}
