//! `hoist-checks` (§3.1): one up-front space check per message.
//!
//! A fixed-size message always hoists its sender-side buffer check to
//! a single `ensure(n)`; a bounded message hoists only when the bound
//! is small enough to pre-reserve.  Two forms are recorded:
//!
//! * [`MsgPlan::hoisted`] — used where the message buffer is private
//!   to the stub (message marshal functions): fixed messages hoist at
//!   any size;
//! * [`MsgPlan::hoisted_capped`] — used where pre-reserving a huge
//!   fixed message would be wasteful (client stubs, dispatch replies):
//!   both fixed and bounded hoists respect the threshold.
//!
//! The pass also flips [`StubPlans::hoist`], which tells the emitters
//! that per-datum checks inside a hoisted region are covered.

use crate::layout::SizeClass;
use crate::mir::{PlanResult, StubPlans};
use crate::passes::{MirPass, PassCx};

pub struct HoistChecks {
    /// Largest bound (bytes) worth pre-reserving.
    pub threshold: u64,
}

impl MirPass for HoistChecks {
    fn name(&self) -> &'static str {
        "hoist-checks"
    }

    fn config_hash(&self, h: &mut flick_stablehash::StableHasher) {
        h.write_u64(self.threshold);
    }

    fn run(&self, mir: &mut StubPlans, _cx: &PassCx) -> PlanResult<u64> {
        mir.hoist = true;
        let mut decisions = 0;
        for stub in &mut mir.stubs {
            for msg in [&mut stub.request, &mut stub.reply] {
                msg.hoisted = match msg.class {
                    SizeClass::Fixed(n) => Some(n),
                    SizeClass::Bounded(n) if n <= self.threshold => Some(n),
                    _ => None,
                };
                msg.hoisted_capped = msg.class.bound().filter(|&n| n <= self.threshold);
                if msg.hoisted.is_some() {
                    decisions += 1;
                }
            }
        }
        Ok(decisions)
    }
}
