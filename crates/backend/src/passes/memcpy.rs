//! `coalesce-memcpy` (§3.2 data copying): block-copy scalar arrays.
//!
//! An array of scalars whose wire and memory layouts coincide (same
//! size, native byte order, no per-element padding) marshals as one
//! `memcpy` instead of an element loop.  The pass requeries the
//! element's *presentation* node — the lowered per-element plan uses
//! the widened wire form, which is the wrong question to ask here.
//!
//! Also flips [`StubPlans::memcpy`], which governs block copies for
//! scalar runs inside packed chunks at emit time.

use flick_pres::PresNode;

use crate::encoding::{Encoding, WirePrim};
use crate::mir::{for_each_child, for_each_root, PlanNode, PlanResult, StubPlans};
use crate::passes::{MirPass, PassCx};

pub struct CoalesceMemcpy;

impl MirPass for CoalesceMemcpy {
    fn name(&self) -> &'static str {
        "coalesce-memcpy"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        mir.memcpy = true;
        let mut decisions = 0;
        for_each_root(mir, |root| coalesce_node(root, cx, &mut decisions));
        Ok(decisions)
    }
}

fn coalesce_node(node: &mut PlanNode, cx: &PassCx, decisions: &mut u64) {
    let rewritten = match node {
        PlanNode::FixedArray { len, elem_pres, .. } => {
            elem_run(cx, *elem_pres).map(|prim| PlanNode::MemcpyArray {
                prim,
                fixed_len: Some(*len),
                bound: None,
                counted: false,
                pad_unit: cx.enc.pad_unit,
                descriptor: descriptor_for(cx.enc, prim),
            })
        }
        PlanNode::CountedArray {
            bound, elem_pres, ..
        } => elem_run(cx, *elem_pres).map(|prim| PlanNode::MemcpyArray {
            prim,
            fixed_len: None,
            bound: *bound,
            counted: true,
            pad_unit: cx.enc.pad_unit,
            descriptor: descriptor_for(cx.enc, prim),
        }),
        _ => None,
    };
    if let Some(run) = rewritten {
        *node = run;
        *decisions += 1;
        return;
    }
    for_each_child(node, |c| coalesce_node(c, cx, decisions));
}

/// The element's wire form, if it is a scalar that block-copies.
fn elem_run(cx: &PassCx, elem_pres: flick_pres::PresId) -> Option<WirePrim> {
    if let PresNode::Direct { mint, .. } = cx.presc.pres.get(elem_pres) {
        let prim = cx.enc.elem_prim(&cx.presc.mint, *mint);
        if prim.memcpy_compatible(prim.size) {
            return Some(prim);
        }
    }
    None
}

/// The Mach-style type descriptor for a block-copied element, if the
/// encoding is typed.
fn descriptor_for(enc: &Encoding, prim: WirePrim) -> Option<u8> {
    if !enc.typed_descriptors {
        return None;
    }
    Some(match (prim.size, prim.signed) {
        (1, _) => 9,    // BYTE
        (4, true) => 2, // INTEGER_32
        (4, false) => 2,
        (8, _) => 11, // INTEGER_64
        (2, _) => 2,
        _ => 9,
    })
}
