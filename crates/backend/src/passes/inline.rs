//! `inline-marshal` (§3.3): absorb out-of-line marshal calls.
//!
//! Naive lowering routes every named aggregate through an out-of-line
//! body.  This pass expands those call sites back into the stub plan
//! trees, keeping a body out of line only where expansion would not
//! terminate — i.e. along a recursive cycle.  Expansion follows the
//! stub/slot/field order of the plans, and a re-expanded recursive
//! body overwrites any earlier registration (last traversal wins), so
//! the surviving outline set is exactly what a fused inline-as-you-
//! plan lowering would have produced.
//!
//! Under a `--pass-budget`, this pass stops making *new* inlining
//! decisions once the budget is exhausted: remaining call sites stay
//! out of line, and every body they (transitively) reach is kept so
//! the MIR still resolves.

use std::collections::BTreeMap;

use crate::mir::{for_each_child, plan_references_outline, PlanNode, PlanResult, StubPlans};
use crate::passes::{collect_outline_keys, MirPass, PassBudget, PassCx};

pub struct InlineMarshal;

impl MirPass for InlineMarshal {
    fn name(&self) -> &'static str {
        "inline-marshal"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        self.run_budgeted(mir, cx, &PassBudget::default())
            .map(|(d, _)| d)
    }

    fn run_budgeted(
        &self,
        mir: &mut StubPlans,
        _cx: &PassCx,
        budget: &PassBudget,
    ) -> PlanResult<(u64, bool)> {
        run_inline(mir, budget)
    }
}

fn run_inline(mir: &mut StubPlans, budget: &PassBudget) -> PlanResult<(u64, bool)> {
    let library = std::mem::take(&mut mir.outlines);
    let mut kept = BTreeMap::new();
    let mut stack: Vec<String> = Vec::new();
    let mut decisions = 0;
    let mut overran = false;
    for stub in &mut mir.stubs {
        for msg in [&mut stub.request, &mut stub.reply] {
            for slot in &mut msg.slots {
                expand(
                    &mut slot.node,
                    &library,
                    &mut kept,
                    &mut stack,
                    &mut decisions,
                    budget,
                    &mut overran,
                )?;
            }
        }
    }
    mir.outlines = kept;
    Ok((decisions, overran))
}

fn expand(
    node: &mut PlanNode,
    library: &BTreeMap<String, PlanNode>,
    kept: &mut BTreeMap<String, PlanNode>,
    stack: &mut Vec<String>,
    decisions: &mut u64,
    budget: &PassBudget,
    overran: &mut bool,
) -> PlanResult<()> {
    if let PlanNode::Outline { key } = node {
        // A call back into a body on the expansion stack is a
        // recursive cycle: it must stay an out-of-line call.
        if stack.iter().any(|k| k == key) {
            return Ok(());
        }
        // Budget exhausted (decisions or deadline): leave the call
        // site as-is, but make sure everything it reaches survives in
        // the outline library.
        if budget.spent(*decisions) {
            *overran = true;
            keep_transitively(key, library, kept)?;
            return Ok(());
        }
        let Some(body) = library.get(key) else {
            return Err(format!("inline-marshal: unresolved outline key `{key}`"));
        };
        let mut body = body.clone();
        stack.push(key.clone());
        expand(&mut body, library, kept, stack, decisions, budget, overran)?;
        let key = stack.pop().expect("pushed above");
        if plan_references_outline(&body, &key) {
            // Self-recursive: keep the body out of line.
            kept.insert(key.clone(), body);
            *node = PlanNode::Outline { key };
        } else {
            *decisions += 1;
            *node = body;
        }
        return Ok(());
    }
    let mut err = None;
    for_each_child(node, |c| {
        if err.is_none() {
            err = expand(c, library, kept, stack, decisions, budget, overran).err();
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Copies `key`'s body and every body it transitively references from
/// `library` into `kept`, unexpanded.
fn keep_transitively(
    key: &str,
    library: &BTreeMap<String, PlanNode>,
    kept: &mut BTreeMap<String, PlanNode>,
) -> PlanResult<()> {
    let mut work = vec![key.to_string()];
    while let Some(k) = work.pop() {
        if kept.contains_key(&k) {
            continue;
        }
        let Some(body) = library.get(&k) else {
            return Err(format!("inline-marshal: unresolved outline key `{k}`"));
        };
        kept.insert(k, body.clone());
        collect_outline_keys(body, &mut work);
    }
    Ok(())
}
