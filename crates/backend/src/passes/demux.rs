//! `demux-switch` (§3.4): word-wise server demultiplexing.
//!
//! String-discriminated protocols (IIOP) dispatch on the operation
//! name.  Instead of comparing whole strings per operation, this pass
//! builds a discrimination trie that switches on successive 4-byte
//! words of the name, descending only while names share a prefix.
//! The emitters turn the trie into nested integer switches; when the
//! pass is disabled they fall back to a per-name comparison chain.

use std::collections::{BTreeMap, HashSet};

use crate::mir::{Demux, DemuxArm, DemuxNode, PlanResult, StubPlan, StubPlans};
use crate::passes::{MirPass, PassCx};

pub struct DemuxSwitch;

impl MirPass for DemuxSwitch {
    fn name(&self) -> &'static str {
        "demux-switch"
    }

    fn run(&self, mir: &mut StubPlans, _cx: &PassCx) -> PlanResult<u64> {
        // One dispatch entry per distinct operation, in stub order.
        let mut seen = HashSet::new();
        let ops: Vec<&StubPlan> = mir
            .stubs
            .iter()
            .filter(|s| seen.insert(s.op.name.clone()))
            .collect();
        let mut nodes = 0;
        let trie = build(&ops, 0, &mut nodes);
        mir.demux = Demux::Trie(trie);
        Ok(nodes)
    }
}

/// The native-endian 4-byte word of `name` starting at `at`,
/// zero-padded past the end — the same value the generated `word_at`
/// helper reads from the wire.
pub(crate) fn word_of(name: &[u8], at: usize) -> u32 {
    let mut w = [0u8; 4];
    if at < name.len() {
        let n = (name.len() - at).min(4);
        w[..n].copy_from_slice(&name[at..at + n]);
    }
    u32::from_ne_bytes(w)
}

fn build(ops: &[&StubPlan], word: usize, nodes: &mut u64) -> DemuxNode {
    *nodes += 1;
    let mut groups: BTreeMap<u32, Vec<&StubPlan>> = BTreeMap::new();
    for s in ops {
        groups
            .entry(word_of(s.op.wire_name.as_bytes(), word * 4))
            .or_default()
            .push(s);
    }
    let mut arms = Vec::new();
    for (w, group) in groups {
        let leaf = group.len() == 1 && (word + 1) * 4 >= group[0].op.wire_name.len();
        let arm = if leaf {
            DemuxArm::Op(group[0].op.name.clone())
        } else {
            DemuxArm::Descend(build(&group, word + 1, nodes))
        };
        arms.push((w, arm));
    }
    DemuxNode {
        word,
        arms,
        prefix: Vec::new(),
    }
}
