//! `classify-storage` (§3.1): assign size classes.
//!
//! Recomputes each message's whole-message [`SizeClass`] (operation
//! discriminator plus every slot) and each counted array's per-element
//! class from the presentation.  Later passes and the emitters consume
//! these classes; this pass always runs — even a fully de-optimized
//! pipeline needs element classes for receive-side capacity guards.

use crate::layout::{size_class, SizeClass};
use crate::mir::{for_each_child, PlanNode, PlanResult, StubPlans};
use crate::passes::{MirPass, PassCx};

pub struct ClassifyStorage;

impl MirPass for ClassifyStorage {
    fn name(&self) -> &'static str {
        "classify-storage"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        let mut decisions = 0;
        for stub in &mut mir.stubs {
            for msg in [&mut stub.request, &mut stub.reply] {
                let mut class = SizeClass::Fixed(u64::from(cx.enc.len_prefix().slot));
                for slot in &msg.slots {
                    class = class.then(size_class(cx.presc, cx.enc, slot.pres));
                }
                msg.class = class;
                msg.hoisted = None;
                msg.hoisted_capped = None;
                decisions += 1;
                for slot in &mut msg.slots {
                    classify_node(&mut slot.node, cx, &mut decisions);
                }
            }
        }
        for body in mir.outlines.values_mut() {
            classify_node(body, cx, &mut decisions);
        }
        Ok(decisions)
    }
}

fn classify_node(node: &mut PlanNode, cx: &PassCx, decisions: &mut u64) {
    if let PlanNode::CountedArray {
        elem_class,
        elem_pres,
        ..
    } = node
    {
        *elem_class = size_class(cx.presc, cx.enc, *elem_pres);
        *decisions += 1;
    }
    for_each_child(node, |c| classify_node(c, cx, decisions));
}
