//! The `fuse-transcode` decision point.
//!
//! Transcode fusion — collapsing runs whose source and target wire
//! layouts agree byte-for-byte into bulk copies — is decided when an
//! encoding-*pair* plan is built ([`crate::transcode::plan`]), not as a
//! rewrite of endpoint MIR: a fused [`crate::transcode::XcOp`] never
//! materializes a presentation slot, so there is nothing in
//! [`StubPlans`] for it to rewrite.  The pass is registered here so the
//! name participates in the shared pass vocabulary: `flickc
//! --disable-pass=fuse-transcode` validates like every other pass name,
//! pipeline fingerprints (and therefore plan caches) key on whether
//! fusion is scheduled, and the ablation harness gets a row.  Over
//! endpoint stub plans it is a no-op.

use crate::mir::{PlanResult, StubPlans};
use crate::passes::{MirPass, PassCx};

/// §4 (gateway) transcode fusion: source-to-target block copies where
/// both encodings lay bytes out identically.
pub struct FuseTranscode;

impl MirPass for FuseTranscode {
    fn name(&self) -> &'static str {
        "fuse-transcode"
    }

    fn run(&self, _mir: &mut StubPlans, _cx: &PassCx) -> PlanResult<u64> {
        // Endpoint plans target one encoding; the fusion decision only
        // exists for encoding pairs and is applied in transcode
        // planning, keyed off this pass being scheduled.
        Ok(0)
    }
}
