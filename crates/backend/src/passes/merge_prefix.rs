//! `merge-prefix` (§3.4): hoist the common unmarshal prefix across
//! dispatch arms.
//!
//! After `demux-switch` builds the word-wise discrimination trie, many
//! sibling arms begin their unmarshal code identically — in practice
//! with the aligned u32 count word that leads every counted array,
//! memcpy run, and string.  This pass marks the *highest* trie node
//! under which every reachable operation starts with such a count word;
//! the dispatch emitter then decodes that word once, before the word
//! switch, and each arm's first slot consumes the prefetched count
//! instead of re-reading it.  The generated switch carries one shared
//! length read where it previously carried one per arm.
//!
//! Module-wide (it rewrites the demux trie), so like `demux-switch` it
//! is skipped in per-stub cache units and re-run over the merged
//! module.  Hoisting is sound because the trie discriminates on the
//! operation *name*, which travels outside the message body: the body
//! stream is at position zero at every trie level, so a read hoisted
//! above the switch sees exactly the bytes each arm would have read.
//! Typed-descriptor encodings (Mach) prefix items with descriptors and
//! are excluded.

use std::collections::HashMap;

use crate::mir::{Demux, DemuxArm, DemuxNode, PlanNode, PlanResult, PrefixStep, StubPlans};
use crate::passes::{MirPass, PassBudget, PassCx};

pub struct MergePrefix;

/// True when the stub's request unmarshal begins with an aligned u32
/// count word (the shape the hoisted prefix read replaces).  Shared
/// with the verifier, which re-checks every hoist after every pass.
pub(crate) fn leads_with_len_u32(mir_stub: &crate::mir::StubPlan) -> bool {
    matches!(
        mir_stub.request.slots.first().map(|s| &s.node),
        Some(
            PlanNode::CountedArray { .. }
                | PlanNode::String { .. }
                | PlanNode::MemcpyArray { counted: true, .. }
        )
    )
}

impl MirPass for MergePrefix {
    fn name(&self) -> &'static str {
        "merge-prefix"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        self.run_budgeted(mir, cx, &PassBudget::default())
            .map(|(d, _)| d)
    }

    fn run_budgeted(
        &self,
        mir: &mut StubPlans,
        cx: &PassCx,
        budget: &PassBudget,
    ) -> PlanResult<(u64, bool)> {
        if cx.enc.typed_descriptors {
            return Ok((0, false));
        }
        let leads: HashMap<String, bool> = mir
            .stubs
            .iter()
            .map(|s| (s.op.name.clone(), leads_with_len_u32(s)))
            .collect();
        let mut decisions = 0;
        let mut stopped = false;
        if let Demux::Trie(root) = &mut mir.demux {
            hoist(root, &leads, false, budget, &mut decisions, &mut stopped);
        }
        Ok((decisions, stopped))
    }
}

/// `(reachable leaf ops, all of them lead with a u32 count)`.
fn survey(node: &DemuxNode, leads: &HashMap<String, bool>) -> (u64, bool) {
    let mut ops = 0;
    let mut all = true;
    for (_, arm) in &node.arms {
        match arm {
            DemuxArm::Op(name) => {
                ops += 1;
                all &= leads.get(name).copied().unwrap_or(false);
            }
            DemuxArm::Descend(child) => {
                let (n, a) = survey(child, leads);
                ops += n;
                all &= a;
            }
        }
    }
    (ops, all)
}

fn hoist(
    node: &mut DemuxNode,
    leads: &HashMap<String, bool>,
    hoisted_above: bool,
    budget: &PassBudget,
    decisions: &mut u64,
    stopped: &mut bool,
) {
    let mut hoisted_here = false;
    if !hoisted_above {
        let (ops, all) = survey(node, leads);
        if ops >= 2 && all {
            if *stopped || budget.spent(*decisions) {
                *stopped = true;
            } else {
                node.prefix = vec![PrefixStep::LenU32];
                // One read replaces `ops` per-arm reads.
                *decisions += ops - 1;
                hoisted_here = true;
            }
        }
    }
    for (_, arm) in &mut node.arms {
        if let DemuxArm::Descend(child) = arm {
            hoist(
                child,
                leads,
                hoisted_above || hoisted_here,
                budget,
                decisions,
                stopped,
            );
        }
    }
}
