//! `reuse-slots` (§3.1 taken further): classify slots whose presented
//! value can live entirely in per-call pooled storage.
//!
//! `classify-storage` decides *size* classes; this pass decides
//! *residence*.  A live request slot whose whole conversion tree can
//! be presented without per-call heap allocation — scalars and packed
//! regions (stack), fixed memcpy runs (stack arrays), and top-level
//! strings the receive buffer can back directly — is marked
//! [`SlotStorage::Arena`].  Emitters key their zero-allocation decode
//! bindings off the mark: arena strings borrow from the receive
//! buffer, everything else lands on the stack, and nothing escapes the
//! call.
//!
//! The analysis generalizes the paper's "present data in place"
//! beyond layout-identical scalars: any tree is arena-presentable as
//! long as *every* construction step is allocation-free.  What is
//! not:
//!
//! * counted arrays and counted memcpy runs (a `Vec` must own the
//!   elements);
//! * optional data (the recursive pointee is boxed);
//! * strings below the top level (nested values are built owned), or
//!   top-level strings lowering already refused to borrow
//!   (`borrow_ok: false` — `param_mgmt` off, or the buffer cannot
//!   back them);
//! * outline calls whose body is not itself arena-presentable
//!   (recursive bodies never are).
//!
//! Reply slots are left alone here: a reply slot becomes
//! arena-resident only through the `reply-alias` pass, whose `Echoed`
//! contract answers with request bytes.  The verifier re-checks every
//! mark between stages (see `verify::verify_storage`).

use std::collections::{BTreeMap, BTreeSet};

use crate::mir::{PlanNode, PlanResult, SlotStorage, StubPlans};
use crate::passes::{MirPass, PassBudget, PassCx};

pub struct ReuseSlots;

/// True when decoding `node` as a *top-level slot* allocates nothing:
/// the one position where a `borrow_ok` string presents in the
/// receive buffer.
pub(crate) fn arena_presentable_slot(
    node: &PlanNode,
    outlines: &BTreeMap<String, PlanNode>,
) -> bool {
    match node {
        PlanNode::String { borrow_ok, .. } => *borrow_ok,
        _ => arena_presentable_nested(node, outlines, &mut BTreeSet::new()),
    }
}

/// True when decoding `node` as a *nested* value (always built owned)
/// allocates nothing.
fn arena_presentable_nested(
    node: &PlanNode,
    outlines: &BTreeMap<String, PlanNode>,
    visiting: &mut BTreeSet<String>,
) -> bool {
    match node {
        PlanNode::Void | PlanNode::Prim { .. } | PlanNode::Enum { .. } => true,
        // Packed regions decode from one chunk into a stack value.
        PlanNode::Packed { .. } => true,
        // A fixed memcpy run lands in a stack array; a counted one
        // must own a Vec.
        PlanNode::MemcpyArray { fixed_len, .. } => fixed_len.is_some(),
        // Nested strings are built owned regardless of borrow_ok.
        PlanNode::String { .. } => false,
        // Counted arrays own their elements; optionals box theirs.
        PlanNode::CountedArray { .. } | PlanNode::Optional { .. } => false,
        PlanNode::FixedArray { elem, .. } => arena_presentable_nested(elem, outlines, visiting),
        PlanNode::Struct { fields, .. } => fields
            .iter()
            .all(|(_, f)| arena_presentable_nested(f, outlines, visiting)),
        PlanNode::Union { cases, default, .. } => {
            cases
                .iter()
                .all(|(_, _, c)| arena_presentable_nested(c, outlines, visiting))
                && default
                    .as_ref()
                    .is_none_or(|(_, d)| arena_presentable_nested(d, outlines, visiting))
        }
        PlanNode::Outline { key } => {
            // A recursive body can never be presented flat.
            if !visiting.insert(key.clone()) {
                return false;
            }
            let ok = outlines
                .get(key)
                .is_some_and(|body| arena_presentable_nested(body, outlines, visiting));
            visiting.remove(key);
            ok
        }
    }
}

impl MirPass for ReuseSlots {
    fn name(&self) -> &'static str {
        "reuse-slots"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        self.run_budgeted(mir, cx, &PassBudget::default())
            .map(|(d, _)| d)
    }

    fn run_budgeted(
        &self,
        mir: &mut StubPlans,
        _cx: &PassCx,
        budget: &PassBudget,
    ) -> PlanResult<(u64, bool)> {
        let mut decisions = 0;
        let mut stopped = false;
        let outlines = mir.outlines.clone(); // presentability reads bodies
        for stub in &mut mir.stubs {
            for slot in &mut stub.request.slots {
                if !slot.live || slot.storage == SlotStorage::Arena {
                    continue;
                }
                if stopped || budget.spent(decisions) {
                    // Unmarked slots simply keep owned storage.
                    stopped = true;
                    break;
                }
                if arena_presentable_slot(&slot.node, &outlines) {
                    slot.storage = SlotStorage::Arena;
                    decisions += 1;
                }
            }
        }
        Ok((decisions, stopped))
    }
}
