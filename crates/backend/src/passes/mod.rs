//! The MIR pass manager: Flick's §3 optimizations as named, ordered
//! rewrites over [`StubPlans`].
//!
//! Lowering produces naive MIR (datum-by-datum marshaling, every named
//! aggregate out of line, no storage classes); each [`MirPass`] then
//! makes one class of optimization decision:
//!
//! | order | pass              | §     | decision                              |
//! |-------|-------------------|-------|---------------------------------------|
//! | 1     | `classify-storage`| §3.1  | size classes for messages & elements  |
//! | 2     | `hoist-checks`    | §3.1  | one up-front `ensure` per message     |
//! | 3     | `form-chunks`     | §3.2  | packed constant-offset regions        |
//! | 4     | `coalesce-memcpy` | §3.2  | scalar arrays become block copies     |
//! | 5     | `inline-marshal`  | §3.3  | absorb out-of-line marshal calls      |
//! | 6     | `demux-switch`    | §3.4  | word-wise server demultiplex trie     |
//!
//! The pipeline times each pass, counts its decisions, optionally runs
//! the MIR verifier between passes (debug/test builds), and finishes
//! with an outline garbage collection so only reachable out-of-line
//! bodies survive.

use std::time::Instant;

use flick_pres::PresC;

use crate::encoding::Encoding;
use crate::mir::{self, PlanNode, PlanResult, StubPlans};
use crate::opts::OptFlags;
use crate::plan::{lower_presc, LowerOpts, Parallelism};
use crate::verify::verify;

mod chunks;
mod classify;
mod demux;
mod hoist;
mod inline;
mod memcpy;

pub use chunks::FormChunks;
pub use classify::ClassifyStorage;
pub use demux::DemuxSwitch;
pub use hoist::HoistChecks;
pub use inline::InlineMarshal;
pub use memcpy::CoalesceMemcpy;

/// The six §3 passes in pipeline order.
pub const PASS_NAMES: [&str; 6] = [
    "classify-storage",
    "hoist-checks",
    "form-chunks",
    "coalesce-memcpy",
    "inline-marshal",
    "demux-switch",
];

/// Read-only context every pass runs against: passes requery the
/// presentation and encoding rather than trusting lowered caches.
pub struct PassCx<'a> {
    /// The presentation being compiled.
    pub presc: &'a PresC,
    /// The target wire encoding.
    pub enc: &'a Encoding,
}

/// One optimization rewrite over the MIR.
pub trait MirPass: Send + Sync {
    /// The stable pass name (`flickc --passes`, `--disable-pass`).
    fn name(&self) -> &'static str;

    /// Rewrites `mir` in place, returning how many decisions it made
    /// (for `--stats` counters).
    ///
    /// # Errors
    /// Returns a message if the MIR contains a shape the pass cannot
    /// handle.
    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64>;
}

/// Wall time + decision count for one executed pass.
#[derive(Clone, Debug)]
pub struct PassSpan {
    /// Pass name (or `"lower"` for the lowering step itself).
    pub name: &'static str,
    /// Wall time spent in the pass.
    pub ns: u64,
    /// Decisions the pass made.
    pub decisions: u64,
}

/// A `--dump-mir` request: dump after the named pass, or after the
/// whole pipeline when `after` is `None`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MirDump {
    /// Pass name to dump after (`"lower"` is also accepted).
    pub after: Option<String>,
}

/// An ordered, toggleable set of MIR passes plus lowering options.
pub struct PassPipeline {
    lower: LowerOpts,
    passes: Vec<Box<dyn MirPass>>,
    /// Run the MIR verifier after lowering and between passes.
    pub verify: bool,
    /// How lowering schedules independent stubs.
    pub parallel: Parallelism,
}

impl PassPipeline {
    /// The pipeline the boolean [`OptFlags`] facade describes.
    /// `classify-storage` and `demux-switch` always run (emitters
    /// depend on storage classes and a demux decision); the other
    /// passes follow their flags.
    #[must_use]
    pub fn from_opts(opts: &OptFlags) -> PassPipeline {
        let mut passes: Vec<Box<dyn MirPass>> = vec![Box::new(ClassifyStorage)];
        if opts.hoist_checks {
            passes.push(Box::new(HoistChecks {
                threshold: opts.bounded_threshold,
            }));
        }
        if opts.chunking {
            passes.push(Box::new(FormChunks));
        }
        if opts.memcpy {
            passes.push(Box::new(CoalesceMemcpy));
        }
        if opts.inline_marshal {
            passes.push(Box::new(InlineMarshal));
        }
        passes.push(Box::new(DemuxSwitch));
        PassPipeline {
            lower: LowerOpts {
                param_mgmt: opts.param_mgmt,
            },
            passes,
            verify: cfg!(debug_assertions),
            parallel: Parallelism::Auto,
        }
    }

    /// Names of the passes currently scheduled, in order.
    #[must_use]
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Removes the named pass from the schedule.  Removing a pass that
    /// a flag already excluded is a no-op; an unknown name is an error.
    ///
    /// # Errors
    /// Returns a diagnostic naming the unknown pass.
    pub fn disable(&mut self, name: &str) -> Result<(), String> {
        if !PASS_NAMES.contains(&name) {
            return Err(format!(
                "unknown pass `{name}` (known passes: {})",
                PASS_NAMES.join(", ")
            ));
        }
        self.passes.retain(|p| p.name() != name);
        Ok(())
    }
}

/// The result of one pipeline run.
#[derive(Debug)]
pub struct PipelineRun {
    /// The optimized MIR.
    pub mir: StubPlans,
    /// Per-pass timing + decision spans, in execution order
    /// (lowering first).
    pub passes: Vec<PassSpan>,
    /// The rendered `--dump-mir` output, if requested.
    pub mir_dump: Option<String>,
}

/// Lowers `presc` and runs every scheduled pass over it.
///
/// # Errors
/// Returns a message if lowering or a pass fails, if the verifier
/// rejects an intermediate MIR, or if `dump` names a pass that never
/// ran.
pub fn run_pipeline(
    presc: &PresC,
    enc: &Encoding,
    pipeline: &PassPipeline,
    dump: Option<&MirDump>,
) -> PlanResult<PipelineRun> {
    let cx = PassCx { presc, enc };
    let t0 = Instant::now();
    let mut mir = lower_presc(presc, enc, pipeline.lower, pipeline.parallel)?;
    let mut spans = vec![PassSpan {
        name: "lower",
        ns: t0.elapsed().as_nanos() as u64,
        decisions: mir.stubs.len() as u64,
    }];
    if pipeline.verify {
        verify(&mir, presc, enc).map_err(|e| format!("MIR verify after lowering: {e}"))?;
    }
    let mut mir_dump = dump
        .filter(|d| d.after.as_deref() == Some("lower"))
        .map(|_| mir::dump(&mir));

    for pass in &pipeline.passes {
        let t = Instant::now();
        let decisions = pass
            .run(&mut mir, &cx)
            .map_err(|e| format!("pass {}: {e}", pass.name()))?;
        spans.push(PassSpan {
            name: pass.name(),
            ns: t.elapsed().as_nanos() as u64,
            decisions,
        });
        if pipeline.verify {
            verify(&mir, presc, enc)
                .map_err(|e| format!("MIR verify after {}: {e}", pass.name()))?;
        }
        if dump.is_some_and(|d| d.after.as_deref() == Some(pass.name())) {
            mir_dump = Some(mir::dump(&mir));
        }
    }

    gc_outlines(&mut mir);
    if pipeline.verify {
        verify(&mir, presc, enc).map_err(|e| format!("MIR verify after outline GC: {e}"))?;
    }

    match dump {
        Some(MirDump { after: None }) => mir_dump = Some(mir::dump(&mir)),
        Some(MirDump { after: Some(name) }) if mir_dump.is_none() => {
            return Err(format!(
                "--dump-mir: pass `{name}` did not run (disabled or not scheduled)"
            ));
        }
        _ => {}
    }

    Ok(PipelineRun {
        mir,
        passes: spans,
        mir_dump,
    })
}

/// Drops outline bodies no stub reaches.  Naive lowering outlines
/// every named aggregate; after chunking and inlining some of those
/// bodies have no remaining call sites (e.g. an aggregate absorbed
/// into a packed chunk), and emitting them would change output.
fn gc_outlines(mir: &mut StubPlans) {
    use std::collections::BTreeSet;
    let mut work: Vec<String> = Vec::new();
    for stub in &mir.stubs {
        for msg in [&stub.request, &stub.reply] {
            for slot in &msg.slots {
                collect_outline_keys(&slot.node, &mut work);
            }
        }
    }
    let mut reachable = BTreeSet::new();
    while let Some(key) = work.pop() {
        if reachable.insert(key.clone()) {
            if let Some(body) = mir.outlines.get(&key) {
                collect_outline_keys(body, &mut work);
            }
        }
    }
    mir.outlines.retain(|k, _| reachable.contains(k));
}

fn collect_outline_keys(node: &PlanNode, out: &mut Vec<String>) {
    match node {
        PlanNode::Outline { key } => out.push(key.clone()),
        PlanNode::Struct { fields, .. } => {
            for (_, f) in fields {
                collect_outline_keys(f, out);
            }
        }
        PlanNode::Union { cases, default, .. } => {
            for (_, _, c) in cases {
                collect_outline_keys(c, out);
            }
            if let Some((_, d)) = default {
                collect_outline_keys(d, out);
            }
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => collect_outline_keys(elem, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::Demux;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn presc(idl: &str, iface: &str) -> PresC {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation")
    }

    const IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); };
    ";

    #[test]
    fn default_pipeline_schedules_all_six_passes_in_order() {
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        assert_eq!(pipe.pass_names(), PASS_NAMES.to_vec());
    }

    #[test]
    fn flags_gate_their_passes_but_not_classify_or_demux() {
        let pipe = PassPipeline::from_opts(&OptFlags::none());
        assert_eq!(pipe.pass_names(), vec!["classify-storage", "demux-switch"]);
    }

    #[test]
    fn disabling_unknown_pass_is_an_error() {
        let mut pipe = PassPipeline::from_opts(&OptFlags::all());
        assert!(pipe
            .disable("frobnicate")
            .unwrap_err()
            .contains("unknown pass"));
        pipe.disable("form-chunks").expect("known pass");
        assert!(!pipe.pass_names().contains(&"form-chunks"));
        // Disabling an already-absent pass stays fine.
        pipe.disable("form-chunks").expect("idempotent");
    }

    #[test]
    fn pipeline_reports_one_span_per_pass() {
        let p = presc(IDL, "I");
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        let names: Vec<_> = run.passes.iter().map(|s| s.name).collect();
        let mut expect = vec!["lower"];
        expect.extend(PASS_NAMES);
        assert_eq!(names, expect);
        // The chunking pass made at least one decision on rects.
        let chunks = run.passes.iter().find(|s| s.name == "form-chunks").unwrap();
        assert!(chunks.decisions >= 1, "{:?}", run.passes);
    }

    #[test]
    fn disabling_demux_falls_back_to_linear() {
        let p = presc(IDL, "I");
        let mut pipe = PassPipeline::from_opts(&OptFlags::all());
        pipe.disable("demux-switch").unwrap();
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        assert_eq!(run.mir.demux, Demux::Linear);
        let run = run_pipeline(
            &p,
            &Encoding::xdr(),
            &PassPipeline::from_opts(&OptFlags::all()),
            None,
        )
        .expect("runs");
        assert!(matches!(run.mir.demux, Demux::Trie(_)));
    }

    #[test]
    fn dump_mir_after_pass_and_at_end() {
        let p = presc(IDL, "I");
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, Some(&MirDump { after: None }))
            .expect("runs");
        let dump = run.mir_dump.expect("final dump");
        assert!(dump.contains("stub "), "{dump}");
        let run = run_pipeline(
            &p,
            &Encoding::xdr(),
            &pipe,
            Some(&MirDump {
                after: Some("form-chunks".to_string()),
            }),
        )
        .expect("runs");
        assert!(run.mir_dump.expect("after-pass dump").contains("packed"));
        // A dump point that never runs is a pipeline error.
        let mut no_chunks = PassPipeline::from_opts(&OptFlags::all());
        no_chunks.disable("form-chunks").unwrap();
        let err = run_pipeline(
            &p,
            &Encoding::xdr(),
            &no_chunks,
            Some(&MirDump {
                after: Some("form-chunks".to_string()),
            }),
        )
        .unwrap_err();
        assert!(err.contains("did not run"), "{err}");
    }
}
