//! The MIR pass manager: Flick's §3 optimizations as named, ordered
//! rewrites over [`StubPlans`].
//!
//! Lowering produces naive MIR (datum-by-datum marshaling, every named
//! aggregate out of line, no storage classes); each [`MirPass`] then
//! makes one class of optimization decision:
//!
//! | order | pass              | §     | decision                              |
//! |-------|-------------------|-------|---------------------------------------|
//! | 1     | `dead-slot`       | §3.1  | drop slots the PRES mapping hides     |
//! | 2     | `classify-storage`| §3.1  | size classes for messages & elements  |
//! | 3     | `reuse-slots`     | §3.1  | arena-vs-owned residence per slot     |
//! | 4     | `hoist-checks`    | §3.1  | one up-front `ensure` per message     |
//! | 5     | `form-chunks`     | §3.2  | packed constant-offset regions        |
//! | 6     | `coalesce-memcpy` | §3.2  | scalar arrays become block copies     |
//! | 7     | `fuse-transcode`  | §4    | encoding-pair runs become bulk copies |
//! | 8     | `inline-marshal`  | §3.3  | absorb out-of-line marshal calls      |
//! | 9     | `reply-alias`     | §3.2  | echoed replies reuse request bytes    |
//! | 10    | `demux-switch`    | §3.4  | word-wise server demultiplex trie     |
//! | 11    | `merge-prefix`    | §3.4  | shared unmarshal prefix above the trie|
//!
//! `fuse-transcode` is special: its decision applies when an
//! encoding-*pair* (gateway) plan is built, not to endpoint MIR — see
//! [`fuse`] — but it lives in the shared vocabulary so `--disable-pass`
//! validation, pipeline fingerprints, and ablations treat it uniformly.
//!
//! The pipeline times each pass, counts its decisions, optionally runs
//! the MIR verifier between passes (debug/test builds), and finishes
//! with an outline garbage collection so only reachable out-of-line
//! bodies survive.

use std::time::{Duration, Instant};

use flick_pres::{PresC, Stub};
use flick_stablehash::StableHasher;

use crate::encoding::Encoding;
use crate::mir::{self, PlanNode, PlanResult, StubPlans};
use crate::opts::OptFlags;
use crate::plan::{lower_presc, lower_stub, LowerOpts, Parallelism};
use crate::verify::verify;

mod chunks;
mod classify;
mod dead_slot;
pub(crate) mod demux;
mod fuse;
mod hoist;
mod inline;
mod memcpy;
pub(crate) mod merge_prefix;
mod reply_alias;
pub(crate) mod reuse;

pub use chunks::FormChunks;
pub use classify::ClassifyStorage;
pub use dead_slot::DeadSlot;
pub use demux::DemuxSwitch;
pub use fuse::FuseTranscode;
pub use hoist::HoistChecks;
pub use inline::InlineMarshal;
pub use memcpy::CoalesceMemcpy;
pub use merge_prefix::MergePrefix;
pub(crate) use reply_alias::position_independent as reply_alias_position_independent;
pub use reply_alias::ReplyAlias;
pub use reuse::ReuseSlots;

/// The eleven passes in pipeline order (the §3 endpoint optimizations
/// plus the gateway's transcode fusion).
pub const PASS_NAMES: [&str; 11] = [
    "dead-slot",
    "classify-storage",
    "reuse-slots",
    "hoist-checks",
    "form-chunks",
    "coalesce-memcpy",
    "fuse-transcode",
    "inline-marshal",
    "reply-alias",
    "demux-switch",
    "merge-prefix",
];

/// Passes that need every stub at once (they decide the demux trie),
/// so the per-stub cache pipeline skips them and the caller re-runs
/// them over the merged module.
pub(crate) const MODULE_WIDE_PASSES: [&str; 2] = ["demux-switch", "merge-prefix"];

/// Read-only context every pass runs against: passes requery the
/// presentation and encoding rather than trusting lowered caches.
pub struct PassCx<'a> {
    /// The presentation being compiled.
    pub presc: &'a PresC,
    /// The target wire encoding.
    pub enc: &'a Encoding,
}

/// Limits on one pass execution: a decision cap, a wall-clock
/// deadline, or both.  An empty budget never stops a pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassBudget {
    /// Maximum decisions the pass may make (`flickc --pass-budget`).
    pub decisions: Option<u64>,
    /// Instant past which the pass must stop making new decisions
    /// (`flickc --pass-budget-ms`, converted per pass invocation).
    pub deadline: Option<Instant>,
}

impl PassBudget {
    /// True once `made` decisions — or the wall clock — exhaust this
    /// budget.  Passes that can stop early consult this before each
    /// new decision.
    #[must_use]
    pub fn spent(&self, made: u64) -> bool {
        self.decisions.is_some_and(|b| made >= b)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// One optimization rewrite over the MIR.
pub trait MirPass: Send + Sync {
    /// The stable pass name (`flickc --passes`, `--disable-pass`).
    fn name(&self) -> &'static str;

    /// Rewrites `mir` in place, returning how many decisions it made
    /// (for `--stats` counters).
    ///
    /// # Errors
    /// Returns a message if the MIR contains a shape the pass cannot
    /// handle.
    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64>;

    /// Absorbs every configuration knob that changes this pass's
    /// *output* into `h`.  The pass name is hashed separately; the
    /// default covers passes with no configuration.
    fn config_hash(&self, _h: &mut StableHasher) {}

    /// Like [`MirPass::run`] but bounded by a [`PassBudget`].  Returns
    /// the decision count plus whether the budget stopped (or would
    /// have stopped) the pass.  The default runs to completion and
    /// merely *reports* a decision overrun; passes that can stop early
    /// (`dead-slot`, `reuse-slots`, `reply-alias`, `merge-prefix`,
    /// `inline-marshal`) override this to actually cap their work.
    ///
    /// # Errors
    /// Same as [`MirPass::run`].
    fn run_budgeted(
        &self,
        mir: &mut StubPlans,
        cx: &PassCx,
        budget: &PassBudget,
    ) -> PlanResult<(u64, bool)> {
        let d = self.run(mir, cx)?;
        Ok((d, budget.decisions.is_some_and(|b| d > b)))
    }
}

/// Wall time + decision count for one executed pass.
#[derive(Clone, Debug)]
pub struct PassSpan {
    /// Pass name (or `"lower"` for the lowering step itself).
    pub name: &'static str,
    /// Wall time spent in the pass.
    pub ns: u64,
    /// Decisions the pass made.
    pub decisions: u64,
}

/// A `--dump-mir` request: dump after the named pass, or after the
/// whole pipeline when `after` is `None`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MirDump {
    /// Pass name to dump after (`"lower"` is also accepted).
    pub after: Option<String>,
}

/// An ordered, toggleable set of MIR passes plus lowering options.
pub struct PassPipeline {
    lower: LowerOpts,
    passes: Vec<Box<dyn MirPass>>,
    /// Run the MIR verifier after lowering and between passes.
    pub verify: bool,
    /// How lowering schedules independent stubs.
    pub parallel: Parallelism,
    /// Per-pass decision budget: a pass exceeding it reports an
    /// overrun (and, where supported, stops making new decisions).
    pub budget: Option<u64>,
    /// Per-pass wall-time budget in milliseconds: a pass running past
    /// it reports an `ms` overrun (and, where supported, stops making
    /// new decisions at the deadline).
    pub budget_ms: Option<u64>,
}

impl PassPipeline {
    /// The pipeline the boolean [`OptFlags`] facade describes.
    /// `classify-storage` and `demux-switch` always run (emitters
    /// depend on storage classes and a demux decision); the other
    /// passes follow their flags.
    #[must_use]
    pub fn from_opts(opts: &OptFlags) -> PassPipeline {
        let mut passes: Vec<Box<dyn MirPass>> = Vec::new();
        if opts.dead_slot {
            passes.push(Box::new(DeadSlot));
        }
        passes.push(Box::new(ClassifyStorage));
        if opts.reuse_slots {
            passes.push(Box::new(ReuseSlots));
        }
        if opts.hoist_checks {
            passes.push(Box::new(HoistChecks {
                threshold: opts.bounded_threshold,
            }));
        }
        if opts.chunking {
            passes.push(Box::new(FormChunks));
        }
        if opts.memcpy {
            passes.push(Box::new(CoalesceMemcpy));
        }
        if opts.fuse_transcode {
            passes.push(Box::new(FuseTranscode));
        }
        if opts.inline_marshal {
            passes.push(Box::new(InlineMarshal));
        }
        if opts.reply_alias {
            passes.push(Box::new(ReplyAlias));
        }
        passes.push(Box::new(DemuxSwitch));
        if opts.merge_prefix {
            passes.push(Box::new(MergePrefix));
        }
        PassPipeline {
            lower: LowerOpts {
                param_mgmt: opts.param_mgmt,
            },
            passes,
            verify: cfg!(debug_assertions),
            parallel: Parallelism::Auto,
            budget: None,
            budget_ms: None,
        }
    }

    /// The budget one pass invocation runs under (the wall-time budget
    /// becomes a fresh deadline per pass).
    pub(crate) fn pass_budget(&self) -> PassBudget {
        PassBudget {
            decisions: self.budget,
            deadline: self
                .budget_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// A stable fingerprint of everything about this pipeline that can
    /// change its *output*: the pass list (names, order, per-pass
    /// configuration), the lowering options, and the decision budget.
    /// `verify` and `parallel` are deliberately excluded — they affect
    /// only how the same result is computed.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.passes.len() as u64);
        for pass in &self.passes {
            h.write_str(pass.name());
            pass.config_hash(&mut h);
        }
        h.write_bool(self.lower.param_mgmt);
        for budget in [self.budget, self.budget_ms] {
            match budget {
                None => h.write_tag(0),
                Some(b) => {
                    h.write_tag(1);
                    h.write_u64(b);
                }
            }
        }
        h.finish()
    }

    /// Names of the passes currently scheduled, in order.
    #[must_use]
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Removes the named pass from the schedule.  Removing a pass that
    /// a flag already excluded is a no-op; an unknown name is an error.
    ///
    /// # Errors
    /// Returns a diagnostic naming the unknown pass.
    pub fn disable(&mut self, name: &str) -> Result<(), String> {
        if !PASS_NAMES.contains(&name) {
            return Err(format!(
                "unknown pass `{name}` (known passes: {})",
                PASS_NAMES.join(", ")
            ));
        }
        self.passes.retain(|p| p.name() != name);
        Ok(())
    }
}

/// The result of one pipeline run.
#[derive(Debug)]
pub struct PipelineRun {
    /// The optimized MIR.
    pub mir: StubPlans,
    /// Per-pass timing + decision spans, in execution order
    /// (lowering first).
    pub passes: Vec<PassSpan>,
    /// The rendered `--dump-mir` output, if requested.
    pub mir_dump: Option<String>,
    /// Names of passes that overran the decision budget.
    pub overruns: Vec<&'static str>,
    /// `(pass, ms over)` for passes that ran past the wall-time
    /// budget.
    pub overruns_ms: Vec<(&'static str, u64)>,
}

/// Lowers `presc` and runs every scheduled pass over it.
///
/// # Errors
/// Returns a message if lowering or a pass fails, if the verifier
/// rejects an intermediate MIR, or if `dump` names a pass that never
/// ran.
pub fn run_pipeline(
    presc: &PresC,
    enc: &Encoding,
    pipeline: &PassPipeline,
    dump: Option<&MirDump>,
) -> PlanResult<PipelineRun> {
    let cx = PassCx { presc, enc };
    let t0 = Instant::now();
    let mut mir = lower_presc(presc, enc, pipeline.lower, pipeline.parallel)?;
    let mut spans = vec![PassSpan {
        name: "lower",
        ns: t0.elapsed().as_nanos() as u64,
        decisions: mir.stubs.len() as u64,
    }];
    if pipeline.verify {
        verify(&mir, presc, enc).map_err(|e| format!("MIR verify after lowering: {e}"))?;
    }
    let mut mir_dump = dump
        .filter(|d| d.after.as_deref() == Some("lower"))
        .map(|_| mir::dump(&mir));

    let mut overruns = Vec::new();
    let mut overruns_ms = Vec::new();
    for pass in &pipeline.passes {
        let t = Instant::now();
        let budget = pipeline.pass_budget();
        let (decisions, overran) = pass
            .run_budgeted(&mut mir, &cx, &budget)
            .map_err(|e| format!("pass {}: {e}", pass.name()))?;
        let ns = t.elapsed().as_nanos() as u64;
        if overran {
            overruns.push(pass.name());
        }
        if let Some(over) = ms_overrun(pipeline.budget_ms, ns) {
            overruns_ms.push((pass.name(), over));
        }
        spans.push(PassSpan {
            name: pass.name(),
            ns,
            decisions,
        });
        if pipeline.verify {
            verify(&mir, presc, enc)
                .map_err(|e| format!("MIR verify after {}: {e}", pass.name()))?;
        }
        if dump.is_some_and(|d| d.after.as_deref() == Some(pass.name())) {
            mir_dump = Some(mir::dump(&mir));
        }
    }

    gc_outlines(&mut mir);
    if pipeline.verify {
        verify(&mir, presc, enc).map_err(|e| format!("MIR verify after outline GC: {e}"))?;
    }

    match dump {
        Some(MirDump { after: None }) => mir_dump = Some(mir::dump(&mir)),
        Some(MirDump { after: Some(name) }) if mir_dump.is_none() => {
            return Err(format!(
                "--dump-mir: pass `{name}` did not run (disabled or not scheduled)"
            ));
        }
        _ => {}
    }

    Ok(PipelineRun {
        mir,
        passes: spans,
        mir_dump,
        overruns,
        overruns_ms,
    })
}

/// How many milliseconds (at least 1) a pass of `ns` wall time ran
/// past the `budget_ms` wall-time budget, if it did.
pub(crate) fn ms_overrun(budget_ms: Option<u64>, ns: u64) -> Option<u64> {
    let ms = budget_ms?;
    let limit = ms.saturating_mul(1_000_000);
    if ns > limit {
        Some(((ns - limit) / 1_000_000).max(1))
    } else {
        None
    }
}

/// The per-stub unit of work the plan cache stores: one stub lowered
/// and optimized in isolation.
#[derive(Debug)]
pub(crate) struct StubUnit {
    /// The optimized single-stub MIR (demux decision not yet made).
    pub mir: StubPlans,
    /// Per-pass spans for this unit (lowering first).
    pub passes: Vec<PassSpan>,
    /// Passes that overran the decision budget on this unit.
    pub overruns: Vec<&'static str>,
    /// `(pass, ms over)` wall-time overruns on this unit.
    pub overruns_ms: Vec<(&'static str, u64)>,
}

/// Lowers and optimizes a *single* stub through every scheduled pass
/// except the module-wide ones (`demux-switch` and `merge-prefix`
/// need every stub's request code at once, so the caller runs them
/// over the merged module).  All other passes only read the stub they
/// rewrite, which is what makes per-stub caching sound.
///
/// # Errors
/// Same failure modes as [`run_pipeline`].
pub(crate) fn run_stub_pipeline(
    presc: &PresC,
    enc: &Encoding,
    pipeline: &PassPipeline,
    stub: &Stub,
) -> PlanResult<StubUnit> {
    let cx = PassCx { presc, enc };
    let t0 = Instant::now();
    let (plan, outlines) = lower_stub(presc, enc, pipeline.lower, stub)?;
    let mut mir = StubPlans {
        stubs: vec![plan],
        outlines,
        hoist: false,
        memcpy: false,
        demux: crate::mir::Demux::Linear,
    };
    let mut spans = vec![PassSpan {
        name: "lower",
        ns: t0.elapsed().as_nanos() as u64,
        decisions: 1,
    }];
    if pipeline.verify {
        verify(&mir, presc, enc)
            .map_err(|e| format!("MIR verify after lowering `{}`: {e}", stub.name))?;
    }
    let mut overruns = Vec::new();
    let mut overruns_ms = Vec::new();
    for pass in &pipeline.passes {
        if MODULE_WIDE_PASSES.contains(&pass.name()) {
            continue;
        }
        let t = Instant::now();
        let budget = pipeline.pass_budget();
        let (decisions, overran) = pass
            .run_budgeted(&mut mir, &cx, &budget)
            .map_err(|e| format!("pass {} on `{}`: {e}", pass.name(), stub.name))?;
        let ns = t.elapsed().as_nanos() as u64;
        if overran {
            overruns.push(pass.name());
        }
        if let Some(over) = ms_overrun(pipeline.budget_ms, ns) {
            overruns_ms.push((pass.name(), over));
        }
        spans.push(PassSpan {
            name: pass.name(),
            ns,
            decisions,
        });
        if pipeline.verify {
            verify(&mir, presc, enc)
                .map_err(|e| format!("MIR verify after {} on `{}`: {e}", pass.name(), stub.name))?;
        }
    }
    gc_outlines(&mut mir);
    if pipeline.verify {
        verify(&mir, presc, enc)
            .map_err(|e| format!("MIR verify after outline GC on `{}`: {e}", stub.name))?;
    }
    Ok(StubUnit {
        mir,
        passes: spans,
        overruns,
        overruns_ms,
    })
}

/// Drops outline bodies no stub reaches.  Naive lowering outlines
/// every named aggregate; after chunking and inlining some of those
/// bodies have no remaining call sites (e.g. an aggregate absorbed
/// into a packed chunk), and emitting them would change output.
fn gc_outlines(mir: &mut StubPlans) {
    use std::collections::BTreeSet;
    let mut work: Vec<String> = Vec::new();
    for stub in &mir.stubs {
        for msg in [&stub.request, &stub.reply] {
            for slot in &msg.slots {
                collect_outline_keys(&slot.node, &mut work);
            }
        }
    }
    let mut reachable = BTreeSet::new();
    while let Some(key) = work.pop() {
        if reachable.insert(key.clone()) {
            if let Some(body) = mir.outlines.get(&key) {
                collect_outline_keys(body, &mut work);
            }
        }
    }
    mir.outlines.retain(|k, _| reachable.contains(k));
}

pub(crate) fn collect_outline_keys(node: &PlanNode, out: &mut Vec<String>) {
    match node {
        PlanNode::Outline { key } => out.push(key.clone()),
        PlanNode::Struct { fields, .. } => {
            for (_, f) in fields {
                collect_outline_keys(f, out);
            }
        }
        PlanNode::Union { cases, default, .. } => {
            for (_, _, c) in cases {
                collect_outline_keys(c, out);
            }
            if let Some((_, d)) = default {
                collect_outline_keys(d, out);
            }
        }
        PlanNode::CountedArray { elem, .. }
        | PlanNode::FixedArray { elem, .. }
        | PlanNode::Optional { elem, .. } => collect_outline_keys(elem, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::Demux;
    use flick_idl::diag::Diagnostics;
    use flick_pres::Side;

    fn presc(idl: &str, iface: &str) -> PresC {
        let aoi = flick_frontend_corba::parse_str("t.idl", idl);
        let mut d = Diagnostics::new();
        flick_presgen::corba_c(&aoi, iface, Side::Client, &mut d).expect("presentation")
    }

    const IDL: &str = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        interface I { void put(in RectSeq rs); };
    ";

    #[test]
    fn default_pipeline_schedules_all_eleven_passes_in_order() {
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        assert_eq!(pipe.pass_names(), PASS_NAMES.to_vec());
    }

    #[test]
    fn flags_gate_their_passes_but_not_classify_or_demux() {
        let pipe = PassPipeline::from_opts(&OptFlags::none());
        assert_eq!(pipe.pass_names(), vec!["classify-storage", "demux-switch"]);
    }

    #[test]
    fn disabling_unknown_pass_is_an_error() {
        let mut pipe = PassPipeline::from_opts(&OptFlags::all());
        assert!(pipe
            .disable("frobnicate")
            .unwrap_err()
            .contains("unknown pass"));
        pipe.disable("form-chunks").expect("known pass");
        assert!(!pipe.pass_names().contains(&"form-chunks"));
        // Disabling an already-absent pass stays fine.
        pipe.disable("form-chunks").expect("idempotent");
    }

    #[test]
    fn pipeline_reports_one_span_per_pass() {
        let p = presc(IDL, "I");
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        let names: Vec<_> = run.passes.iter().map(|s| s.name).collect();
        let mut expect = vec!["lower"];
        expect.extend(PASS_NAMES);
        assert_eq!(names, expect);
        // The chunking pass made at least one decision on rects.
        let chunks = run.passes.iter().find(|s| s.name == "form-chunks").unwrap();
        assert!(chunks.decisions >= 1, "{:?}", run.passes);
    }

    #[test]
    fn fingerprint_tracks_output_affecting_config_only() {
        let base = PassPipeline::from_opts(&OptFlags::all());
        // verify/parallel change how the result is computed, not what
        // it is — they must not invalidate caches.
        let mut same = PassPipeline::from_opts(&OptFlags::all());
        same.verify = !same.verify;
        same.parallel = Parallelism::Sequential;
        assert_eq!(base.fingerprint(), same.fingerprint());

        let mut disabled = PassPipeline::from_opts(&OptFlags::all());
        disabled.disable("form-chunks").unwrap();
        assert_ne!(base.fingerprint(), disabled.fingerprint());

        let mut thr = OptFlags::all();
        thr.bounded_threshold += 1;
        assert_ne!(
            base.fingerprint(),
            PassPipeline::from_opts(&thr).fingerprint(),
            "hoist threshold is pass configuration"
        );

        let mut budgeted = PassPipeline::from_opts(&OptFlags::all());
        budgeted.budget = Some(3);
        assert_ne!(base.fingerprint(), budgeted.fingerprint());
    }

    #[test]
    fn budget_overrun_reported_and_inline_stops_early() {
        let p = presc(IDL, "I");
        let mut opts = OptFlags::all();
        opts.chunking = false; // keep Outline call sites for inline-marshal
        let mut pipe = PassPipeline::from_opts(&opts);
        pipe.budget = Some(0);
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        assert!(
            run.overruns.contains(&"inline-marshal"),
            "{:?}",
            run.overruns
        );
        let inl = run
            .passes
            .iter()
            .find(|s| s.name == "inline-marshal")
            .unwrap();
        assert_eq!(inl.decisions, 0, "budget 0 means no inlining decisions");
        assert!(
            run.mir.outlines.contains_key("Rect"),
            "un-inlined call sites must still resolve: {:?}",
            run.mir.outlines.keys().collect::<Vec<_>>()
        );

        // A generous budget changes nothing and reports no overruns.
        let mut roomy = PassPipeline::from_opts(&opts);
        roomy.budget = Some(1_000_000);
        let run = run_pipeline(&p, &Encoding::xdr(), &roomy, None).expect("runs");
        assert!(run.overruns.is_empty(), "{:?}", run.overruns);
    }

    #[test]
    fn wall_time_budget_zero_stops_passes_and_reports_ms_overruns() {
        let p = presc(IDL, "I");
        let mut opts = OptFlags::all();
        opts.chunking = false; // keep Outline call sites for inline-marshal
        let mut pipe = PassPipeline::from_opts(&opts);
        // A 0 ms budget makes every pass's deadline already past: the
        // early-stopping passes must make no decisions, and every pass
        // must report an ms overrun of at least 1.
        pipe.budget_ms = Some(0);
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        let inl = run
            .passes
            .iter()
            .find(|s| s.name == "inline-marshal")
            .unwrap();
        assert_eq!(inl.decisions, 0, "deadline already past: no inlining");
        assert!(
            run.mir.outlines.contains_key("Rect"),
            "un-inlined call sites must still resolve"
        );
        let named: Vec<_> = run.overruns_ms.iter().map(|(n, _)| *n).collect();
        assert_eq!(named, pipe.pass_names(), "every pass overran 0 ms");
        assert!(run.overruns_ms.iter().all(|&(_, ms)| ms >= 1));

        // A generous wall-time budget reports nothing.
        let mut roomy = PassPipeline::from_opts(&opts);
        roomy.budget_ms = Some(60_000);
        let run = run_pipeline(&p, &Encoding::xdr(), &roomy, None).expect("runs");
        assert!(run.overruns_ms.is_empty(), "{:?}", run.overruns_ms);
    }

    #[test]
    fn wall_time_budget_is_in_the_fingerprint() {
        let base = PassPipeline::from_opts(&OptFlags::all());
        let mut timed = PassPipeline::from_opts(&OptFlags::all());
        timed.budget_ms = Some(5);
        assert_ne!(base.fingerprint(), timed.fingerprint());
        // Decision and wall-time budgets of the same value must not
        // collide.
        let mut dec = PassPipeline::from_opts(&OptFlags::all());
        dec.budget = Some(5);
        assert_ne!(dec.fingerprint(), timed.fingerprint());
    }

    #[test]
    fn stub_pipeline_skips_demux_and_matches_module_run() {
        let p = presc(IDL, "I");
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        let unit = run_stub_pipeline(&p, &Encoding::xdr(), &pipe, &p.stubs[0]).expect("runs");
        assert_eq!(unit.mir.demux, Demux::Linear);
        assert!(!unit.passes.iter().any(|s| s.name == "demux-switch"));
        let whole = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        assert_eq!(
            format!("{:?}", unit.mir.stubs[0]),
            format!("{:?}", whole.mir.stubs[0]),
            "per-stub optimization must match the whole-module result"
        );
        assert_eq!(
            format!("{:?}", unit.mir.outlines),
            format!("{:?}", whole.mir.outlines)
        );
    }

    #[test]
    fn disabling_demux_falls_back_to_linear() {
        let p = presc(IDL, "I");
        let mut pipe = PassPipeline::from_opts(&OptFlags::all());
        pipe.disable("demux-switch").unwrap();
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, None).expect("runs");
        assert_eq!(run.mir.demux, Demux::Linear);
        let run = run_pipeline(
            &p,
            &Encoding::xdr(),
            &PassPipeline::from_opts(&OptFlags::all()),
            None,
        )
        .expect("runs");
        assert!(matches!(run.mir.demux, Demux::Trie(_)));
    }

    #[test]
    fn dump_mir_after_pass_and_at_end() {
        let p = presc(IDL, "I");
        let pipe = PassPipeline::from_opts(&OptFlags::all());
        let run = run_pipeline(&p, &Encoding::xdr(), &pipe, Some(&MirDump { after: None }))
            .expect("runs");
        let dump = run.mir_dump.expect("final dump");
        assert!(dump.contains("stub "), "{dump}");
        let run = run_pipeline(
            &p,
            &Encoding::xdr(),
            &pipe,
            Some(&MirDump {
                after: Some("form-chunks".to_string()),
            }),
        )
        .expect("runs");
        assert!(run.mir_dump.expect("after-pass dump").contains("packed"));
        // A dump point that never runs is a pipeline error.
        let mut no_chunks = PassPipeline::from_opts(&OptFlags::all());
        no_chunks.disable("form-chunks").unwrap();
        let err = run_pipeline(
            &p,
            &Encoding::xdr(),
            &no_chunks,
            Some(&MirDump {
                after: Some("form-chunks".to_string()),
            }),
        )
        .unwrap_err();
        assert!(err.contains("did not run"), "{err}");
    }
}
