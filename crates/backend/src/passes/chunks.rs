//! `form-chunks` (§3.2 chunking): pack fixed-layout regions.
//!
//! Rewrites any struct or fixed array whose wire layout packs into a
//! [`PlanNode::Packed`] chunk: one space decision and constant-offset
//! stores instead of per-member marshal code.  The rewrite is
//! outermost-wins — once a region packs, its interior never appears as
//! separate plan nodes.  Runs before `coalesce-memcpy`, so a fixed
//! scalar array inside a packable region becomes a run inside the
//! chunk rather than a standalone block copy.

use crate::layout::pack;
use crate::mir::{for_each_child, for_each_root, type_name_of, PlanNode, PlanResult, StubPlans};
use crate::passes::{MirPass, PassCx};

pub struct FormChunks;

impl MirPass for FormChunks {
    fn name(&self) -> &'static str {
        "form-chunks"
    }

    fn run(&self, mir: &mut StubPlans, cx: &PassCx) -> PlanResult<u64> {
        let mut decisions = 0;
        for_each_root(mir, |root| chunk_node(root, cx, &mut decisions));
        Ok(decisions)
    }
}

fn chunk_node(node: &mut PlanNode, cx: &PassCx, decisions: &mut u64) {
    let pres = match node {
        PlanNode::Struct { pres, .. } | PlanNode::FixedArray { pres, .. } => Some(*pres),
        _ => None,
    };
    if let Some(pres) = pres {
        if let Some(layout) = pack(cx.presc, cx.enc, pres) {
            *node = PlanNode::Packed {
                layout,
                type_name: type_name_of(cx.presc, pres),
                pres,
            };
            *decisions += 1;
            return; // outermost wins; nothing left to visit inside
        }
    }
    for_each_child(node, |c| chunk_node(c, cx, decisions));
}
