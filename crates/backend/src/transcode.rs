//! Encoding→encoding transcode plans (the cross-encoding gateway).
//!
//! Everything else in this backend lowers one side of the shape
//! "wire ↔ presentation".  This module generalizes the MIR to target a
//! *pair* of encodings: from the same MINT/PRES-C input it lowers, per
//! operation, a [`TranscodePlan`] whose ops rewrite bytes directly from
//! a source encoding into a target encoding without ever materializing
//! the presentation — the Fisher/Pucella/Reppy interoperability shape.
//!
//! Lowering walks the presentation tree with *both* encoding tables in
//! hand and produces a flat list of [`XcOp`]s per message direction.
//! The raw list is slot-wise: every scalar is a checked
//! copy-with-reswizzle ([`XcOp::Prim`]), every counted region re-reads
//! and re-writes its length prefix, every hostile check the endpoint
//! decoder performs (bounds, NUL conventions, discriminator and
//! optional-flag validity, UTF-8) is retained at the same stream
//! position.  [`fuse`] then runs the transcode analogue of the
//! `coalesce-memcpy` pass: adjacent prims whose two wire forms agree in
//! layout collapse into [`XcOp::BlockCopy`] runs, fixed arrays of
//! collapsed elements hoist into one block, and counted sequences whose
//! element tiles both encodings bulk-copy `len * size` bytes behind the
//! same bound check.
//!
//! Fusion admissibility is deliberately strict (see [`copyable`]):
//!
//! * sizes and slots must match exactly — an XDR-widened sub-word value
//!   carries four wire bytes but only `size` meaningful ones, and the
//!   naive decode path truncates hostile high bits; a block copy would
//!   preserve them, so widened slots never fuse;
//! * multi-byte values require equal byte order (bytes always fuse);
//! * floats never fuse — the unfused path moves them as raw bits (see
//!   the emitter), but they are kept slot-wise so the obligation stays
//!   visible to the verifier;
//! * padding is never copied: XDR pad bytes are rewritten as zeros
//!   ([`XcOp::Pad`]), so hostile nonzero padding cannot leak through
//!   the gateway.
//!
//! [`verify`] re-derives every fusion obligation from scratch, the same
//! contract the pass-pipeline verifier provides for endpoint plans; the
//! naive twin lists (the `--disable-pass=fuse-transcode` fallback) must
//! contain no fused op at all.

use std::collections::BTreeMap;

use flick_mint::{MintId, MintNode};
use flick_pres::{PresC, PresId, PresNode, Stub};

use crate::encoding::{Encoding, WirePrim};
use crate::mir::type_name_of;

/// One run-length-encoded component of a fused block copy: `count`
/// consecutive values sharing a source and target wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct XcPart {
    /// Wire form on the source encoding.
    pub src: WirePrim,
    /// Wire form on the target encoding.
    pub dst: WirePrim,
    /// Number of consecutive values.
    pub count: u64,
}

impl XcPart {
    /// Bytes this part contributes to its block.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.count * u64::from(self.src.slot)
    }
}

/// One step of an encoding→encoding rewrite.
#[derive(Clone, Debug, PartialEq)]
pub enum XcOp {
    /// Re-encode one scalar: read in the source wire form, write in the
    /// target wire form (reswizzling order and slot width as needed).
    Prim {
        /// Source wire form.
        src: WirePrim,
        /// Target wire form.
        dst: WirePrim,
    },
    /// A fused run: `bytes` of wire data whose source and target
    /// layouts agree byte-for-byte, moved with one bulk copy.  `parts`
    /// records the constituent values for the verifier; `parts[0]`
    /// carries the run's alignment requirement (later parts are
    /// admitted only at compatible offsets).
    BlockCopy {
        /// Total bytes moved.
        bytes: u64,
        /// Constituent values, run-length encoded.
        parts: Vec<XcPart>,
    },
    /// Trailing padding after a packed run: skip `src` bytes on the
    /// source stream, write `dst` zero bytes on the target stream.
    /// Never fused into a block copy — hostile nonzero pad bytes must
    /// be rewritten as zeros, exactly as the naive path would.
    Pad {
        /// Source pad bytes to skip.
        src: u64,
        /// Target pad bytes to write (as zeros).
        dst: u64,
    },
    /// A string: re-read the length prefix under `bound`, validate
    /// UTF-8 and the framing convention of each side (XDR counted+pad
    /// vs CDR counted-including-NUL), re-emit under the target framing
    /// without owning the bytes.
    Str {
        /// Declared bound (elements, per the MINT array).
        bound: Option<u64>,
    },
    /// A counted sequence: re-read the length prefix under `bound`,
    /// then transcode `elem` per element.  When `bulk` is `Some(n)`,
    /// fusion proved each element is one `n`-byte block copy and the
    /// emitter may move `len * n` bytes at once behind the same bound
    /// check.  `src_pad`/`dst_pad` mark XDR-style trailing padding of
    /// packed byte elements.
    Counted {
        /// Declared bound (elements, per the MINT array).
        bound: Option<u64>,
        /// Per-element rewrite.
        elem: Vec<XcOp>,
        /// Fused per-element byte count, if the element collapsed.
        bulk: Option<u64>,
        /// Source stream pads the packed data to its pad unit.
        src_pad: bool,
        /// Target stream pads the packed data to its pad unit.
        dst_pad: bool,
    },
    /// A fixed-length array whose element did not collapse: transcode
    /// `elem` exactly `len` times.
    Fixed {
        /// Element count.
        len: u64,
        /// Per-element rewrite.
        elem: Vec<XcOp>,
    },
    /// A discriminated union: re-encode the discriminator, then the arm
    /// it selects.  Unlisted values without a default arm reject with
    /// `BadDiscriminator`, as the endpoint decoder does.
    Union {
        /// Discriminator wire form on the source encoding.
        src_disc: WirePrim,
        /// Discriminator wire form on the target encoding.
        dst_disc: WirePrim,
        /// `(label value, arm rewrite)` per case.
        cases: Vec<(i64, Vec<XcOp>)>,
        /// Rewrite for unlisted discriminator values, if any.
        default: Option<Vec<XcOp>>,
    },
    /// ONC-style optional data: re-encode the presence flag (valid
    /// values 0/1, anything else rejects), then the pointee if present.
    Opt {
        /// Flag wire form on the source encoding.
        src_flag: WirePrim,
        /// Flag wire form on the target encoding.
        dst_flag: WirePrim,
        /// Pointee rewrite.
        elem: Vec<XcOp>,
    },
    /// Call an out-of-line helper — the recursion back-edge of
    /// self-referential presentations (linked lists).  Helper bodies
    /// live in the plan's per-direction outline tables and are never
    /// fused (each body re-walks one node, calling itself for the
    /// tail).
    Outline {
        /// Helper key (the presentation type name).
        key: String,
    },
}

/// The per-operation encoding→encoding rewrite, in every direction the
/// generated gateway needs.
///
/// "Forward" is source-encoding→target-encoding (`src → dst` as given
/// to [`plan`]); "reverse" is the opposite.  A gateway bridging an ONC
/// client to a GIOP server uses `request` (forward) on the way in and
/// `reply` (reverse) on the way back; a gateway facing the other way
/// uses the `_rev` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct TranscodePlan {
    /// Operation metadata (shared with the endpoint stubs).
    pub op: flick_pres::OpInfo,
    /// Forward rewrite of the request body (fused when the plan is).
    pub request: Vec<XcOp>,
    /// Reverse rewrite of the reply body (fused when the plan is).
    pub reply: Vec<XcOp>,
    /// Unfused forward request rewrite — the
    /// `--disable-pass=fuse-transcode` fallback, kept for the ablation
    /// and the equivalence tests.
    pub naive_request: Vec<XcOp>,
    /// Unfused reverse reply rewrite.
    pub naive_reply: Vec<XcOp>,
    /// Reverse rewrite of the request body (for a gateway whose
    /// clients speak the *target* encoding).
    pub request_rev: Vec<XcOp>,
    /// Forward rewrite of the reply body.
    pub reply_rev: Vec<XcOp>,
}

/// Aggregate fusion statistics over the forward request/reply rewrites
/// (feeds the compile report and the ablation table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XcStats {
    /// Slot-wise scalar rewrites remaining after fusion.
    pub prim_ops: u64,
    /// Fused block copies.
    pub block_copies: u64,
    /// Total bytes moved by fused block copies.
    pub block_copy_bytes: u64,
    /// Counted sequences whose elements bulk-copy.
    pub bulk_seqs: u64,
    /// String rewrites.
    pub strings: u64,
    /// Out-of-line helper calls.
    pub outlined: u64,
}

/// A full interface rewrite: one [`TranscodePlan`] per operation plus
/// the out-of-line helper bodies for each direction.
#[derive(Clone, Debug)]
pub struct TranscodePlans {
    /// Scoped interface name.
    pub interface: String,
    /// Transport program identity (ONC RPC program number).
    pub program: u64,
    /// Transport version.
    pub version: u64,
    /// Source encoding.
    pub src: Encoding,
    /// Target encoding.
    pub dst: Encoding,
    /// Whether the primary op lists were fused (`fuse-transcode` on).
    pub fused: bool,
    /// Per-operation rewrites, in stub order.
    pub stubs: Vec<TranscodePlan>,
    /// Out-of-line helper bodies for the forward (src→dst) direction.
    pub outlines_fwd: BTreeMap<String, Vec<XcOp>>,
    /// Out-of-line helper bodies for the reverse (dst→src) direction.
    pub outlines_rev: BTreeMap<String, Vec<XcOp>>,
    /// Fusion statistics over the forward rewrites.
    pub stats: XcStats,
}

/// Lowers every operation of `presc` into an encoding-pair rewrite
/// from `src` to `dst`, fusing when `fused` is set, and verifies the
/// result.
///
/// # Errors
/// Returns a message naming the unsupported construct: typed-descriptor
/// encodings (Mach-style framing interleaves type words with data and
/// has no position-stable rewrite), non-atomic scalars, or a plan that
/// fails its own verification.
pub fn plan(
    presc: &PresC,
    src: &Encoding,
    dst: &Encoding,
    fused: bool,
) -> Result<TranscodePlans, String> {
    for enc in [src, dst] {
        if enc.typed_descriptors {
            return Err(format!(
                "transcode: encoding `{}` frames items with type descriptors; \
                 only xdr/cdr-be/cdr-le streams can be rewritten position-to-position",
                enc.name
            ));
        }
    }

    let mut fwd = Lower::new(presc, src, dst);
    let mut rev = Lower::new(presc, dst, src);
    let mut stubs = Vec::new();
    let mut seen = Vec::new();
    for stub in &presc.stubs {
        if seen.contains(&stub.op.name) {
            continue;
        }
        seen.push(stub.op.name.clone());
        stubs.push(lower_stub(stub, &mut fwd, &mut rev, fused)?);
    }

    let outlines_fwd = fwd.build_outlines()?;
    let outlines_rev = rev.build_outlines()?;

    let mut stats = XcStats::default();
    for s in &stubs {
        count_ops(&s.request, &mut stats);
        count_ops(&s.reply_rev, &mut stats);
    }

    let plans = TranscodePlans {
        interface: presc.interface.clone(),
        program: presc.program,
        version: presc.version,
        src: src.clone(),
        dst: dst.clone(),
        fused,
        stubs,
        outlines_fwd,
        outlines_rev,
        stats,
    };
    verify(&plans)?;
    Ok(plans)
}

fn lower_stub(
    stub: &Stub,
    fwd: &mut Lower<'_>,
    rev: &mut Lower<'_>,
    fused: bool,
) -> Result<TranscodePlan, String> {
    let ctx = |what: &str, e: String| format!("op `{}` {what}: {e}", stub.op.name);
    let raw_request = fwd
        .lower_message(&stub.request)
        .map_err(|e| ctx("request", e))?;
    let raw_reply_fwd = fwd
        .lower_message(&stub.reply)
        .map_err(|e| ctx("reply", e))?;
    let raw_request_rev = rev
        .lower_message(&stub.request)
        .map_err(|e| ctx("request", e))?;
    let raw_reply = rev
        .lower_message(&stub.reply)
        .map_err(|e| ctx("reply", e))?;

    let maybe_fuse = |ops: &[XcOp]| {
        if fused {
            fuse(ops.to_vec())
        } else {
            ops.to_vec()
        }
    };
    Ok(TranscodePlan {
        op: stub.op.clone(),
        request: maybe_fuse(&raw_request),
        reply: maybe_fuse(&raw_reply),
        naive_request: raw_request,
        naive_reply: raw_reply,
        request_rev: maybe_fuse(&raw_request_rev),
        reply_rev: maybe_fuse(&raw_reply_fwd),
    })
}

// ---------------------------------------------------------------------------
// Lowering: presentation tree → raw (unfused) op list, one direction.
// ---------------------------------------------------------------------------

struct Lower<'a> {
    presc: &'a PresC,
    from: &'a Encoding,
    to: &'a Encoding,
    /// Keys of the aggregates currently being walked (cycle guard).
    stack: Vec<String>,
    /// Recursive presentations demanded as out-of-line helpers.
    demand: BTreeMap<String, PresId>,
}

impl<'a> Lower<'a> {
    fn new(presc: &'a PresC, from: &'a Encoding, to: &'a Encoding) -> Self {
        Lower {
            presc,
            from,
            to,
            stack: Vec::new(),
            demand: BTreeMap::new(),
        }
    }

    /// Lowers one message: the live slots in marshal order.  Dead slots
    /// (`live: false`) left the wire at the endpoints via the
    /// `dead-slot` pass, so the gateway never sees their bytes; the
    /// transcoder assumes endpoint stubs built with the full pipeline.
    fn lower_message(&mut self, msg: &flick_pres::MessagePres) -> Result<Vec<XcOp>, String> {
        let mut out = Vec::new();
        for slot in &msg.slots {
            if !slot.live {
                continue;
            }
            self.walk(slot.pres, &mut out)?;
        }
        Ok(out)
    }

    fn walk(&mut self, pres: PresId, out: &mut Vec<XcOp>) -> Result<(), String> {
        let node = self.presc.pres.get(pres).clone();
        let is_candidate = matches!(
            node,
            PresNode::StructMap { .. } | PresNode::UnionMap { .. } | PresNode::OptionalPtr { .. }
        );
        if is_candidate {
            let key =
                type_name_of(self.presc, pres).unwrap_or_else(|| format!("anon_{}", pres.index()));
            if self.stack.contains(&key) {
                self.demand.insert(key.clone(), pres);
                out.push(XcOp::Outline { key });
                return Ok(());
            }
            self.stack.push(key);
        }
        let r = self.walk_inner(&node, out);
        if is_candidate {
            self.stack.pop();
        }
        r
    }

    fn walk_inner(&mut self, node: &PresNode, out: &mut Vec<XcOp>) -> Result<(), String> {
        match node {
            PresNode::Void => {}
            PresNode::Direct { mint, .. } => {
                if let Some((src, dst)) = self.atom(*mint)? {
                    out.push(XcOp::Prim { src, dst });
                }
            }
            // Enums travel as a 4-byte unsigned on every encoding
            // (mirrors the endpoint lowering in `plan.rs`).
            PresNode::EnumMap { .. } => out.push(XcOp::Prim {
                src: self.from.prim_for_size(4, false),
                dst: self.to.prim_for_size(4, false),
            }),
            PresNode::FixedArray { elem, len, .. } => {
                self.lower_fixed(*elem, *len, out)?;
            }
            PresNode::TerminatedString { mint, .. } => out.push(XcOp::Str {
                bound: self.array_bound(*mint)?,
            }),
            PresNode::OptPtr { mint, elem, .. } | PresNode::CountedSeq { mint, elem, .. } => {
                self.lower_counted(*mint, *elem, out)?;
            }
            PresNode::StructMap { fields, .. } => {
                for (_, f) in fields {
                    self.walk(*f, out)?;
                }
            }
            PresNode::UnionMap {
                discrim,
                cases,
                default,
                ..
            } => {
                let (src_disc, dst_disc) = match self.presc.pres.get(*discrim) {
                    PresNode::Direct { mint, .. } => match self.atom(*mint)? {
                        Some(pair) => pair,
                        None => return Err("transcode: void union discriminator".into()),
                    },
                    PresNode::EnumMap { .. } => (
                        self.from.prim_for_size(4, false),
                        self.to.prim_for_size(4, false),
                    ),
                    other => {
                        return Err(format!(
                            "transcode: unsupported union discriminator {other:?}"
                        ))
                    }
                };
                let mut arms = Vec::new();
                for (v, _, c) in cases {
                    let mut body = Vec::new();
                    self.walk(*c, &mut body)?;
                    arms.push((*v, body));
                }
                let default = match default {
                    Some((_, d)) => {
                        let mut body = Vec::new();
                        self.walk(*d, &mut body)?;
                        Some(body)
                    }
                    None => None,
                };
                out.push(XcOp::Union {
                    src_disc,
                    dst_disc,
                    cases: arms,
                    default,
                });
            }
            PresNode::OptionalPtr { elem, .. } => {
                let mut body = Vec::new();
                self.walk(*elem, &mut body)?;
                out.push(XcOp::Opt {
                    src_flag: self.from.prim_for_size(1, false),
                    dst_flag: self.to.prim_for_size(1, false),
                    elem: body,
                });
            }
        }
        Ok(())
    }

    fn lower_fixed(&mut self, elem: PresId, len: u64, out: &mut Vec<XcOp>) -> Result<(), String> {
        if let Some((src, dst)) = self.elem_prims(elem)? {
            out.push(XcOp::Fixed {
                len,
                elem: vec![XcOp::Prim { src, dst }],
            });
            let sp = trailing_pad(self.from, src, len);
            let dp = trailing_pad(self.to, dst, len);
            if sp > 0 || dp > 0 {
                out.push(XcOp::Pad { src: sp, dst: dp });
            }
        } else {
            let mut body = Vec::new();
            self.walk(elem, &mut body)?;
            out.push(XcOp::Fixed { len, elem: body });
        }
        Ok(())
    }

    fn lower_counted(
        &mut self,
        mint: MintId,
        elem: PresId,
        out: &mut Vec<XcOp>,
    ) -> Result<(), String> {
        let bound = self.array_bound(mint)?;
        let (body, src_pad, dst_pad) = if let Some((src, dst)) = self.elem_prims(elem)? {
            // Packed byte elements need trailing padding on word-unit
            // streams; wider slots always tile the pad unit already.
            (
                vec![XcOp::Prim { src, dst }],
                self.from.pad_unit.is_some() && src.slot == 1,
                self.to.pad_unit.is_some() && dst.slot == 1,
            )
        } else {
            let mut body = Vec::new();
            self.walk(elem, &mut body)?;
            (body, false, false)
        };
        out.push(XcOp::Counted {
            bound,
            elem: body,
            bulk: None,
            src_pad,
            dst_pad,
        });
        Ok(())
    }

    /// Source/target wire forms of an atomic MINT node; `None` for
    /// void (no bytes).
    fn atom(&self, m: MintId) -> Result<Option<(WirePrim, WirePrim)>, String> {
        match self.presc.mint.get(m) {
            MintNode::Void => Ok(None),
            MintNode::Integer { .. } | MintNode::Scalar(_) => Ok(Some((
                self.from.prim(&self.presc.mint, m),
                self.to.prim(&self.presc.mint, m),
            ))),
            other => Err(format!("transcode: scalar over non-atomic MINT {other:?}")),
        }
    }

    /// Wire forms of an array element if it is a scalar presentation.
    fn elem_prims(&self, elem: PresId) -> Result<Option<(WirePrim, WirePrim)>, String> {
        match self.presc.pres.get(elem) {
            PresNode::Direct { mint, .. } => match self.presc.mint.get(*mint) {
                MintNode::Void => Ok(None),
                MintNode::Integer { .. } | MintNode::Scalar(_) => Ok(Some((
                    self.from.elem_prim(&self.presc.mint, *mint),
                    self.to.elem_prim(&self.presc.mint, *mint),
                ))),
                other => Err(format!("transcode: array of non-atomic MINT {other:?}")),
            },
            PresNode::EnumMap { .. } => Ok(Some((
                self.from.prim_for_size(4, false),
                self.to.prim_for_size(4, false),
            ))),
            _ => Ok(None),
        }
    }

    fn array_bound(&self, m: MintId) -> Result<Option<u64>, String> {
        match self.presc.mint.get(m) {
            MintNode::Array { len, .. } => Ok(len.max),
            other => Err(format!(
                "transcode: counted data over non-array MINT {other:?}"
            )),
        }
    }

    /// Resolves every demanded out-of-line helper to its body,
    /// discovering transitively demanded helpers as it goes.  Bodies
    /// are lowered raw (never fused): they are shared between the
    /// fused and naive emission paths, and recursion dominates their
    /// cost anyway.
    fn build_outlines(&mut self) -> Result<BTreeMap<String, Vec<XcOp>>, String> {
        let mut done: BTreeMap<String, Vec<XcOp>> = BTreeMap::new();
        loop {
            let next = self
                .demand
                .iter()
                .find(|(k, _)| !done.contains_key(*k))
                .map(|(k, p)| (k.clone(), *p));
            let Some((key, pres)) = next else {
                return Ok(done);
            };
            self.stack.clear();
            let mut body = Vec::new();
            self.walk(pres, &mut body)?;
            done.insert(key, body);
        }
    }
}

/// Trailing padding after a fixed packed run (mirrors the layout
/// cursor: runs that tile — `slot == size` — pad the stream to the
/// encoding's pad unit; widened elements are already word-multiples).
fn trailing_pad(enc: &Encoding, p: WirePrim, len: u64) -> u64 {
    if p.slot != p.size {
        return 0;
    }
    match enc.pad_unit {
        Some(u) => {
            let data = len * u64::from(p.slot);
            let u = u64::from(u);
            (u - data % u) % u
        }
        None => 0,
    }
}

// ---------------------------------------------------------------------------
// Fusion: the transcode analogue of coalesce-memcpy.
// ---------------------------------------------------------------------------

/// True when a scalar's two wire forms agree byte-for-byte, making a
/// raw copy equivalent to decode-then-re-encode even on hostile input.
#[must_use]
pub fn copyable(src: &WirePrim, dst: &WirePrim) -> bool {
    if src.size != dst.size || src.slot != src.size || dst.slot != dst.size {
        return false;
    }
    if src.float || dst.float {
        return false;
    }
    src.size == 1 || src.order == dst.order
}

/// Fuses a raw op list: collapses adjacent copyable prims into block
/// copies, hoists fixed arrays of collapsed elements, and marks
/// counted sequences whose element tiles both streams for bulk copy.
#[must_use]
pub fn fuse(ops: Vec<XcOp>) -> Vec<XcOp> {
    let mut out: Vec<XcOp> = Vec::new();
    for op in ops {
        match fuse_children(op) {
            XcOp::Prim { src, dst } if copyable(&src, &dst) => {
                append_copy(&mut out, XcPart { src, dst, count: 1 });
            }
            XcOp::BlockCopy { parts, .. } => {
                for p in parts {
                    append_copy(&mut out, p);
                }
            }
            other => out.push(other),
        }
    }
    out
}

/// Fuses inside an op's children and applies the per-op rewrites
/// (fixed-array hoist, counted bulk marking).
fn fuse_children(op: XcOp) -> XcOp {
    match op {
        XcOp::Fixed { len, elem } => {
            let elem = fuse(elem);
            if len > 0 {
                if let [XcOp::BlockCopy { bytes, parts }] = elem.as_slice() {
                    if tiles(*bytes, parts) && (parts.len() == 1 || len * parts.len() as u64 <= 256)
                    {
                        return scale_block(len, *bytes, parts);
                    }
                }
            }
            XcOp::Fixed { len, elem }
        }
        XcOp::Counted {
            bound,
            elem,
            src_pad,
            dst_pad,
            ..
        } => {
            let elem = fuse(elem);
            let bulk = match elem.as_slice() {
                [XcOp::BlockCopy { bytes, parts }] if tiles(*bytes, parts) => Some(*bytes),
                _ => None,
            };
            XcOp::Counted {
                bound,
                elem,
                bulk,
                src_pad,
                dst_pad,
            }
        }
        XcOp::Union {
            src_disc,
            dst_disc,
            cases,
            default,
        } => XcOp::Union {
            src_disc,
            dst_disc,
            cases: cases.into_iter().map(|(v, b)| (v, fuse(b))).collect(),
            default: default.map(fuse),
        },
        XcOp::Opt {
            src_flag,
            dst_flag,
            elem,
        } => XcOp::Opt {
            src_flag,
            dst_flag,
            elem: fuse(elem),
        },
        other => other,
    }
}

/// True when repeating a `bytes`-wide block keeps every part aligned —
/// the hoist/bulk admission rule.
fn tiles(bytes: u64, parts: &[XcPart]) -> bool {
    parts.iter().all(|p| {
        bytes.is_multiple_of(u64::from(p.src.align.max(1)))
            && bytes.is_multiple_of(u64::from(p.dst.align.max(1)))
    })
}

/// A fixed array of one collapsed `bytes`-wide block, hoisted to a
/// single `len * bytes` block.
fn scale_block(len: u64, bytes: u64, parts: &[XcPart]) -> XcOp {
    let scaled = if parts.len() == 1 {
        let mut p = parts[0].clone();
        p.count *= len;
        vec![p]
    } else {
        let mut v = Vec::with_capacity(parts.len() * usize::try_from(len).unwrap_or(usize::MAX));
        for _ in 0..len {
            v.extend(parts.iter().cloned());
        }
        v
    };
    XcOp::BlockCopy {
        bytes: len * bytes,
        parts: scaled,
    }
}

/// Appends one copyable run to the op list, extending the trailing
/// block copy when the run is admissible at the block's current
/// offset: its alignment must not exceed the block head's (the head
/// carries the runtime alignment), and the offset must satisfy it on
/// both streams.
fn append_copy(out: &mut Vec<XcOp>, part: XcPart) {
    if let Some(XcOp::BlockCopy { bytes, parts }) = out.last_mut() {
        let head = &parts[0];
        let sa = u64::from(part.src.align.max(1));
        let da = u64::from(part.dst.align.max(1));
        if part.src.align <= head.src.align
            && part.dst.align <= head.dst.align
            && *bytes % sa == 0
            && *bytes % da == 0
        {
            let add = part.bytes();
            if let Some(last) = parts.last_mut() {
                if last.src == part.src && last.dst == part.dst {
                    last.count += part.count;
                    *bytes += add;
                    return;
                }
            }
            parts.push(part);
            *bytes += add;
            return;
        }
    }
    let bytes = part.bytes();
    out.push(XcOp::BlockCopy {
        bytes,
        parts: vec![part],
    });
}

// ---------------------------------------------------------------------------
// Verification: every fusion obligation re-derived from scratch.
// ---------------------------------------------------------------------------

/// Checks a lowered transcode plan.
///
/// Obligations: fused ops (`BlockCopy`, counted `bulk`) appear only in
/// primary lists of a fused plan, never in the naive twins or outline
/// bodies; every block copy's parts are [`copyable`] and admissible at
/// their offsets, and its byte count is their sum; a bulk-marked
/// sequence's element is exactly one tiling block; every prim pair
/// agrees on size/signedness/floatness; union labels are unique; every
/// outline key resolves in its direction's helper table.
///
/// # Errors
/// Returns a message naming the op and the violated obligation.
pub fn verify(plans: &TranscodePlans) -> Result<(), String> {
    for stub in &plans.stubs {
        let op = &stub.op.name;
        let fused = plans.fused;
        check_ops(&stub.request, fused, &plans.outlines_fwd)
            .map_err(|e| format!("op `{op}` request: {e}"))?;
        check_ops(&stub.reply, fused, &plans.outlines_rev)
            .map_err(|e| format!("op `{op}` reply: {e}"))?;
        check_ops(&stub.naive_request, false, &plans.outlines_fwd)
            .map_err(|e| format!("op `{op}` naive request: {e}"))?;
        check_ops(&stub.naive_reply, false, &plans.outlines_rev)
            .map_err(|e| format!("op `{op}` naive reply: {e}"))?;
        check_ops(&stub.request_rev, fused, &plans.outlines_rev)
            .map_err(|e| format!("op `{op}` reverse request: {e}"))?;
        check_ops(&stub.reply_rev, fused, &plans.outlines_fwd)
            .map_err(|e| format!("op `{op}` reverse reply: {e}"))?;
    }
    for (key, body) in &plans.outlines_fwd {
        check_ops(body, false, &plans.outlines_fwd)
            .map_err(|e| format!("forward outline `{key}`: {e}"))?;
    }
    for (key, body) in &plans.outlines_rev {
        check_ops(body, false, &plans.outlines_rev)
            .map_err(|e| format!("reverse outline `{key}`: {e}"))?;
    }
    Ok(())
}

fn check_ops(
    ops: &[XcOp],
    fused_allowed: bool,
    outlines: &BTreeMap<String, Vec<XcOp>>,
) -> Result<(), String> {
    for op in ops {
        match op {
            XcOp::Prim { src, dst } => {
                if src.size != dst.size || src.signed != dst.signed || src.float != dst.float {
                    return Err(format!(
                        "prim pair disagrees on value shape: {src:?} vs {dst:?}"
                    ));
                }
            }
            XcOp::BlockCopy { bytes, parts } => {
                if !fused_allowed {
                    return Err("block copy in an unfused op list".into());
                }
                check_block(*bytes, parts)?;
            }
            XcOp::Pad { .. } | XcOp::Str { .. } => {}
            XcOp::Counted { elem, bulk, .. } => {
                if let Some(b) = bulk {
                    if !fused_allowed {
                        return Err("bulk-marked sequence in an unfused op list".into());
                    }
                    match elem.as_slice() {
                        [XcOp::BlockCopy { bytes, parts }] if bytes == b && tiles(*b, parts) => {}
                        other => {
                            return Err(format!(
                                "bulk mark {b} not backed by one tiling block: {other:?}"
                            ))
                        }
                    }
                }
                check_ops(elem, fused_allowed, outlines)?;
            }
            XcOp::Fixed { elem, .. } => check_ops(elem, fused_allowed, outlines)?,
            XcOp::Union { cases, default, .. } => {
                let mut labels: Vec<i64> = cases.iter().map(|(v, _)| *v).collect();
                labels.sort_unstable();
                labels.dedup();
                if labels.len() != cases.len() {
                    return Err("duplicate union labels".into());
                }
                for (_, b) in cases {
                    check_ops(b, fused_allowed, outlines)?;
                }
                if let Some(d) = default {
                    check_ops(d, fused_allowed, outlines)?;
                }
            }
            XcOp::Opt {
                src_flag,
                dst_flag,
                elem,
            } => {
                if src_flag.size != 1 || dst_flag.size != 1 {
                    return Err("optional flag must be a 1-byte value".into());
                }
                check_ops(elem, fused_allowed, outlines)?;
            }
            XcOp::Outline { key } => {
                if !outlines.contains_key(key) {
                    return Err(format!("outline `{key}` has no helper body"));
                }
            }
        }
    }
    Ok(())
}

fn check_block(bytes: u64, parts: &[XcPart]) -> Result<(), String> {
    let Some(head) = parts.first() else {
        return Err("empty block copy".into());
    };
    let mut off = 0u64;
    for p in parts {
        if !copyable(&p.src, &p.dst) {
            return Err(format!("non-copyable part in block: {p:?}"));
        }
        if p.src.align > head.src.align || p.dst.align > head.dst.align {
            return Err("block part over-aligned relative to block head".into());
        }
        if !off.is_multiple_of(u64::from(p.src.align.max(1)))
            || !off.is_multiple_of(u64::from(p.dst.align.max(1)))
        {
            return Err(format!("block part misaligned at offset {off}"));
        }
        off += p.bytes();
    }
    if off != bytes {
        return Err(format!("block byte count {bytes} != part sum {off}"));
    }
    Ok(())
}

fn count_ops(ops: &[XcOp], s: &mut XcStats) {
    for op in ops {
        match op {
            XcOp::Prim { .. } => s.prim_ops += 1,
            XcOp::BlockCopy { bytes, .. } => {
                s.block_copies += 1;
                s.block_copy_bytes += bytes;
            }
            XcOp::Pad { .. } => {}
            XcOp::Str { .. } => s.strings += 1,
            XcOp::Counted { elem, bulk, .. } => {
                if bulk.is_some() {
                    s.bulk_seqs += 1;
                }
                count_ops(elem, s);
            }
            XcOp::Fixed { elem, .. } => count_ops(elem, s),
            XcOp::Union { cases, default, .. } => {
                for (_, b) in cases {
                    count_ops(b, s);
                }
                if let Some(d) = default {
                    count_ops(d, s);
                }
            }
            XcOp::Opt { elem, .. } => count_ops(elem, s),
            XcOp::Outline { .. } => s.outlined += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_cast::{CFunction, CType, CUnit};
    use flick_mint::MintGraph;
    use flick_pres::{MessagePres, OpInfo, ParamBinding, PresNode, PresTree, Side, StubKind};

    fn live(name: &str, pres: PresId) -> ParamBinding {
        ParamBinding {
            c_name: name.into(),
            pres,
            by_ref: false,
            live: true,
        }
    }

    fn presc_with(
        build: impl FnOnce(&mut MintGraph, &mut PresTree) -> (Vec<ParamBinding>, Vec<ParamBinding>),
    ) -> PresC {
        let mut mint = MintGraph::new();
        let mut pres = PresTree::new();
        let (req, rep) = build(&mut mint, &mut pres);
        let void = mint.void();
        PresC {
            side: Side::Server,
            interface: "T".into(),
            program: 0x2000_0001,
            version: 1,
            mint,
            pres,
            cast: CUnit::default(),
            stubs: vec![Stub {
                name: "t_op".into(),
                kind: StubKind::ServerWork,
                decl: CFunction {
                    name: "t_op".into(),
                    ret: CType::Void,
                    params: vec![],
                    body: None,
                },
                request: MessagePres {
                    mint: void,
                    slots: req,
                },
                reply: MessagePres {
                    mint: void,
                    slots: rep,
                },
                op: OpInfo {
                    name: "t_op".into(),
                    request_code: 1,
                    wire_name: "t_op".into(),
                    oneway: false,
                },
            }],
            style: "test".into(),
        }
    }

    /// The paper's 136-byte dirent shape: struct { i32 fields[30];
    /// char tag[16] }.
    fn stat_presc() -> PresC {
        presc_with(|mint, pres| {
            let i32m = mint.i32();
            let c8 = mint.char8();
            let fields_m = mint.array_fixed(i32m, 30);
            let tag_m = mint.array_fixed(c8, 16);
            let st_m = mint.structure(vec![("fields".into(), fields_m), ("tag".into(), tag_m)]);
            let fe = pres.add(PresNode::Direct {
                mint: i32m,
                ctype: CType::Int,
            });
            let te = pres.add(PresNode::Direct {
                mint: c8,
                ctype: CType::Char,
            });
            let fa = pres.add(PresNode::FixedArray {
                mint: fields_m,
                elem: fe,
                len: 30,
                ctype: CType::named("fields_t"),
            });
            let ta = pres.add(PresNode::FixedArray {
                mint: tag_m,
                elem: te,
                len: 16,
                ctype: CType::named("tag_t"),
            });
            let st = pres.add(PresNode::StructMap {
                mint: st_m,
                ctype: CType::named("stat_t"),
                fields: vec![("fields".into(), fa), ("tag".into(), ta)],
            });
            (vec![live("s", st)], vec![])
        })
    }

    fn has_block(ops: &[XcOp]) -> bool {
        ops.iter().any(|op| match op {
            XcOp::BlockCopy { .. } => true,
            XcOp::Counted { elem, bulk, .. } => bulk.is_some() || has_block(elem),
            XcOp::Fixed { elem, .. } | XcOp::Opt { elem, .. } => has_block(elem),
            XcOp::Union { cases, default, .. } => {
                cases.iter().any(|(_, b)| has_block(b))
                    || default.as_ref().is_some_and(|d| has_block(d))
            }
            _ => false,
        })
    }

    #[test]
    fn matching_orders_collapse_stat_to_one_block() {
        // XDR and big-endian CDR lay the 136-byte stat out identically:
        // the whole struct fuses to a single block copy.
        let p = stat_presc();
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        let req = &plans.stubs[0].request;
        match req.as_slice() {
            [XcOp::BlockCopy { bytes: 136, parts }] => {
                assert_eq!(parts.len(), 2, "i32 run + byte run: {parts:?}");
                assert_eq!((parts[0].count, parts[0].src.size), (30, 4));
                assert_eq!((parts[1].count, parts[1].src.size), (16, 1));
            }
            other => panic!("expected one 136-byte block, got {other:?}"),
        }
        assert_eq!(plans.stats.block_copies, 1);
        assert_eq!(plans.stats.block_copy_bytes, 136);
    }

    #[test]
    fn order_mismatch_keeps_scalars_slotwise_but_fuses_bytes() {
        // XDR (BE) → CDR-LE: the 30 i32s must reswizzle one by one,
        // but the 16 tag bytes still block-copy.
        let p = stat_presc();
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_le(), true).unwrap();
        let req = &plans.stubs[0].request;
        assert_eq!(req.len(), 2, "{req:?}");
        assert!(
            matches!(&req[0], XcOp::Fixed { len: 30, elem } if matches!(elem.as_slice(), [XcOp::Prim { .. }])),
            "i32 run stays slot-wise: {:?}",
            req[0]
        );
        assert!(
            matches!(&req[1], XcOp::BlockCopy { bytes: 16, .. }),
            "byte run still fuses: {:?}",
            req[1]
        );
    }

    fn rects_presc() -> PresC {
        presc_with(|mint, pres| {
            let i32m = mint.i32();
            let rect_m = mint.structure(vec![
                ("x".into(), i32m),
                ("y".into(), i32m),
                ("w".into(), i32m),
                ("h".into(), i32m),
            ]);
            let seq_m = mint.array_variable(rect_m, Some(1024));
            let fe = pres.add(PresNode::Direct {
                mint: i32m,
                ctype: CType::Int,
            });
            let rect = pres.add(PresNode::StructMap {
                mint: rect_m,
                ctype: CType::named("rect_t"),
                fields: vec![
                    ("x".into(), fe),
                    ("y".into(), fe),
                    ("w".into(), fe),
                    ("h".into(), fe),
                ],
            });
            let seq = pres.add(PresNode::CountedSeq {
                mint: seq_m,
                elem: rect,
                ctype: CType::named("rect_seq"),
                length_field: "_length".into(),
                maximum_field: "_maximum".into(),
                buffer_field: "_buffer".into(),
                alloc: flick_pres::AllocSem::heap_only(),
            });
            (vec![live("rs", seq)], vec![])
        })
    }

    #[test]
    fn counted_structs_bulk_copy_when_layouts_agree() {
        let p = rects_presc();
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        match plans.stubs[0].request.as_slice() {
            [XcOp::Counted {
                bound: Some(1024),
                bulk: Some(16),
                ..
            }] => {}
            other => panic!("expected bulk-16 sequence, got {other:?}"),
        }
        assert_eq!(plans.stats.bulk_seqs, 1);

        // Reswizzling orders: the bound survives but nothing fuses.
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_le(), true).unwrap();
        match plans.stubs[0].request.as_slice() {
            [XcOp::Counted { bulk: None, .. }] => {}
            other => panic!("expected unfused sequence, got {other:?}"),
        }
    }

    #[test]
    fn naive_twins_never_fuse() {
        let p = stat_presc();
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        let s = &plans.stubs[0];
        assert!(!has_block(&s.naive_request));
        assert!(!has_block(&s.naive_reply));
        assert!(has_block(&s.request));

        // With the pass disabled the primary lists match the twins.
        let off = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), false).unwrap();
        assert_eq!(off.stubs[0].request, off.stubs[0].naive_request);
        assert!(!off.fused);
    }

    #[test]
    fn widened_and_float_slots_refuse_to_fuse() {
        let p = presc_with(|mint, pres| {
            let i16m = mint.i16();
            let f32m = mint.f32();
            let u32m = mint.u32();
            let a = pres.add(PresNode::Direct {
                mint: u32m,
                ctype: CType::UInt,
            });
            let b = pres.add(PresNode::Direct {
                mint: i16m,
                ctype: CType::Short,
            });
            let c = pres.add(PresNode::Direct {
                mint: f32m,
                ctype: CType::Float,
            });
            (vec![live("a", a), live("b", b), live("c", c)], vec![])
        });
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        let req = &plans.stubs[0].request;
        // u32 fuses alone; the widened i16 (4-byte XDR slot vs 2-byte
        // CDR slot) and the float both stay slot-wise.
        assert_eq!(req.len(), 3, "{req:?}");
        assert!(matches!(&req[0], XcOp::BlockCopy { bytes: 4, .. }));
        assert!(matches!(&req[1], XcOp::Prim { src, .. } if src.slot == 4 && src.size == 2));
        assert!(matches!(&req[2], XcOp::Prim { src, .. } if src.float));
    }

    #[test]
    fn byte_runs_pad_and_pads_never_fuse() {
        // char[6]: XDR pads to 8, CDR doesn't — the pad op must stay
        // outside the block copy so hostile pad bytes re-zero.
        let p = presc_with(|mint, pres| {
            let c8 = mint.char8();
            let am = mint.array_fixed(c8, 6);
            let e = pres.add(PresNode::Direct {
                mint: c8,
                ctype: CType::Char,
            });
            let a = pres.add(PresNode::FixedArray {
                mint: am,
                elem: e,
                len: 6,
                ctype: CType::named("tag6"),
            });
            (vec![live("t", a)], vec![])
        });
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        let req = &plans.stubs[0].request;
        assert_eq!(req.len(), 2, "{req:?}");
        assert!(matches!(&req[0], XcOp::BlockCopy { bytes: 6, .. }));
        assert_eq!(req[1], XcOp::Pad { src: 2, dst: 0 });
        // And the reverse direction mirrors the pad.
        let rev = &plans.stubs[0].request_rev;
        assert_eq!(rev[1], XcOp::Pad { src: 0, dst: 2 });
    }

    #[test]
    fn dead_slots_leave_the_wire_and_strings_keep_bounds() {
        let p = presc_with(|mint, pres| {
            let sm = mint.string(Some(64));
            let i32m = mint.i32();
            let s = pres.add(PresNode::TerminatedString {
                mint: sm,
                alloc: flick_pres::AllocSem::heap_only(),
            });
            let d = pres.add(PresNode::Direct {
                mint: i32m,
                ctype: CType::Int,
            });
            (
                vec![
                    live("msg", s),
                    ParamBinding {
                        c_name: "_pad".into(),
                        pres: d,
                        by_ref: false,
                        live: false,
                    },
                ],
                vec![],
            )
        });
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        assert_eq!(
            plans.stubs[0].request.as_slice(),
            &[XcOp::Str { bound: Some(64) }]
        );
    }

    #[test]
    fn typed_descriptor_encodings_are_rejected() {
        let p = stat_presc();
        let err = plan(&p, &Encoding::mach3(), &Encoding::cdr_be(), true).unwrap_err();
        assert!(err.contains("mach3"), "{err}");
    }

    #[test]
    fn verifier_rejects_corrupt_fusions() {
        let p = stat_presc();
        let good = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();

        // Byte count out of sync with the parts.
        let mut bad = good.clone();
        if let XcOp::BlockCopy { bytes, .. } = &mut bad.stubs[0].request[0] {
            *bytes += 1;
        }
        assert!(verify(&bad).unwrap_err().contains("byte count"));

        // A block copy surviving into an unfused plan.
        let mut bad = good.clone();
        bad.fused = false;
        assert!(verify(&bad).unwrap_err().contains("unfused"));

        // A block copy smuggled into the naive twin.
        let mut bad = good.clone();
        let block = bad.stubs[0].request[0].clone();
        bad.stubs[0].naive_request.push(block);
        assert!(verify(&bad).unwrap_err().contains("unfused"));

        // An unresolved outline key.
        let mut bad = good.clone();
        bad.stubs[0]
            .request
            .push(XcOp::Outline { key: "nope".into() });
        assert!(verify(&bad).unwrap_err().contains("nope"));

        // A non-copyable part forced into a block.
        let mut bad = good;
        if let XcOp::BlockCopy { parts, .. } = &mut bad.stubs[0].request[0] {
            parts[0].dst.order = Encoding::cdr_le().order;
        }
        assert!(verify(&bad).unwrap_err().contains("non-copyable"));
    }

    #[test]
    fn recursive_structs_outline_per_direction() {
        // A linked list: struct node { i32 v; node *next; }.
        let p = presc_with(|mint, pres| {
            let i32m = mint.i32();
            let node_m = mint.structure(vec![("v".into(), i32m)]);
            let vd = pres.add(PresNode::Direct {
                mint: i32m,
                ctype: CType::Int,
            });
            let node_p = pres.reserve();
            let next = pres.add(PresNode::OptionalPtr {
                mint: node_m,
                elem: node_p,
                ctype: CType::ptr(CType::named("node")),
                alloc: flick_pres::AllocSem::heap_only(),
            });
            pres.patch(
                node_p,
                PresNode::StructMap {
                    mint: node_m,
                    ctype: CType::named("node"),
                    fields: vec![("v".into(), vd), ("next".into(), next)],
                },
            );
            (vec![live("head", node_p)], vec![])
        });
        let plans = plan(&p, &Encoding::xdr(), &Encoding::cdr_be(), true).unwrap();
        assert!(plans.outlines_fwd.contains_key("node"), "{plans:?}");
        let body = &plans.outlines_fwd["node"];
        assert!(
            body.iter().any(|op| matches!(op, XcOp::Opt { elem, .. }
                if elem.iter().any(|o| matches!(o, XcOp::Outline { key } if key == "node")))),
            "helper recurses through the optional tail: {body:?}"
        );
        assert!(!has_block(body), "helper bodies stay unfused: {body:?}");
    }
}
