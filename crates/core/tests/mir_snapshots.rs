//! Golden `--dump-mir` snapshots for the three extension passes.
//!
//! Each test compiles a checked-in interface and compares the MIR
//! rendering after one pass against a golden file in `testdata/mir/`.
//! The snapshots pin down exactly what each pass changes (and, for
//! the IIOP/CDR configurations, what it refuses to change):
//!
//! * `dead-slot` — the suppressed `_pad` slot is gone from the
//!   `echo_stat` request under both encodings;
//! * `merge-prefix` — the demux trie's `send_*` subtree carries a
//!   `prefix=[len-u32]` hoist;
//! * `reply-alias` — `_return` is marked `alias request[0]` under XDR
//!   (position-independent) and deliberately unmarked under CDR
//!   (alignment makes reply offsets differ from request offsets).
//!
//! Regenerate after an intentional MIR or pass change with:
//! `FLICK_BLESS_MIR=1 cargo test -p flick --test mir_snapshots`

use flick::{Compiler, Frontend, MirDump, Style, Transport};
use flick_pres::Side;

const BENCH_IDL: &str = include_str!("../../../testdata/bench.idl");
const BENCH_X: &str = include_str!("../../../testdata/bench.x");
const PASSES: [&str; 3] = ["dead-slot", "merge-prefix", "reply-alias"];

fn dump_after(mut compiler: Compiler, file: &str, src: &str, pass: &str) -> String {
    compiler.backend.dump_mir = Some(MirDump {
        after: Some(pass.into()),
    });
    let out = compiler
        .compile_source(file, src, "Bench", Side::Server)
        .unwrap_or_else(|e| panic!("{file} after {pass}: {e}"));
    out.mir_dump.expect("a dump was requested")
}

fn check_snapshot(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../testdata/mir")
        .join(format!("{name}.txt"));
    if std::env::var_os("FLICK_BLESS_MIR").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; bless with FLICK_BLESS_MIR=1", path.display()));
    assert_eq!(
        rendered,
        golden,
        "MIR after this pass diverged from {}; if the change is \
         intentional, re-bless with FLICK_BLESS_MIR=1",
        path.display()
    );
}

#[test]
fn corba_iiop_snapshots() {
    for pass in PASSES {
        let c = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp);
        let dump = dump_after(c, "bench.idl", BENCH_IDL, pass);
        check_snapshot(&format!("bench_idl_iiop_{pass}"), &dump);
    }
}

#[test]
fn onc_xdr_snapshots() {
    for pass in PASSES {
        let c = Compiler::new(Frontend::Onc, Style::RpcgenC, Transport::OncTcp);
        let dump = dump_after(c, "bench.x", BENCH_X, pass);
        check_snapshot(&format!("bench_x_onc_{pass}"), &dump);
    }
}

#[test]
fn snapshots_show_each_pass_effect() {
    // Belt and braces beyond byte equality: the properties the goldens
    // exist to pin down, asserted structurally so a re-bless cannot
    // silently lose them.
    let c = || Compiler::new(Frontend::Onc, Style::RpcgenC, Transport::OncTcp);
    let ds = dump_after(c(), "bench.x", BENCH_X, "dead-slot");
    assert!(!ds.contains("_pad"), "dead slot still present:\n{ds}");
    let mp = dump_after(c(), "bench.x", BENCH_X, "merge-prefix");
    assert!(mp.contains("prefix=[len-u32]"), "no hoisted prefix:\n{mp}");
    let ra = dump_after(c(), "bench.x", BENCH_X, "reply-alias");
    assert!(ra.contains("(alias request[0])"), "no alias mark:\n{ra}");

    // CDR alignment is position-dependent, so the alias gate must hold.
    let cdr = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp);
    let ra = dump_after(cdr, "bench.idl", BENCH_IDL, "reply-alias");
    assert!(!ra.contains("alias request"), "alias under CDR:\n{ra}");
}
