//! Compile tracing: every pipeline configuration reports every phase.

use flick::{Compiler, Frontend, Phase, Style, Transport};
use flick_pres::Side;

const MAIL_IDL: &str = "interface Mail { void send(in string msg); };";
const MAIL_X: &str = "program Mail { version V { void send(string msg) = 1; } = 1; } = 0x20000001;";

const PHASES: [&str; 6] = [
    "parse",
    "presgen",
    "backend.plan",
    "backend.emit-c",
    "backend.print-c",
    "backend.emit-rust",
];

const TRANSPORTS: [Transport; 5] = [
    Transport::IiopTcp,
    Transport::OncTcp,
    Transport::OncUdp,
    Transport::Mach3,
    Transport::Fluke,
];

#[test]
fn all_fifteen_combinations_report_every_phase() {
    // The paper's kit claim: 3 presentations × 5 transports, and every
    // configuration is traced the same way.
    let styles = [Style::CorbaC, Style::RpcgenC, Style::FlukeC];
    let mut combos = 0;
    for style in styles {
        for transport in TRANSPORTS {
            let out = Compiler::new(Frontend::Corba, style, transport)
                .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
                .unwrap_or_else(|e| panic!("{style:?}/{transport:?}: {e}"));
            for phase in PHASES {
                assert!(
                    out.report.trace.has_phase(phase),
                    "{style:?}/{transport:?} missing phase {phase}: {:?}",
                    out.report.trace.spans
                );
            }
            assert_eq!(out.report.transport, transport.name());
            combos += 1;
        }
    }
    assert_eq!(combos, 15);
}

#[test]
fn other_frontends_report_the_same_phases() {
    // The ONC and MIG front ends produce the same span names, so tools
    // consuming --timings need no per-frontend cases.
    let onc = Compiler::new(Frontend::Onc, Style::RpcgenC, Transport::OncTcp)
        .compile_source("mail.x", MAIL_X, "Mail", Side::Client)
        .expect("onc compiles");
    let mig = Compiler::new(Frontend::Mig, Style::CorbaC, Transport::Mach3)
        .compile_source(
            "t.defs",
            "subsystem t 100;\nroutine ping(server : mach_port_t; n : int);\n",
            "t",
            Side::Client,
        )
        .expect("mig compiles");
    for out in [&onc, &mig] {
        for phase in PHASES {
            assert!(out.report.trace.has_phase(phase), "missing {phase}");
        }
    }
    assert_eq!(onc.report.frontend, "onc");
    assert_eq!(mig.report.frontend, "mig");
}

#[test]
fn decision_counters_reflect_the_optimizer() {
    let idl = r"
        struct Point { long x; long y; };
        struct Rect { Point min; Point max; };
        typedef sequence<Rect> RectSeq;
        typedef sequence<long> Ints;
        interface I { void put(in RectSeq rs, in Ints v); };
    ";
    // Native-order CDR so the long sequence qualifies for a memcpy run.
    let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
        .compile_source("t.idl", idl, "I", Side::Client)
        .expect("compiles");
    let t = &out.report.trace;
    assert!(t.counter("plan.packed_chunks").unwrap() >= 1, "rects chunk");
    assert!(t.counter("plan.memcpy_runs").unwrap() >= 1, "ints memcpy");
    assert!(t.counter("mint.nodes").unwrap() > 0);
    assert!(t.counter("cast.decls").unwrap() > 0);
    assert!(t.counter("plan.hoisted_checks").unwrap() >= 1);

    // Disabling the optimizations changes the recorded decisions.
    let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
        .with_opts(flick::OptFlags::none())
        .compile_source("t.idl", idl, "I", Side::Client)
        .expect("compiles unoptimized");
    let t = &out.report.trace;
    assert_eq!(t.counter("plan.packed_chunks").unwrap(), 0);
    assert_eq!(t.counter("plan.memcpy_runs").unwrap(), 0);
    assert!(
        t.counter("plan.outline_fns").unwrap() >= 1,
        "aggregates outline"
    );
}

#[test]
fn plan_phase_breaks_down_into_pass_subspans() {
    // `--timings` shows one dotted sub-span per scheduled MIR pass,
    // and `--stats` one decision counter per pass.
    let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
        .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
        .expect("compiles");
    let t = &out.report.trace;
    assert!(t.has_phase("backend.plan.lower"), "{:?}", t.spans);
    for pass in flick::PASS_NAMES {
        assert!(
            t.has_phase(&format!("backend.plan.{pass}")),
            "missing sub-span for {pass}: {:?}",
            t.spans
        );
        assert!(
            t.counter(&format!("pass.{pass}.decisions")).is_some(),
            "missing decision counter for {pass}: {:?}",
            t.counters
        );
    }

    // A disabled pass drops out of the breakdown.
    let mut compiler = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp);
    compiler.backend.disabled_passes = vec!["form-chunks".into()];
    let out = compiler
        .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
        .expect("compiles without form-chunks");
    let t = &out.report.trace;
    assert!(!t.has_phase("backend.plan.form-chunks"), "{:?}", t.spans);
    assert!(t.has_phase("backend.plan.demux-switch"));
}

#[test]
fn backend_failures_name_the_failing_step() {
    // Asking for a MIR dump after a pass that was disabled fails
    // inside planning, and the error names the backend sub-phase.
    let mut compiler = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp);
    compiler.backend.disabled_passes = vec!["form-chunks".into()];
    compiler.backend.dump_mir = Some(flick::MirDump {
        after: Some("form-chunks".into()),
    });
    let err = compiler
        .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.phase.name(), "backend.plan", "{}", err.report);
    assert!(err.report.contains("did not run"), "{}", err.report);
}

#[test]
fn report_serializes_to_json_and_text() {
    let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
        .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
        .expect("compiles");
    let json = out.report.to_json();
    assert!(json.starts_with("{\"frontend\":\"corba\""), "{json}");
    assert!(json.contains("\"transport\":\"iiop-tcp\""));
    assert!(json.contains("\"spans\":[{\"name\":\"parse\""));
    assert!(json.contains("\"plan.stubs\":1"));
    let text = out.report.to_text();
    assert!(text.contains("pipeline: corba -> corba-c -> iiop-tcp"));
    assert!(text.contains("backend.emit-rust"));
}

#[test]
fn failures_carry_phase_and_counts() {
    // Type errors surface while the front end parses.
    let err = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::OncTcp)
        .compile_source(
            "bad.idl",
            "interface X { void f(in strang s); };",
            "X",
            Side::Client,
        )
        .unwrap_err();
    assert_eq!(err.phase, Phase::Parse);
    assert!(err.errors >= 1);
    assert!(err.report.contains("unknown type"));

    // A missing interface is a presentation-generation failure.
    let err = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::OncTcp)
        .compile_source("m.idl", MAIL_IDL, "Nope", Side::Client)
        .unwrap_err();
    assert_eq!(err.phase, Phase::Presgen, "{}", err.report);
    assert!(err.errors >= 1);
}
