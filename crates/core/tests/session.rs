//! Incremental-session semantics: warm recompiles are byte-identical
//! and hit on every stub; an edit replans only the stubs it touched;
//! reconfiguring the optimizer invalidates everything it must.

use flick::{CompileSession, Compiler, Frontend, OptFlags, Style, Transport};
use flick_pres::Side;

const CALC_V1: &str = "\
interface Calc {
    long add(in long a, in long b);
    long mul(in long a, in long b);
};";

/// Same file with one operation edited (`mul` gains a parameter);
/// `add` is untouched.
const CALC_V2: &str = "\
interface Calc {
    long add(in long a, in long b);
    long mul(in long a, in long b, in long c);
};";

fn compiler() -> Compiler {
    Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
}

fn counters(out: &flick::CompileOutput) -> (u64, u64) {
    let t = &out.report.trace;
    (
        t.counter("cache.stub.hit").unwrap(),
        t.counter("cache.stub.miss").unwrap(),
    )
}

#[test]
fn warm_recompile_is_byte_identical_and_all_hits() {
    let mut s = CompileSession::new(compiler());
    let cold = s
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&cold), (0, 2), "cold compile misses both stubs");

    let warm = s
        .recompile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&warm), (2, 0), "warm recompile hits both stubs");
    assert_eq!(cold.c_source, warm.c_source);
    assert_eq!(cold.rust_source, warm.rust_source);
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 2, 0));
}

#[test]
fn warm_recompile_through_the_extension_passes_is_byte_identical() {
    // The bench interface drives all three extension passes at once:
    // `_pad` is a dead slot, the `send_*` arms share a hoisted count,
    // and `echo_stat` aliases its reply to the request.  A warm
    // recompile must reuse every cached plan and reproduce the same
    // bytes — the passes may not smuggle in any run-to-run state.
    let src = include_str!("../../../testdata/bench.idl");
    let mut s = CompileSession::new(Compiler::new(
        Frontend::Corba,
        Style::RpcgenC,
        Transport::OncTcp,
    ));
    let cold = s.compile("bench.idl", src, "Bench", Side::Server).unwrap();
    assert!(
        cold.rust_source
            .contains("reply-alias: reuse request bytes"),
        "reply-alias did not fire on the bench interface"
    );
    assert!(
        cold.rust_source
            .contains("merge-prefix: shared count for every arm below"),
        "merge-prefix did not fire on the bench interface"
    );
    assert!(
        !cold.rust_source.contains("_pad"),
        "dead-slot left `_pad` in the generated stubs"
    );

    let warm = s
        .recompile("bench.idl", src, "Bench", Side::Server)
        .unwrap();
    let t = &warm.report.trace;
    assert_eq!(t.counter("cache.stub.miss"), Some(0), "all plans reused");
    assert!(t.counter("cache.stub.hit").unwrap() >= 4);
    assert_eq!(cold.c_source, warm.c_source);
    assert_eq!(cold.rust_source, warm.rust_source);
}

#[test]
fn editing_one_operation_replans_only_that_stub() {
    let mut s = CompileSession::new(compiler());
    let v1 = s
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&v1), (0, 2));

    let v2 = s
        .recompile("calc.idl", CALC_V2, "Calc", Side::Client)
        .unwrap();
    // `add` is structurally unchanged → hit; the edited `mul` misses.
    assert_eq!(counters(&v2), (1, 1), "only the edited stub replans");
    let report = v2.report.cache.as_ref().expect("cache report");
    let miss: Vec<&str> = report
        .entries
        .iter()
        .filter(|e| !e.hit)
        .map(|e| e.stub.as_str())
        .collect();
    assert_eq!(miss, ["Calc_mul"]);
    assert!(v2.rust_source.contains("encode_mul_request"));

    // A throwaway compiler on v2 must agree byte for byte with the
    // half-cached session output.
    let fresh = compiler()
        .compile_source("calc.idl", CALC_V2, "Calc", Side::Client)
        .unwrap();
    assert_eq!(fresh.c_source, v2.c_source);
    assert_eq!(fresh.rust_source, v2.rust_source);
}

#[test]
fn reconfiguring_the_optimizer_invalidates_every_stub() {
    let mut s = CompileSession::new(compiler());
    s.compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();

    // Changing OptFlags rebuilds the pass pipeline → new fingerprint.
    *s.compiler_mut() = compiler().with_opts(OptFlags::none());
    let out = s
        .recompile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&out), (0, 2), "new pipeline misses everything");
    for e in &out.report.cache.as_ref().unwrap().entries {
        assert!(
            e.detail.starts_with("pass pipeline changed (fingerprint "),
            "{}",
            e.detail
        );
    }

    // So does dropping one pass explicitly…
    *s.compiler_mut() = compiler();
    s.compiler_mut().backend.disabled_passes = vec!["coalesce-memcpy".into()];
    let out = s
        .recompile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&out), (0, 2));

    // …while switching the transport changes the wire encoding.
    *s.compiler_mut() = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::OncTcp);
    let out = s
        .recompile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&out), (0, 2));
    for e in &out.report.cache.as_ref().unwrap().entries {
        assert_eq!(e.detail, "encoding changed");
    }

    // Restoring the original configuration hits again: entries are
    // content-addressed, never destructively invalidated.
    *s.compiler_mut() = compiler();
    let out = s
        .recompile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&out), (2, 0), "original keys still resident");
}

#[test]
fn disk_cache_warms_a_second_session() {
    let dir = std::env::temp_dir().join(format!("flick-session-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut first = CompileSession::with_cache_dir(compiler(), &dir).unwrap();
    let cold = first
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    drop(first);

    // A new session over the same directory models a new process.
    let mut second = CompileSession::with_cache_dir(compiler(), &dir).unwrap();
    let warm = second
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&warm), (2, 0), "disk tier survives the session");
    assert_eq!(cold.c_source, warm.c_source);
    assert_eq!(cold.rust_source, warm.rust_source);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn budget_overruns_surface_as_warnings_and_counters() {
    // An impossible budget of 0 decisions: every pass that makes a
    // decision on this input overruns and must say so.
    let mut c = compiler();
    c.backend.pass_budget = Some(0);
    let out = c
        .compile_source("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert!(
        out.report
            .trace
            .counter("pass.classify-storage.budget_overrun")
            == Some(1),
        "classify-storage decides per stub, so budget 0 overruns"
    );
    assert!(
        out.report
            .warnings
            .iter()
            .any(|w| w.contains("classify-storage") && w.contains("budget")),
        "warnings: {:?}",
        out.report.warnings
    );

    // A generous budget overruns nothing.
    let mut c = compiler();
    c.backend.pass_budget = Some(1_000_000);
    let out = c
        .compile_source("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert!(out.report.warnings.is_empty());
}

#[test]
fn corrupted_disk_cache_demotes_to_misses_and_is_rewritten() {
    let dir = std::env::temp_dir().join(format!("flick-session-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut first = CompileSession::with_cache_dir(compiler(), &dir).unwrap();
    let cold = first
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    drop(first);

    // Vandalize every persisted entry: one becomes garbage, the rest
    // are truncated mid-payload.  (The index survives — it only maps
    // stub names to keys for miss explanations.)
    let mut vandalized = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.file_name().is_some_and(|n| n == "index.tsv") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        if vandalized == 0 {
            std::fs::write(&path, "total garbage, not an entry").unwrap();
        } else {
            std::fs::write(&path, &text[..text.len() / 3]).unwrap();
        }
        vandalized += 1;
    }
    assert!(vandalized >= 2, "both stub entries must be on disk");

    // A new process over the vandalized directory: every corrupt entry
    // demotes to a miss, and the output is byte-identical to cold.
    let mut second = CompileSession::with_cache_dir(compiler(), &dir).unwrap();
    let recovered = second
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(
        counters(&recovered),
        (0, 2),
        "corrupt entries must not be trusted"
    );
    assert_eq!(cold.c_source, recovered.c_source);
    assert_eq!(cold.rust_source, recovered.rust_source);
    drop(second);

    // The replan rewrote the entries: a third process hits everything.
    let mut third = CompileSession::with_cache_dir(compiler(), &dir).unwrap();
    let warm = third
        .compile("calc.idl", CALC_V1, "Calc", Side::Client)
        .unwrap();
    assert_eq!(counters(&warm), (2, 0), "rewritten entries hit again");
    assert_eq!(cold.rust_source, warm.rust_source);

    std::fs::remove_dir_all(&dir).unwrap();
}
