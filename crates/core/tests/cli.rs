//! End-to-end tests for the `flickc` binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const MAIL_IDL: &str = "interface Mail { void send(in string msg); };";

fn flickc(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flickc"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("flickc runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flickc-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_input(dir: &Path) -> PathBuf {
    let p = dir.join("mail.idl");
    std::fs::write(&p, MAIL_IDL).expect("write input");
    p
}

#[test]
fn help_exits_zero_with_usage() {
    let dir = scratch("help");
    let out = flickc(&["--help"], &dir);
    assert!(out.status.success(), "--help must exit 0: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: flickc"), "{text}");
    assert!(
        text.contains("--timings"),
        "usage documents the new flags: {text}"
    );
    assert!(text.contains("--stats"), "{text}");
}

#[test]
fn bad_flag_fails_with_message() {
    let dir = scratch("badflag");
    let out = flickc(&["--frobnicate"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option `--frobnicate`"), "{err}");
}

#[test]
fn missing_input_fails() {
    let dir = scratch("noinput");
    let out = flickc(&[], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no input file"));
}

#[test]
fn compile_errors_exit_nonzero_with_counts() {
    let dir = scratch("compileerr");
    std::fs::write(dir.join("bad.idl"), "interface X { void f(in strang s); };")
        .expect("write bad input");
    let out = flickc(&["bad.idl"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error(s)"), "structured failure line: {err}");
    assert!(err.contains("phase `parse`"), "{err}");
}

#[test]
fn stdout_emission_and_emit_selection() {
    let dir = scratch("stdout");
    write_input(&dir);
    let out = flickc(&["--emit", "rust", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pub fn encode_send_request"), "{text}");
    assert!(
        !text.contains("void Mail_send"),
        "C suppressed with --emit rust"
    );
}

#[test]
fn out_dir_writes_c_rust_and_header() {
    let dir = scratch("outdir");
    write_input(&dir);
    let out = flickc(&["-o", "gen", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    for f in ["gen/Mail.c", "gen/Mail.rs", "gen/flick_runtime.h"] {
        assert!(dir.join(f).is_file(), "missing {f}");
    }
    let c = std::fs::read_to_string(dir.join("gen/Mail.c")).unwrap();
    assert!(c.contains("Mail_send"));
}

#[test]
fn timings_report_phases_on_stderr() {
    let dir = scratch("timings");
    write_input(&dir);
    let out = flickc(&["--timings", "--emit", "rust", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    for phase in [
        "parse",
        "presgen",
        "backend.plan",
        "backend.emit-rust",
        "total",
    ] {
        assert!(err.contains(phase), "--timings missing {phase}: {err}");
    }
    // Generated code stays clean on stdout.
    assert!(String::from_utf8_lossy(&out.stdout).contains("encode_send_request"));
}

#[test]
fn stats_json_is_machine_readable() {
    let dir = scratch("statsjson");
    write_input(&dir);
    let out = flickc(&["--stats=json", "--emit", "rust", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    let json = err
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("one JSON line");
    assert!(json.ends_with('}'), "{json}");
    for needle in [
        "\"frontend\":\"corba\"",
        "\"transport\":\"iiop-tcp\"",
        "\"spans\":[{\"name\":\"parse\"",
        "\"counters\":{",
        "\"plan.stubs\":1",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}

#[test]
fn passes_flag_lists_pipeline_in_order() {
    let dir = scratch("passes");
    let out = flickc(&["--passes"], &dir);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        text,
        "dead-slot\nclassify-storage\nreuse-slots\nhoist-checks\nform-chunks\n\
         coalesce-memcpy\nfuse-transcode\ninline-marshal\nreply-alias\ndemux-switch\n\
         merge-prefix\n"
    );
}

#[test]
fn disable_pass_matches_opt_flag() {
    let dir = scratch("disablepass");
    write_input(&dir);
    let by_flag = flickc(&["--no-hoist", "--emit", "c", "mail.idl"], &dir);
    let by_pass = flickc(
        &["--disable-pass=hoist-checks", "--emit", "c", "mail.idl"],
        &dir,
    );
    let default = flickc(&["--emit", "c", "mail.idl"], &dir);
    assert!(by_flag.status.success(), "{by_flag:?}");
    assert!(by_pass.status.success(), "{by_pass:?}");
    assert!(default.status.success(), "{default:?}");
    assert_eq!(
        by_pass.stdout, by_flag.stdout,
        "--disable-pass=hoist-checks must emit the same C as --no-hoist"
    );
    assert_ne!(
        by_pass.stdout, default.stdout,
        "disabling hoist-checks must change the emitted C"
    );
}

#[test]
fn unknown_pass_name_fails_with_diagnostic() {
    let dir = scratch("badpass");
    write_input(&dir);
    let out = flickc(&["--disable-pass=hoist-cheques", "mail.idl"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown pass `hoist-cheques`"), "{err}");
    assert!(err.contains("known passes:"), "{err}");
}

#[test]
fn dump_mir_writes_to_stderr() {
    let dir = scratch("dumpmir");
    write_input(&dir);
    let out = flickc(&["--dump-mir", "--emit", "rust", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stub"), "MIR dump names the stubs: {err}");
    // Generated code stays clean on stdout.
    assert!(String::from_utf8_lossy(&out.stdout).contains("encode_send_request"));

    let bad = flickc(&["--dump-mir=not-a-pass", "mail.idl"], &dir);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown pass `not-a-pass`"));
}

#[test]
fn cache_dir_hits_on_the_second_run_and_explains_itself() {
    let dir = scratch("cachedir");
    write_input(&dir);
    let _ = std::fs::remove_dir_all(dir.join("plans"));
    let args = [
        "--cache-dir",
        "plans",
        "--explain-cache",
        "--stats=json",
        "mail.idl",
    ];

    let cold = flickc(&args, &dir);
    assert!(cold.status.success(), "{cold:?}");
    let err = String::from_utf8_lossy(&cold.stderr);
    assert!(err.contains("Mail_send"), "{err}");
    assert!(err.contains("miss (first compile)"), "{err}");
    assert!(err.contains("\"cache.stub.miss\":1"), "{err}");
    assert!(dir.join("plans/index.tsv").is_file(), "index persisted");

    // A second process over the same directory hits from disk and
    // emits byte-identical code.
    let warm = flickc(&args, &dir);
    assert!(warm.status.success(), "{warm:?}");
    let err = String::from_utf8_lossy(&warm.stderr);
    assert!(err.contains("hit  (disk)"), "{err}");
    assert!(err.contains("\"cache.stub.hit\":1"), "{err}");
    assert!(err.contains("\"cache.stub.miss\":0"), "{err}");
    assert_eq!(cold.stdout, warm.stdout, "warm output must be identical");

    // Adding one operation replans only the new stub: `send` is
    // structurally unchanged and still hits from disk.
    std::fs::write(
        dir.join("mail.idl"),
        "interface Mail { void send(in string msg); void purge(in long days); };",
    )
    .expect("edit input");
    let edited = flickc(&args, &dir);
    assert!(edited.status.success(), "{edited:?}");
    let err = String::from_utf8_lossy(&edited.stderr);
    assert!(err.contains("\"cache.stub.hit\":1"), "{err}");
    assert!(err.contains("\"cache.stub.miss\":1"), "{err}");
    assert!(err.contains("Mail_purge"), "{err}");
}

#[test]
fn stats_json_counters_are_sorted() {
    let dir = scratch("sortedjson");
    write_input(&dir);
    let out = flickc(&["--stats=json", "--emit", "rust", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    let json = err.lines().find(|l| l.starts_with('{')).expect("JSON line");
    let counters = &json[json.find("\"counters\":{").expect("counters object")..];
    let mut keys: Vec<&str> = counters
        .split('"')
        .skip(3)
        .step_by(2)
        .take_while(|k| !k.is_empty())
        .collect();
    assert!(keys.len() > 3, "{counters}");
    let printed = keys.clone();
    keys.sort_unstable();
    assert_eq!(printed, keys, "counter keys must print sorted");
}

#[test]
fn pass_budget_overrun_warns_and_counts() {
    let dir = scratch("budget");
    write_input(&dir);
    let out = flickc(
        &[
            "--pass-budget",
            "0",
            "--stats=json",
            "--emit",
            "rust",
            "mail.idl",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "a budget overrun is not fatal: {out:?}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("warning: pass classify-storage overran"),
        "{err}"
    );
    assert!(err.contains(".budget_overrun\":1"), "{err}");

    let bad = flickc(&["--pass-budget", "lots", "mail.idl"], &dir);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--pass-budget needs a number"));
}

#[test]
fn pass_budget_ms_overrun_warns_and_counts() {
    let dir = scratch("budgetms");
    write_input(&dir);
    // A 0ms wall-time budget: every scheduled pass is already over
    // budget when it starts, stops early, and reports the overrun.
    let out = flickc(
        &[
            "--pass-budget-ms",
            "0",
            "--stats=json",
            "--emit",
            "rust",
            "mail.idl",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "a wall-time overrun is not fatal: {out:?}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("overran the wall-time budget"),
        "warnings name the overrun: {err}"
    );
    assert!(err.contains(".budget_overrun_ms\":"), "{err}");

    // A generous budget changes nothing and warns about nothing.
    let calm = flickc(
        &["--pass-budget-ms", "60000", "--emit", "rust", "mail.idl"],
        &dir,
    );
    assert!(calm.status.success(), "{calm:?}");
    assert!(!String::from_utf8_lossy(&calm.stderr).contains("wall-time"));

    let bad = flickc(&["--pass-budget-ms", "soon", "mail.idl"], &dir);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--pass-budget-ms needs a number"));
}

#[test]
fn explain_cache_reports_the_fingerprint_change() {
    let dir = scratch("fingerprint");
    write_input(&dir);
    let _ = std::fs::remove_dir_all(dir.join("plans"));
    let cold = flickc(&["--cache-dir", "plans", "mail.idl"], &dir);
    assert!(cold.status.success(), "{cold:?}");

    // Dropping a pass reshapes the pipeline; --explain-cache names the
    // old and new fingerprints so the miss is attributable.
    let warm = flickc(
        &[
            "--cache-dir",
            "plans",
            "--explain-cache",
            "--disable-pass=dead-slot",
            "mail.idl",
        ],
        &dir,
    );
    assert!(warm.status.success(), "{warm:?}");
    let err = String::from_utf8_lossy(&warm.stderr);
    assert!(err.contains("pass pipeline changed (fingerprint "), "{err}");
    assert!(err.contains(" -> "), "old -> new fingerprints: {err}");
}

#[test]
fn transcode_mode_emits_a_gateway_module() {
    let dir = scratch("transcode");
    write_input(&dir);
    let out = flickc(&["--transcode=xdr:cdr-le", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("`xdr` → `cdr-le`"), "{text}");
    assert!(text.contains("pub const FUSED: bool = true;"), "{text}");
    assert!(text.contains("BRIDGE_OPS"), "{text}");
    assert!(!text.contains("void Mail_send"), "stubs suppressed: {text}");

    // Ablating the fusion pass flips the generated module to the
    // slot-by-slot rewrites.
    let naive = flickc(
        &[
            "--transcode=xdr:cdr-le",
            "--disable-pass=fuse-transcode",
            "mail.idl",
        ],
        &dir,
    );
    assert!(naive.status.success(), "{naive:?}");
    let text = String::from_utf8_lossy(&naive.stdout);
    assert!(text.contains("pub const FUSED: bool = false;"), "{text}");

    // -o writes <iface>_transcode.rs instead of stubs.
    let written = flickc(&["--transcode=xdr:cdr-le", "-o", "gen", "mail.idl"], &dir);
    assert!(written.status.success(), "{written:?}");
    assert!(dir.join("gen/Mail_transcode.rs").is_file());
    assert!(!dir.join("gen/Mail.rs").exists(), "stub files suppressed");
}

#[test]
fn transcode_rejects_unknown_and_malformed_pairs() {
    let dir = scratch("transcodebad");
    write_input(&dir);
    let out = flickc(&["--transcode=xdr:ebcdic", "mail.idl"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown encoding `ebcdic`"), "{err}");
    assert!(err.contains("known encodings:"), "{err}");

    let out = flickc(&["--transcode=xdr", "mail.idl"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs SRC:DST"));

    // Typed encodings carry per-item descriptors; there is no fused
    // byte rewrite for them, and the planner must say so.
    let out = flickc(&["--transcode=xdr:mach3", "mail.idl"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("flickc: transcode:"));
}

#[test]
fn stats_text_lists_decision_counters() {
    let dir = scratch("statstext");
    write_input(&dir);
    let out = flickc(&["--stats", "--emit", "rust", "mail.idl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    for counter in ["mint.nodes", "cast.decls", "plan.hoisted_checks"] {
        assert!(err.contains(counter), "--stats missing {counter}: {err}");
    }
}
