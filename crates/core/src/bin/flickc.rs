//! `flickc` — the Flick IDL compiler command line.
//!
//! ```text
//! flickc --frontend corba --pres corba-c --transport iiop-tcp \
//!        --interface Mail --side client [--emit c|rust|both] \
//!        [--no-opt | --no-inline --no-chunk --no-memcpy --no-hoist] \
//!        [-o OUTDIR] mail.idl
//! ```
//!
//! Components are selected independently — the kit's mix-and-match —
//! and each optimization can be disabled for inspection.  With no
//! `-o`, generated code goes to stdout.

use std::path::PathBuf;
use std::process::ExitCode;

use flick::{CompileSession, Compiler, Frontend, MirDump, OptFlags, Style, Transport, PASS_NAMES};
use flick_backend::Encoding;
use flick_pres::Side;

struct Args {
    frontend: Frontend,
    style: Style,
    transport: Transport,
    interface: Option<String>,
    side: Side,
    emit_c: bool,
    emit_rust: bool,
    opts: OptFlags,
    disabled_passes: Vec<String>,
    dump_mir: Option<MirDump>,
    pass_budget: Option<u64>,
    pass_budget_ms: Option<u64>,
    cache_dir: Option<PathBuf>,
    explain_cache: bool,
    transcode: Option<(Encoding, Encoding)>,
    out_dir: Option<PathBuf>,
    timings: bool,
    stats: bool,
    stats_json: bool,
    input: PathBuf,
}

enum ParsedArgs {
    Run(Box<Args>),
    Help,
    Passes,
}

const USAGE: &str = "\
usage: flickc [options] <input.idl|.x|.defs>
  --frontend corba|onc|mig     front end (default: by file extension)
  --pres corba-c|rpcgen-c|fluke-c   presentation style (default corba-c)
  --transport iiop-tcp|onc-tcp|onc-udp|mach3|fluke  back end (default iiop-tcp)
  --interface NAME             interface/program/subsystem to compile
                               (default: sole interface in the file)
  --side client|server         presentation side (default client)
  --emit c|rust|both           what to print/write (default both)
  --no-opt                     disable every optimization
  --no-hoist --no-chunk --no-memcpy --no-inline   disable one each
  --passes                     list the MIR optimization passes and exit
  --disable-pass=NAME          drop one pass from the pipeline (repeatable)
  --transcode=SRC:DST          emit a fused SRC-to-DST transcoding gateway
                               module instead of stubs (encodings: xdr,
                               cdr-be, cdr-le, cdr-native, mach3, fluke);
                               --disable-pass=fuse-transcode falls back to
                               the slot-by-slot rewrites
  --dump-mir[=PASS]            dump the MIR to stderr (final, or after
                               PASS; `lower` dumps the unoptimized MIR)
  --pass-budget N              cap each optimization pass at N decisions;
                               overruns are reported as warnings
  --pass-budget-ms N           cap each optimization pass at N ms of wall
                               time; passes stop early and the overrun is
                               reported (makes output timing-dependent)
  --cache-dir DIR              keep the per-stub plan cache in DIR so warm
                               recompiles skip planning for unchanged stubs
  --explain-cache              report each stub's cache hit/miss (and why)
                               to stderr
  --timings                    report per-phase compile times to stderr
  --stats[=json]               report optimizer decision counts
                               (with =json, one JSON object to stderr)
  -o DIR                       write <iface>.c / <iface>.rs into DIR
  -h, --help                   this text";

fn parse_args() -> Result<ParsedArgs, String> {
    let mut frontend = None;
    let mut style = Style::CorbaC;
    let mut transport = Transport::IiopTcp;
    let mut interface = None;
    let mut side = Side::Client;
    let mut emit_c = true;
    let mut emit_rust = true;
    let mut opts = OptFlags::all();
    let mut disabled_passes = Vec::new();
    let mut dump_mir = None;
    let mut pass_budget = None;
    let mut pass_budget_ms = None;
    let mut cache_dir = None;
    let mut explain_cache = false;
    let mut transcode = None;
    let mut out_dir = None;
    let mut timings = false;
    let mut stats = false;
    let mut stats_json = false;
    let mut input = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| it.next().ok_or_else(|| format!("{what} requires a value"));
        match a.as_str() {
            "-h" | "--help" => return Ok(ParsedArgs::Help),
            "--frontend" => {
                frontend = Some(match val("--frontend")?.as_str() {
                    "corba" => Frontend::Corba,
                    "onc" => Frontend::Onc,
                    "mig" => Frontend::Mig,
                    other => return Err(format!("unknown front end `{other}`")),
                });
            }
            "--pres" => {
                style = match val("--pres")?.as_str() {
                    "corba-c" => Style::CorbaC,
                    "rpcgen-c" => Style::RpcgenC,
                    "fluke-c" => Style::FlukeC,
                    other => return Err(format!("unknown presentation `{other}`")),
                };
            }
            "--transport" => {
                transport = match val("--transport")?.as_str() {
                    "iiop-tcp" => Transport::IiopTcp,
                    "onc-tcp" => Transport::OncTcp,
                    "onc-udp" => Transport::OncUdp,
                    "mach3" => Transport::Mach3,
                    "fluke" => Transport::Fluke,
                    other => return Err(format!("unknown transport `{other}`")),
                };
            }
            "--interface" => interface = Some(val("--interface")?),
            "--side" => {
                side = match val("--side")?.as_str() {
                    "client" => Side::Client,
                    "server" => Side::Server,
                    other => return Err(format!("unknown side `{other}`")),
                };
            }
            "--emit" => match val("--emit")?.as_str() {
                "c" => {
                    emit_c = true;
                    emit_rust = false;
                }
                "rust" => {
                    emit_c = false;
                    emit_rust = true;
                }
                "both" => {
                    emit_c = true;
                    emit_rust = true;
                }
                other => return Err(format!("unknown emit target `{other}`")),
            },
            "--timings" => timings = true,
            "--stats" => stats = true,
            "--stats=json" => {
                stats = true;
                stats_json = true;
            }
            "--no-opt" => opts = OptFlags::none(),
            "--no-hoist" => opts.hoist_checks = false,
            "--no-chunk" => opts.chunking = false,
            "--no-memcpy" => opts.memcpy = false,
            "--no-inline" => opts.inline_marshal = false,
            "--passes" => return Ok(ParsedArgs::Passes),
            "--dump-mir" => dump_mir = Some(MirDump { after: None }),
            "--pass-budget" => {
                let v = val("--pass-budget")?;
                pass_budget = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--pass-budget needs a number, got `{v}`"))?,
                );
            }
            "--pass-budget-ms" => {
                let v = val("--pass-budget-ms")?;
                pass_budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--pass-budget-ms needs a number, got `{v}`"))?,
                );
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(val("--cache-dir")?)),
            "--transcode" => transcode = Some(parse_transcode(&val("--transcode")?)?),
            other if other.starts_with("--transcode=") => {
                transcode = Some(parse_transcode(&other["--transcode=".len()..])?);
            }
            "--explain-cache" => explain_cache = true,
            other if other.starts_with("--disable-pass=") => {
                let name = &other["--disable-pass=".len()..];
                check_pass_name(name)?;
                disabled_passes.push(name.to_string());
            }
            "--disable-pass" => {
                let name = val("--disable-pass")?;
                check_pass_name(&name)?;
                disabled_passes.push(name);
            }
            other if other.starts_with("--dump-mir=") => {
                let name = &other["--dump-mir=".len()..];
                if name != "lower" {
                    check_pass_name(name)?;
                }
                dump_mir = Some(MirDump {
                    after: Some(name.to_string()),
                });
            }
            "-o" => out_dir = Some(PathBuf::from(val("-o")?)),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n{USAGE}"));
            }
            other => {
                if input.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one input file".to_string());
                }
            }
        }
    }
    let input = input.ok_or_else(|| format!("no input file\n{USAGE}"))?;
    let frontend = frontend.unwrap_or_else(|| match input.extension().and_then(|e| e.to_str()) {
        Some("x") => Frontend::Onc,
        Some("defs") => Frontend::Mig,
        _ => Frontend::Corba,
    });
    Ok(ParsedArgs::Run(Box::new(Args {
        frontend,
        style,
        transport,
        interface,
        side,
        emit_c,
        emit_rust,
        opts,
        disabled_passes,
        dump_mir,
        pass_budget,
        pass_budget_ms,
        cache_dir,
        explain_cache,
        transcode,
        out_dir,
        timings,
        stats,
        stats_json,
        input,
    })))
}

/// Parses a `--transcode` SRC:DST encoding pair.
fn parse_transcode(spec: &str) -> Result<(Encoding, Encoding), String> {
    let Some((src, dst)) = spec.split_once(':') else {
        return Err(format!("--transcode needs SRC:DST, got `{spec}`"));
    };
    let enc = |name: &str| {
        Encoding::by_name(name).ok_or_else(|| {
            format!(
                "unknown encoding `{name}` \
                 (known encodings: xdr, cdr-be, cdr-le, cdr-native, mach3, fluke)"
            )
        })
    };
    Ok((enc(src)?, enc(dst)?))
}

/// Rejects pass names `--disable-pass` cannot address.
fn check_pass_name(name: &str) -> Result<(), String> {
    if PASS_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(format!(
            "unknown pass `{name}` (known passes: {})",
            PASS_NAMES.join(", ")
        ))
    }
}

/// Finds the sole interface name when none was given.
fn infer_interface(frontend: Frontend, text: &str) -> Option<String> {
    let kw = match frontend {
        Frontend::Corba => "interface",
        Frontend::Onc => "program",
        Frontend::Mig => "subsystem",
    };
    let mut found = None;
    let mut toks = text.split_whitespace().peekable();
    while let Some(t) = toks.next() {
        if t == kw {
            let name = toks.peek()?.trim_end_matches([';', '{']);
            if name.is_empty() {
                continue;
            }
            if found.replace(name.to_string()).is_some() {
                return None; // ambiguous
            }
        }
    }
    found
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(ParsedArgs::Run(a)) => a,
        Ok(ParsedArgs::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(ParsedArgs::Passes) => {
            for name in PASS_NAMES {
                println!("{name}");
            }
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flickc: cannot read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(iface) = args
        .interface
        .clone()
        .or_else(|| infer_interface(args.frontend, &text))
    else {
        eprintln!("flickc: could not infer a unique interface; pass --interface NAME");
        return ExitCode::FAILURE;
    };

    let mut compiler =
        Compiler::new(args.frontend, args.style, args.transport).with_opts(args.opts);
    compiler.backend.disabled_passes = args.disabled_passes.clone();
    compiler.backend.dump_mir = args.dump_mir.clone();
    compiler.backend.pass_budget = args.pass_budget;
    compiler.backend.pass_budget_ms = args.pass_budget_ms;
    let mut session = match &args.cache_dir {
        Some(dir) => match CompileSession::with_cache_dir(compiler, dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("flickc: cannot open cache dir: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => CompileSession::new(compiler),
    };
    let file_name = args.input.display().to_string();
    let out = match session.compile(&file_name, &text, &iface, args.side) {
        Ok(o) => o,
        Err(e) => {
            eprint!("{e}");
            eprintln!(
                "flickc: {} error(s), {} warning(s) in phase `{}`",
                e.errors,
                e.warnings,
                e.phase.name()
            );
            return ExitCode::FAILURE;
        }
    };

    if let Some(dump) = &out.mir_dump {
        eprint!("{dump}");
    }
    for w in &out.report.warnings {
        eprintln!("flickc: warning: {w}");
    }
    if args.explain_cache {
        match &out.report.cache {
            Some(report) => {
                eprintln!(
                    "-- plan cache: {} hit(s), {} miss(es), {} eviction(s) --",
                    report.hits, report.misses, report.evictions
                );
                for e in &report.entries {
                    let what = if e.hit { "hit" } else { "miss" };
                    eprintln!("{:<24} {:<4} ({})", e.stub, what, e.detail);
                }
            }
            None => eprintln!("-- plan cache: not used (MIR dump forces a full plan) --"),
        }
    }

    if args.timings {
        eprintln!(
            "-- timings: {} -> {} -> {} --",
            out.report.frontend, out.report.style, out.report.transport
        );
        for line in out.report.trace.to_text().lines() {
            eprintln!("{line}");
        }
    }
    if args.stats {
        if args.stats_json {
            eprintln!("{}", out.report.to_json());
        } else {
            eprintln!(
                "-- optimizer stats: {} -> {} -> {} --",
                out.report.frontend, out.report.style, out.report.transport
            );
            for (name, v) in &out.report.trace.counters {
                eprintln!("{name:<32} {v}");
            }
        }
    }

    if let Some((src, dst)) = &args.transcode {
        // Gateway mode: emit the SRC→DST transcoding module instead of
        // stubs.  Ablating `fuse-transcode` (or --no-opt) switches the
        // generated dispatchers to the slot-by-slot rewrites.
        let fused =
            args.opts.fuse_transcode && !args.disabled_passes.iter().any(|p| p == "fuse-transcode");
        let source = match flick_backend::compile_transcode(&out.presc, src, dst, fused) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("flickc: transcode: {e}");
                return ExitCode::FAILURE;
            }
        };
        match &args.out_dir {
            None => print!("{source}"),
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("flickc: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                let p = dir.join(format!("{}_transcode.rs", iface.replace("::", "_")));
                if let Err(e) = std::fs::write(&p, &source) {
                    eprintln!("flickc: cannot write {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", p.display());
            }
        }
        return ExitCode::SUCCESS;
    }

    match &args.out_dir {
        None => {
            if args.emit_c {
                print!("{}", out.c_source);
            }
            if args.emit_rust {
                if args.emit_c {
                    println!("\n/* ---- Rust output ---- */\n");
                }
                print!("{}", out.rust_source);
            }
        }
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("flickc: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let base = iface.replace("::", "_");
            if args.emit_c {
                // Ship the support header so the output compiles alone.
                let p = dir.join("flick_runtime.h");
                if let Err(e) = std::fs::write(&p, flick_backend::C_RUNTIME_HEADER) {
                    eprintln!("flickc: cannot write {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", p.display());
            }
            if args.emit_c {
                let p = dir.join(format!("{base}.c"));
                if let Err(e) = std::fs::write(&p, &out.c_source) {
                    eprintln!("flickc: cannot write {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", p.display());
            }
            if args.emit_rust {
                let p = dir.join(format!("{base}.rs"));
                if let Err(e) = std::fs::write(&p, &out.rust_source) {
                    eprintln!("flickc: cannot write {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", p.display());
            }
        }
    }
    ExitCode::SUCCESS
}
