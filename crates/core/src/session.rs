//! Incremental compile sessions.
//!
//! A [`CompileSession`] owns a [`Compiler`] plus a per-stub
//! [`PlanCache`], and keeps both alive across compiles.  The first
//! compile of a source populates the cache; a [`recompile`] after an
//! edit replans only the stubs whose content keys changed — everything
//! else is restored from cache, and the output is byte-identical to a
//! cold compile.  The key covers the stub's structural hash, the wire
//! encoding, and the pass-pipeline fingerprint, so reconfiguring the
//! optimizer between compiles invalidates exactly what it must.
//!
//! With a cache directory ([`CompileSession::with_cache_dir`]), warm
//! state also survives across processes: a second `flickc` run over an
//! unchanged source hits on every stub.
//!
//! [`recompile`]: CompileSession::recompile

use std::path::Path;

use flick_backend::{CacheStats, PlanCache};
use flick_pres::Side;

use crate::{CompileError, CompileOutput, Compiler};

/// A compiler plus the memoized per-stub planning state it accumulates
/// across compiles.
#[derive(Debug)]
pub struct CompileSession {
    compiler: Compiler,
    cache: PlanCache,
}

impl CompileSession {
    /// A session with an in-memory cache (state lives for the
    /// session's lifetime only).
    #[must_use]
    pub fn new(compiler: Compiler) -> CompileSession {
        CompileSession {
            compiler,
            cache: PlanCache::in_memory(),
        }
    }

    /// A session whose cache is mirrored under `dir`, surviving across
    /// processes (`flickc --cache-dir`).
    ///
    /// # Errors
    /// Returns a message if the directory cannot be created.
    pub fn with_cache_dir(compiler: Compiler, dir: &Path) -> Result<CompileSession, String> {
        Ok(CompileSession {
            compiler,
            cache: PlanCache::with_dir(dir)?,
        })
    }

    /// The session's compiler configuration.
    #[must_use]
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Mutable access for reconfiguring between compiles.  Changing
    /// anything output-affecting (encoding, flags, disabled passes,
    /// budget) changes the content keys, so affected stubs simply miss
    /// on the next compile — no explicit invalidation step exists or
    /// is needed.
    pub fn compiler_mut(&mut self) -> &mut Compiler {
        &mut self.compiler
    }

    /// Compiles `text`, reusing every cached stub plan whose content
    /// key still matches.
    ///
    /// # Errors
    /// Same as [`Compiler::compile_source`].
    pub fn compile(
        &mut self,
        file_name: &str,
        text: &str,
        iface: &str,
        side: Side,
    ) -> Result<CompileOutput, CompileError> {
        self.compiler
            .compile_with(file_name, text, iface, side, Some(&mut self.cache))
    }

    /// Recompiles after an edit: only stubs whose content keys changed
    /// are replanned (the [`CompileReport`]'s `cache.stub.*` counters
    /// say how many).  Semantically identical to [`compile`] — the
    /// name marks intent at call sites.
    ///
    /// # Errors
    /// Same as [`Compiler::compile_source`].
    ///
    /// [`CompileReport`]: crate::CompileReport
    /// [`compile`]: CompileSession::compile
    pub fn recompile(
        &mut self,
        file_name: &str,
        text: &str,
        iface: &str,
        side: Side,
    ) -> Result<CompileOutput, CompileError> {
        self.compile(file_name, text, iface, side)
    }

    /// Lifetime hit/miss/eviction counters for this session's cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}
