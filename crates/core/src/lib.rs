//! Flick — a flexible, optimizing IDL compiler (Rust reproduction).
//!
//! This crate is the kit's front door: it wires together the three
//! compilation phases the paper describes — front ends (CORBA IDL,
//! ONC RPC, MIG), presentation generators (CORBA C, `rpcgen` C,
//! Fluke), and optimizing back ends (IIOP/TCP, ONC/XDR over TCP or
//! UDP, Mach 3, Fluke IPC) — and lets a caller *mix and match* them at
//! compile time:
//!
//! ```
//! use flick::{Compiler, Frontend, Transport};
//! use flick_presgen::Style;
//! use flick_pres::Side;
//!
//! let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
//!     .compile_source(
//!         "mail.idl",
//!         "interface Mail { void send(in string msg); };",
//!         "Mail",
//!         Side::Client,
//!     )
//!     .expect("compiles");
//! assert!(out.c_source.contains("void Mail_send(Mail obj, char *msg"));
//! assert!(out.rust_source.contains("pub fn encode_send_request"));
//! ```
//!
//! Any front end can feed any presentation generator, and any
//! presentation can feed any back end — fifteen configurations from
//! three + three + five components, which is the paper's whole point.

pub mod session;

pub use flick_backend::{
    BackEnd, BackendStep, CacheReport, CacheStats, Compiled, ExplainEntry, MirDump, OptFlags,
    PlanCache, Transport, PASS_NAMES,
};
pub use flick_presgen::Style;
pub use session::CompileSession;

use flick_idl::diag::Diagnostics;
use flick_idl::source::SourceFile;
use flick_pres::{PresC, Side};

/// The available front ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frontend {
    /// CORBA 2.0 IDL.
    Corba,
    /// ONC RPC (`rpcgen` `.x`) definitions.
    Onc,
    /// MIG subsystem definitions (conjoined with the MIG presentation
    /// generator; the `Style` argument is ignored for this front end,
    /// exactly as in the paper's architecture).
    Mig,
}

impl Frontend {
    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Frontend::Corba => "corba",
            Frontend::Onc => "onc",
            Frontend::Mig => "mig",
        }
    }
}

/// Everything a compilation produces.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// The intermediate presentation (PRES-C).
    pub presc: PresC,
    /// Generated C stub source.
    pub c_source: String,
    /// Generated Rust stub source (executed by the benchmarks).
    pub rust_source: String,
    /// Pass-level timings and optimizer decision counts.
    pub report: CompileReport,
    /// The MIR rendering requested via `BackEnd::dump_mir`
    /// (`flickc --dump-mir`), if any.
    pub mir_dump: Option<String>,
}

/// Which pipeline phase a compilation failed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Front-end parsing (IDL → AOI, or MIG → PRES-C directly).
    Parse,
    /// Presentation generation (AOI → PRES-C).
    Presgen,
    /// Back end, tagged with the failing sub-phase (`backend.plan`,
    /// `backend.emit-c`, `backend.print-c`, `backend.emit-rust`).
    Backend(BackendStep),
}

impl Phase {
    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Presgen => "presgen",
            Phase::Backend(step) => step.name(),
        }
    }
}

/// A compilation failure, with rendered diagnostics and structured
/// counts.
#[derive(Clone, Debug)]
pub struct CompileError {
    /// Human-readable report (already includes source excerpts).
    pub report: String,
    /// The phase that failed.
    pub phase: Phase,
    /// Number of error diagnostics.
    pub errors: usize,
    /// Number of warning diagnostics.
    pub warnings: usize,
}

impl CompileError {
    fn from_diags(phase: Phase, diags: &Diagnostics, file: &SourceFile) -> Self {
        let errors = diags.error_count();
        CompileError {
            report: diags.render_all(file),
            phase,
            errors: errors.max(1),
            warnings: diags.len() - errors,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.report)
    }
}

impl std::error::Error for CompileError {}

/// Pass-level timings and optimizer decision counts for one
/// successful compile, for `flickc --timings` / `--stats`.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// Front-end name.
    pub frontend: &'static str,
    /// Presentation style name (as recorded in the PRES-C).
    pub style: String,
    /// Transport name.
    pub transport: &'static str,
    /// Spans (`parse`, `presgen`, `backend.plan`, `backend.emit-c`,
    /// `backend.print-c`, `backend.emit-rust`) plus decision counters.
    pub trace: flick_telemetry::TraceReport,
    /// Non-fatal compile warnings (e.g. pass budget overruns).
    pub warnings: Vec<String>,
    /// Per-stub plan-cache outcomes (`flickc --explain-cache`).
    pub cache: Option<CacheReport>,
}

impl CompileReport {
    /// The trace as text, prefixed with the pipeline configuration.
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "pipeline: {} -> {} -> {}\n{}",
            self.frontend,
            self.style,
            self.transport,
            self.trace.to_text()
        )
    }

    /// The report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = flick_telemetry::json::ObjectWriter::new();
        o.str_field("frontend", self.frontend)
            .str_field("style", &self.style)
            .str_field("transport", self.transport)
            .raw("trace", &self.trace.to_json());
        o.finish()
    }
}

/// A configured compiler: one front end, one presentation style, one
/// back end.
#[derive(Clone, Debug)]
pub struct Compiler {
    /// Selected front end.
    pub frontend: Frontend,
    /// Selected presentation style (ignored by the MIG front end).
    pub style: Style,
    /// Selected back end.
    pub backend: BackEnd,
}

impl Compiler {
    /// A compiler for the given components with default optimization.
    #[must_use]
    pub fn new(frontend: Frontend, style: Style, transport: Transport) -> Self {
        Compiler {
            frontend,
            style,
            backend: BackEnd::new(transport),
        }
    }

    /// Replaces the back-end optimization flags (used by ablations).
    #[must_use]
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.backend.opts = opts;
        self
    }

    /// Runs all three phases on IDL source text.
    ///
    /// `iface` selects the interface (CORBA scoped name, ONC program
    /// name, or MIG subsystem name) and `side` the presentation side.
    ///
    /// This is a thin facade over [`CompileSession`]: each call runs a
    /// throwaway single-compile session, so one-shot compiles exercise
    /// exactly the per-stub planning path incremental sessions reuse.
    ///
    /// # Errors
    /// Returns rendered diagnostics if any phase fails.
    pub fn compile_source(
        &self,
        file_name: &str,
        text: &str,
        iface: &str,
        side: Side,
    ) -> Result<CompileOutput, CompileError> {
        CompileSession::new(self.clone()).compile(file_name, text, iface, side)
    }

    /// The full pipeline, planning through `cache` when one is given.
    pub(crate) fn compile_with(
        &self,
        file_name: &str,
        text: &str,
        iface: &str,
        side: Side,
        cache: Option<&mut PlanCache>,
    ) -> Result<CompileOutput, CompileError> {
        let file = SourceFile::new(file_name, text);
        let mut diags = Diagnostics::new();
        let mut trace = flick_telemetry::TraceReport::new();

        let presc = match self.frontend {
            Frontend::Corba | Frontend::Onc => {
                let t = std::time::Instant::now();
                let aoi = match self.frontend {
                    Frontend::Corba => flick_frontend_corba::parse(&file, &mut diags),
                    _ => flick_frontend_onc::parse(&file, &mut diags),
                };
                trace.push_span("parse", step_ns(t));
                if diags.has_errors() {
                    return Err(CompileError::from_diags(Phase::Parse, &diags, &file));
                }
                let t = std::time::Instant::now();
                let presc = self.style.generate(&aoi, iface, side, &mut diags);
                trace.push_span("presgen", step_ns(t));
                match presc {
                    Some(p) if !diags.has_errors() => p,
                    _ => return Err(CompileError::from_diags(Phase::Presgen, &diags, &file)),
                }
            }
            Frontend::Mig => {
                // MIG's front end and presentation are conjoined; the
                // one pass is split evenly across both spans so every
                // pipeline reports the same phase names.
                let t = std::time::Instant::now();
                let presc = flick_frontend_mig::parse(&file, side, &mut diags);
                let ns = step_ns(t);
                trace.push_span("parse", ns / 2);
                trace.push_span("presgen", ns - ns / 2);
                match presc {
                    Some(p) if !diags.has_errors() => p,
                    _ => return Err(CompileError::from_diags(Phase::Parse, &diags, &file)),
                }
            }
        };

        let (compiled, bt) = self
            .backend
            .compile_traced_with(&presc, cache)
            .map_err(|e| CompileError {
                report: format!("back end: {e}"),
                phase: Phase::Backend(e.step),
                errors: 1,
                warnings: 0,
            })?;
        trace.push_span("backend.plan", bt.plan_ns);
        for pass in &bt.passes {
            trace.push_subspan("backend.plan", pass.name, pass.ns);
        }
        if bt.cache.is_some() {
            trace.push_subspan("backend.plan", "cached", bt.cache_ns);
        }
        trace.push_span("backend.emit-c", bt.emit_c_ns);
        trace.push_span("backend.print-c", bt.print_c_ns);
        trace.push_span("backend.emit-rust", bt.emit_rust_ns);

        trace.set_counter("mint.nodes", presc.mint.len() as u64);
        trace.set_counter("pres.nodes", presc.pres.len() as u64);
        trace.set_counter("cast.decls", compiled.c_unit.decls.len() as u64);
        trace.set_counter("plan.stubs", bt.stats.stubs);
        trace.set_counter("plan.nodes", bt.stats.plan_nodes);
        trace.set_counter("plan.packed_chunks", bt.stats.packed_chunks);
        trace.set_counter("plan.memcpy_runs", bt.stats.memcpy_runs);
        trace.set_counter("plan.outline_calls", bt.stats.outline_calls);
        trace.set_counter("plan.outline_fns", bt.stats.outline_fns);
        trace.set_counter("plan.hoisted_checks", bt.stats.hoisted_checks);
        trace.set_counter("plan.max_inline_depth", bt.stats.max_inline_depth);
        for pass in &bt.passes {
            // Lowering reports stub count via `plan.stubs`; only the
            // named passes carry decision counters.
            if pass.name != "lower" {
                trace.set_counter(&format!("pass.{}.decisions", pass.name), pass.decisions);
            }
        }
        if let Some(cr) = &bt.cache {
            trace.set_counter("cache.stub.hit", cr.hits);
            trace.set_counter("cache.stub.miss", cr.misses);
            trace.set_counter("cache.stub.evict", cr.evictions);
        }
        let mut warnings = Vec::new();
        for name in &bt.overruns {
            trace.set_counter(&format!("pass.{name}.budget_overrun"), 1);
            warnings.push(format!(
                "pass {name} overran the decision budget; remaining decisions were skipped or reported"
            ));
        }
        for (name, ms) in &bt.overruns_ms {
            trace.set_counter(&format!("pass.{name}.budget_overrun_ms"), *ms);
            warnings.push(format!(
                "pass {name} overran the wall-time budget by {ms}ms; \
                 it stopped early with its work so far"
            ));
        }

        let report = CompileReport {
            frontend: self.frontend.name(),
            style: presc.style.clone(),
            transport: self.backend.transport.name(),
            trace,
            warnings,
            cache: bt.cache,
        };
        Ok(CompileOutput {
            presc,
            c_source: compiled.c_source,
            rust_source: compiled.rust_source,
            report,
            mir_dump: bt.mir_dump,
        })
    }
}

fn step_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAIL_IDL: &str = "interface Mail { void send(in string msg); };";
    const MAIL_X: &str =
        "program Mail { version V { void send(string msg) = 1; } = 1; } = 0x20000001;";

    #[test]
    fn corba_to_iiop() {
        let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
            .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
            .expect("compiles");
        assert!(out.c_source.contains("Mail_send"));
        assert_eq!(out.presc.style, "corba-c");
    }

    #[test]
    fn mix_and_match_matrix() {
        // The kit claim: every front end × presentation × transport
        // combination (valid for the input) compiles.
        let transports = [
            Transport::IiopTcp,
            Transport::OncTcp,
            Transport::OncUdp,
            Transport::Mach3,
            Transport::Fluke,
        ];
        let styles = [Style::CorbaC, Style::RpcgenC, Style::FlukeC];
        for (frontend, src) in [(Frontend::Corba, MAIL_IDL), (Frontend::Onc, MAIL_X)] {
            for style in styles {
                for transport in transports {
                    let out = Compiler::new(frontend, style, transport)
                        .compile_source("mail", src, "Mail", Side::Client)
                        .unwrap_or_else(|e| {
                            panic!("{:?}/{:?}/{:?} failed:\n{e}", frontend, style, transport)
                        });
                    assert!(!out.rust_source.is_empty());
                }
            }
        }
    }

    #[test]
    fn mig_pipeline() {
        let out = Compiler::new(Frontend::Mig, Style::CorbaC, Transport::Mach3)
            .compile_source(
                "t.defs",
                "subsystem t 100;\nroutine ping(server : mach_port_t; n : int);\n",
                "t",
                Side::Client,
            )
            .expect("compiles");
        assert_eq!(out.presc.style, "mig-c");
        assert!(out.rust_source.contains("encode_ping_request"));
    }

    #[test]
    fn errors_are_rendered() {
        let err = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::OncTcp)
            .compile_source(
                "bad.idl",
                "interface X { void f(in strang s); };",
                "X",
                Side::Client,
            )
            .unwrap_err();
        assert!(err.report.contains("unknown type"), "{err}");
        assert!(err.report.contains("bad.idl:"), "{err}");
    }

    #[test]
    fn missing_interface_reported() {
        let err = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::OncTcp)
            .compile_source("m.idl", MAIL_IDL, "Nope", Side::Client)
            .unwrap_err();
        assert!(err.report.contains("not found"), "{err}");
    }
}
