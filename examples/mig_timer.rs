//! The MIG path end to end: a `.defs` subsystem compiled by the MIG
//! front end (which emits PRES-C directly, §2.1) through the Mach 3
//! back end, exchanged between threads over Mach-like ports.
//!
//!     cargo run --example mig_timer

use std::thread;

use flick::{Compiler, Frontend, Style, Transport};
use flick_pres::Side;
use flick_runtime::mach::{self, MachHeader};
use flick_runtime::{MarshalBuf, MsgReader};
use flick_transport::mach::PortSpace;

const TIMER_DEFS: &str = r"
subsystem timer 2400;
type int_array_t = array[] of int;
routine set_interval(server : mach_port_t; ticks : int);
routine send_samples(server : mach_port_t; vals : int_array_t);
";

fn main() {
    // Show the compiler handling MIG input (the conjoined front end +
    // presentation generator).
    let out = Compiler::new(Frontend::Mig, Style::CorbaC, Transport::Mach3)
        .compile_source("timer.defs", TIMER_DEFS, "timer", Side::Client)
        .expect("MIG subsystem compiles");
    println!("== MIG subsystem compiled through the Mach 3 back end ==");
    for line in out
        .c_source
        .lines()
        .filter(|l| l.contains("kern_return_t") || l.contains("timer_"))
        .take(4)
    {
        println!("{line}");
    }
    println!();

    // Exchange messages the way MIG clients do: msg_rpc to the server
    // port, reply on a reply port.  (The stubs used here are from the
    // benchmark module so client and server share types.)
    use flick_bench::generated::mach_bench;

    let ports = PortSpace::new();
    let server_port = ports.allocate();
    let reply_port = ports.allocate();

    let server_ports = ports.clone();
    let server = thread::spawn(move || {
        let mut totals: i64 = 0;
        for _ in 0..4 {
            let msg = server_ports.recv(server_port).expect("request");
            let mut r = MsgReader::new(&msg);
            let h = MachHeader::read(&mut r).expect("mach header");
            assert_eq!(h.id, 2401);
            let (vals,) = mach_bench::decode_send_ints_request(&mut r).expect("body");
            totals += vals.iter().map(|&v| i64::from(v)).sum::<i64>();
            // Minimal reply: a header echoing the id.
            let mut reply = MarshalBuf::new();
            MachHeader {
                size: mach::HEADER_BYTES as u32,
                remote_port: 0,
                local_port: 0,
                id: h.id + 100,
            }
            .write(&mut reply);
            assert!(server_ports.send(reply_port, reply.into_vec()));
        }
        totals
    });

    let mut sent_total: i64 = 0;
    for round in 1..=4u32 {
        let vals: Vec<i32> = (0..round * 8).map(|v| v as i32).collect();
        sent_total += vals.iter().map(|&v| i64::from(v)).sum::<i64>();

        let mut msg = MarshalBuf::new();
        MachHeader {
            size: 0,
            remote_port: server_port,
            local_port: reply_port,
            id: 2401,
        }
        .write(&mut msg);
        mach_bench::encode_send_ints_request(&mut msg, &vals);
        let size = msg.len() as u32;
        msg.patch_u32_le(4, size);

        let reply = ports
            .msg_rpc(server_port, reply_port, msg.into_vec())
            .expect("rpc");
        let mut r = MsgReader::new(&reply);
        let h = MachHeader::read(&mut r).expect("reply header");
        assert_eq!(h.id, 2501);
        println!("[client] round {round}: {} samples acknowledged", round * 8);
    }

    let received_total = server.join().expect("server thread");
    assert_eq!(received_total, sent_total);
    println!("\nserver summed {received_total} across 4 typed Mach messages");
}
