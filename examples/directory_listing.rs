//! The paper's §4 directory workload as a working CORBA-style service:
//! a client streams directory entries to a server over GIOP/IIOP
//! framing, demultiplexed by the generated word-wise name switch.
//!
//!     cargo run --example directory_listing

use std::thread;

use flick_bench::generated::iiop_bench;
use flick_runtime::cdr::{ByteOrder, CdrIn, CdrOut};
use flick_runtime::giop::{self, MsgType, ReplyStatus};
use flick_runtime::{MarshalBuf, MsgReader};
use flick_transport::stream::{read_giop, stream_pair, write_giop};

struct DirectoryServer {
    total_entries: usize,
    total_name_bytes: usize,
}

impl iiop_bench::Server for DirectoryServer {
    fn send_ints(&mut self, _vals: Vec<i32>) {}
    fn send_rects(&mut self, _rects: Vec<iiop_bench::Rect>) {}
    fn send_dirents(&mut self, entries: Vec<iiop_bench::Dirent>) {
        for e in &entries {
            self.total_name_bytes += e.name.len();
        }
        self.total_entries += entries.len();
    }
    fn echo_stat(&mut self, s: iiop_bench::Stat) -> iiop_bench::Stat {
        s
    }
}

fn main() {
    let order = ByteOrder::native();
    let (client_end, server_end) = stream_pair();

    let server = thread::spawn(move || {
        let mut srv = DirectoryServer {
            total_entries: 0,
            total_name_bytes: 0,
        };
        while let Some(msg) = read_giop(&server_end) {
            let mut r = MsgReader::new(&msg);
            let h = giop::read_header(&mut r).expect("giop header");
            if h.msg_type != MsgType::Request {
                break;
            }
            let cdr = CdrIn::begin(&r, h.order);
            let req = giop::get_request_header(&mut r, &cdr).expect("request header");

            // Reply: GIOP header + reply header + dispatched body.
            let mut reply = MarshalBuf::new();
            let at = giop::begin_message(&mut reply, h.order, MsgType::Reply);
            let out = CdrOut::begin(&reply, h.order);
            giop::put_reply_header(&mut reply, &out, req.request_id, ReplyStatus::NoException);
            iiop_bench::dispatch_by_name(
                req.operation.as_bytes(),
                &msg[r.pos()..],
                &mut reply,
                &mut srv,
            )
            .expect("dispatch");
            giop::finish_message(&mut reply, at, h.order);
            write_giop(&server_end, reply.as_slice());
        }
        (srv.total_entries, srv.total_name_bytes)
    });

    // The client walks a synthetic directory tree in batches.
    let mut request_id = 0u32;
    let mut sent_entries = 0usize;
    for batch in 0..8 {
        let entries = flick_bench::data::iiop::dirents(16 + batch);
        sent_entries += entries.len();

        let mut msg = MarshalBuf::new();
        let at = giop::begin_message(&mut msg, order, MsgType::Request);
        let cdr = CdrOut::begin(&msg, order);
        giop::put_request_header(
            &mut msg,
            &cdr,
            request_id,
            true,
            b"directory-1",
            "send_dirents",
        );
        iiop_bench::encode_send_dirents_request(&mut msg, &entries);
        giop::finish_message(&mut msg, at, order);
        write_giop(&client_end, msg.as_slice());

        let reply = read_giop(&client_end).expect("reply");
        let mut r = MsgReader::new(&reply);
        let h = giop::read_header(&mut r).expect("reply header");
        let cdr = CdrIn::begin(&r, h.order);
        let rh = giop::get_reply_header(&mut r, &cdr).expect("reply body");
        assert_eq!(rh.request_id, request_id);
        assert_eq!(rh.status, ReplyStatus::NoException);
        request_id += 1;
    }
    client_end.close();

    let (received, name_bytes) = server.join().expect("server thread");
    assert_eq!(received, sent_entries);
    println!(
        "streamed {received} directory entries ({name_bytes} bytes of names) \
         over GIOP/IIOP in {request_id} requests"
    );
    println!("each entry encodes the paper's 256-byte dirent: name + 136-byte stat");
}
