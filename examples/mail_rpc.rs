//! A complete mail RPC: client and server threads exchanging ONC RPC
//! messages over the in-process TCP-like stream, using stubs the
//! Flick compiler generated for the paper's `Mail` interface.
//!
//!     cargo run --example mail_rpc

use std::thread;

use flick_bench::generated::mail_onc;
use flick_runtime::oncrpc::{self, CallHeader};
use flick_runtime::{MarshalBuf, MsgReader};
use flick_transport::stream::{read_record, stream_pair, write_record};

struct Mailbox {
    received: Vec<String>,
}

impl mail_onc::Server for Mailbox {
    // §3.1 parameter management: the generated dispatch hands the
    // message text to the work function as a borrow of the receive
    // buffer (zero-copy); we copy only because we keep it.
    fn send(&mut self, msg: &str) {
        println!("[server] received: {msg}");
        self.received.push(msg.to_string());
    }
}

fn main() {
    let (client_end, server_end) = stream_pair();

    let server = thread::spawn(move || {
        let mut mailbox = Mailbox {
            received: Vec::new(),
        };
        let mut reply = MarshalBuf::new();
        while let Some(record) = read_record(&server_end) {
            let mut r = MsgReader::new(&record);
            let header = CallHeader::read(&mut r).expect("well-formed call");
            reply.clear();
            oncrpc::write_reply(&mut reply, header.xid, oncrpc::ReplyOutcome::Success);
            mail_onc::dispatch(header.proc, &record[r.pos()..], &mut reply, &mut mailbox)
                .expect("dispatch");
            write_record(&server_end, reply.as_slice());
        }
        mailbox.received
    });

    let mut buf = MarshalBuf::new();
    for (xid, msg) in [
        "Hello from the Flick reproduction!",
        "IDLs are true languages amenable to modern compilation techniques.",
        "Third and final message.",
    ]
    .iter()
    .enumerate()
    {
        buf.clear();
        CallHeader {
            xid: xid as u32,
            prog: 0x2000_0001,
            vers: 1,
            proc: 1,
        }
        .write(&mut buf);
        mail_onc::encode_send_request(&mut buf, msg);
        write_record(&client_end, buf.as_slice());

        let reply = read_record(&client_end).expect("server replied");
        let mut r = MsgReader::new(&reply);
        let echoed_xid = oncrpc::read_reply(&mut r).expect("successful reply");
        assert_eq!(echoed_xid, xid as u32);
        println!("[client] message {xid} acknowledged");
    }
    client_end.close();

    let received = server.join().expect("server thread");
    assert_eq!(received.len(), 3);
    println!(
        "\ndelivered {} messages over ONC RPC / record-marked stream",
        received.len()
    );
}
