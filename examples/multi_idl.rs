//! The kit demonstration: one contract, many IDLs, presentations, and
//! transports (the paper's "mix and match components at IDL
//! compilation time").
//!
//!     cargo run --example multi_idl
//!
//! Shows (1) that the CORBA and ONC RPC front ends produce the *same*
//! AOI for the paper's equivalent `Mail` programs, and (2) the full
//! front-end × presentation × transport compilation matrix.

use flick::{Compiler, Frontend, Style, Transport};
use flick_pres::Side;

const MAIL_IDL: &str = "interface Mail { void send(in string msg); };";
const MAIL_X: &str =
    "program Mail { version MailVers { void send(string msg) = 1; } = 1; } = 0x20000001;";

fn main() {
    // ---- one network contract from two IDLs ----
    let from_corba = flick_frontend_corba::parse_str("mail.idl", MAIL_IDL);
    let from_onc = flick_frontend_onc::parse_str("mail.x", MAIL_X);
    println!("== AOI from the CORBA front end ==");
    print!("{}", from_corba.to_pretty());
    println!("== AOI from the ONC RPC front end ==");
    print!("{}", from_onc.to_pretty());
    assert_eq!(
        from_corba.to_pretty(),
        from_onc.to_pretty(),
        "equivalent programs must produce the same contract"
    );
    println!("-> identical contracts; either feeds any presentation generator\n");

    // ---- the compilation matrix ----
    println!("== Mix-and-match matrix (front end x presentation x transport) ==");
    println!(
        "{:<8} {:<10} {:<10} {:>9} {:>9}",
        "IDL", "pres.", "transport", "C bytes", "Rs bytes"
    );
    let mut configurations = 0;
    for (fe, src) in [(Frontend::Corba, MAIL_IDL), (Frontend::Onc, MAIL_X)] {
        for style in [Style::CorbaC, Style::RpcgenC, Style::FlukeC] {
            for transport in [
                Transport::IiopTcp,
                Transport::OncTcp,
                Transport::OncUdp,
                Transport::Mach3,
                Transport::Fluke,
            ] {
                let out = Compiler::new(fe, style, transport)
                    .compile_source("mail", src, "Mail", Side::Client)
                    .expect("every combination compiles for this contract");
                println!(
                    "{:<8} {:<10} {:<10} {:>9} {:>9}",
                    match fe {
                        Frontend::Corba => "CORBA",
                        Frontend::Onc => "ONC",
                        Frontend::Mig => "MIG",
                    },
                    style.name(),
                    transport.name(),
                    out.c_source.len(),
                    out.rust_source.len(),
                );
                configurations += 1;
            }
        }
    }
    println!(
        "\n{configurations} working configurations from 2 front ends x 3 \
         presentations x 5 back ends"
    );
}
