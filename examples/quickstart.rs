//! Quickstart: compile the paper's `Mail` interface and look at what
//! each phase produces.
//!
//!     cargo run --example quickstart
//!
//! This walks the three phases of §2: front end (IDL → AOI),
//! presentation generator (AOI → PRES-C), and back end (PRES-C →
//! stubs), printing each intermediate's view of the interface.

use flick::{Compiler, Frontend, Style, Transport};
use flick_idl::diag::Diagnostics;
use flick_idl::source::SourceFile;
use flick_pres::Side;

const MAIL_IDL: &str = r"
// The paper's running example (§1).
interface Mail {
    void send(in string msg);
};
";

fn main() {
    // ---- phase 1: front end ----
    let file = SourceFile::new("mail.idl", MAIL_IDL);
    let mut diags = Diagnostics::new();
    let aoi = flick_frontend_corba::parse(&file, &mut diags);
    assert!(!diags.has_errors(), "{}", diags.render_all(&file));
    println!("== AOI: the network contract (front-end output) ==");
    println!("{}", aoi.to_pretty());

    // ---- phase 2: presentation generation ----
    let presc = flick_presgen::corba_c(&aoi, "Mail", Side::Client, &mut diags)
        .expect("presentation generated");
    println!("== PRES-C: the programmer's contract (.prc view) ==");
    print!("{}", presc.to_pretty());
    println!();

    // ---- phase 3: back end (all at once via the facade) ----
    let out = Compiler::new(Frontend::Corba, Style::CorbaC, Transport::IiopTcp)
        .compile_source("mail.idl", MAIL_IDL, "Mail", Side::Client)
        .expect("compiles");

    println!("== Generated C (excerpt) ==");
    for line in out
        .c_source
        .lines()
        .skip_while(|l| !l.contains("Mail_send"))
        .take(12)
    {
        println!("{line}");
    }
    println!();
    println!("== Generated Rust (excerpt) ==");
    for line in out
        .rust_source
        .lines()
        .skip_while(|l| !l.contains("pub fn encode_send_request"))
        .take(8)
    {
        println!("{line}");
    }
    println!();
    println!(
        "total: {} lines of C, {} lines of Rust from {} lines of IDL",
        out.c_source.lines().count(),
        out.rust_source.lines().count(),
        MAIL_IDL.trim().lines().count()
    );
}
